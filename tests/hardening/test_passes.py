"""Mitigation passes: fences, masking, and behaviour preservation."""

from __future__ import annotations

import pytest

from repro.disasm.disassembler import disassemble
from repro.hardening.passes import (
    PRED_SYMBOL,
    FenceAllBranchesPass,
    FenceAtSitePass,
    HardeningError,
    MaskLoadPass,
    strategy_pass,
)
from repro.hardening.pipeline import detect_reports, harden_module
from repro.hardening.sites import GadgetSite, locate_site, resolve_sites
from repro.campaign.worker import compiled_binary, instrumented_binary
from repro.isa.instructions import Opcode, is_conditional_branch, is_pseudo
from repro.isa.operands import Label
from repro.rewriting.passes import PassManager
from repro.rewriting.reassemble import reassemble
from repro.runtime.emulator import Emulator
from repro.targets import get_target


@pytest.fixture(scope="module")
def gadget_sites():
    """Deterministic gadget sites of the Kocher-sample driver."""
    reports = detect_reports("gadgets", iterations=400, seed=1234)
    instrumented = instrumented_binary("gadgets", "teapot", "vanilla")
    sites = resolve_sites(instrumented, reports)
    assert sites, "the Kocher samples must produce gadget reports"
    return sorted(sites, key=lambda s: (s.function, s.ordinal))


def _fresh_module():
    return disassemble(compiled_binary("gadgets", "vanilla"))


def _run_signature(binary, data):
    result = Emulator(binary).run(data)
    return (result.status, result.exit_status, result.crash_reason,
            tuple(result.output))


def test_strategy_pass_factory():
    assert isinstance(strategy_pass("fence"), FenceAtSitePass)
    assert isinstance(strategy_pass("mask"), MaskLoadPass)
    assert isinstance(strategy_pass("fence-all"), FenceAllBranchesPass)
    with pytest.raises(HardeningError):
        strategy_pass("nonsense")


def test_fence_at_site_inserts_fences_directly_before_sites(gadget_sites):
    module = _fresh_module()
    targets = [locate_site(module, site)[1:] for site in gadget_sites]
    originals = [block.instructions[index] for block, index in targets]

    mitigation = FenceAtSitePass(gadget_sites)
    stats = PassManager().add(mitigation).run(module)
    assert stats["fence-at-site"]["fences_inserted"] == len(gadget_sites)
    assert all(outcome == "fenced"
               for outcome in mitigation.site_outcomes.values())

    for (block, _), original in zip(targets, originals):
        position = next(i for i, instr in enumerate(block.instructions)
                        if instr is original)
        assert block.instructions[position - 1].opcode is Opcode.LFENCE


def test_fence_at_site_survives_ordinal_shifts(gadget_sites):
    """Inserting fences must not invalidate later sites' ordinals.

    All sites live in ``main``; each fence shifts subsequent architectural
    ordinals, so a naive locate-as-you-insert loop would fence the wrong
    instructions (the bug class the resolve-all-first design prevents).
    """
    module = _fresh_module()
    expected = {id(locate_site(module, site)[1].instructions[
        locate_site(module, site)[2]]) for site in gadget_sites}
    PassManager().add(FenceAtSitePass(gadget_sites)).run(module)
    fenced_before = set()
    for func in module.functions:
        for block in func.blocks:
            for i, instr in enumerate(block.instructions):
                if instr.opcode is Opcode.LFENCE:
                    fenced_before.add(id(block.instructions[i + 1]))
    assert fenced_before == expected


def test_fence_all_branches_fences_both_successors():
    module = _fresh_module()
    PassManager().add(FenceAllBranchesPass()).run(module)
    for func in module.functions:
        for index, block in enumerate(func.blocks):
            term = block.terminator
            if term is None or not is_conditional_branch(term):
                continue
            taken = func.block(term.operands[0].name)
            fallthrough = func.blocks[index + 1]
            for successor in (taken, fallthrough):
                assert successor.instructions[0].opcode is Opcode.LFENCE, (
                    func.name, successor.label)


def test_mask_load_pass_masks_loads_and_allocates_predicate(gadget_sites):
    load_sites = [site for site in gadget_sites if site.kind == "load"]
    module = _fresh_module()
    located = {site: locate_site(module, site) for site in load_sites}

    mitigation = MaskLoadPass(load_sites)
    stats = PassManager().add(mitigation).run(module)
    assert stats["mask-loads"]["loads_masked"] == len(load_sites)
    assert stats["mask-loads"].get("guards_instrumented", 0) >= 1
    assert any(obj.name == PRED_SYMBOL for obj in module.data_objects)
    # The predicate slot starts all-ones: "not misspeculating".
    assert module.data_object(PRED_SYMBOL).data == b"\xff" * 8

    for site, (_, block, _) in located.items():
        assert mitigation.site_outcomes[site] == "masked"
        # Immediately before every masked load: and <index>, <pred-scratch>.
        position = next(
            i for i, instr in enumerate(block.instructions)
            if instr.comment.startswith("harden: slh-mask")
            and instr.opcode is Opcode.AND
        )
        masked_load = next(
            instr for instr in block.instructions[position:]
            if instr.opcode is Opcode.LOAD and not instr.comment
        )
        assert masked_load.memory_operand().index is not None


def test_mask_load_pass_falls_back_to_fences_for_branch_sites():
    module = _fresh_module()
    func = module.function("main")
    # Synthesise a branch-kind site: the ordinal of some conditional branch.
    ordinal = 0
    branch_ordinal = None
    for instr in func.instructions():
        if is_pseudo(instr):
            continue
        if is_conditional_branch(instr) and branch_ordinal is None:
            branch_ordinal = ordinal
        ordinal += 1
    assert branch_ordinal is not None
    site = GadgetSite(function="main", ordinal=branch_ordinal, kind="branch")

    mitigation = MaskLoadPass([site])
    stats = PassManager().add(mitigation).run(module)
    assert stats["mask-loads"]["fallback_fences"] == 1
    assert mitigation.site_outcomes[site] == "mask-fallback-fence"
    fences = [instr for instr in func.instructions()
              if instr.opcode is Opcode.LFENCE]
    assert len(fences) == 1
    assert fences[0].comment.startswith("harden: slh-fallback")


def test_unresolvable_sites_are_reported_not_fatal(gadget_sites):
    ghost = GadgetSite(function="no_such_function", ordinal=0, kind="load")
    beyond = GadgetSite(function="main", ordinal=10_000, kind="load")
    module = _fresh_module()
    mitigation = FenceAtSitePass([ghost, beyond])
    stats = PassManager().add(mitigation).run(module)
    assert stats["fence-at-site"]["sites_unresolved"] == 2
    assert mitigation.site_outcomes[ghost] == "unresolved"
    assert mitigation.site_outcomes[beyond] == "unresolved"


@pytest.mark.parametrize("strategy", ("fence", "mask", "fence-all"))
def test_hardening_preserves_architectural_behaviour(strategy, gadget_sites):
    """Hardened binaries behave identically on normal executions."""
    target = get_target("gadgets")
    base = compiled_binary("gadgets", "vanilla")
    module = _fresh_module()
    harden_module(module, strategy, gadget_sites)
    hardened = reassemble(module)

    inputs = list(target.seeds) + [target.perf_input(200), b"", b"\x00" * 32,
                                   b"\xff" * 32]
    # INT64_MIN attacker index: `idx - bound` overflows, so a naive
    # sar64(idx - bound) mask would disagree with the branch's SF^OF
    # semantics and silently clamp an architecturally-taken path — the
    # overflow-exact predicate must reproduce the vanilla wild access.
    inputs.append(b"\x00" * 7 + b"\x80" + b"\x00" * 8)
    for data in inputs:
        assert _run_signature(base, data) == _run_signature(hardened, data), (
            strategy, data[:8])


@pytest.mark.parametrize("strategy", ("fence", "mask", "fence-all"))
def test_hardening_is_deterministic(strategy, gadget_sites):
    def build():
        module = _fresh_module()
        harden_module(module, strategy, gadget_sites)
        binary = reassemble(module)
        return {name: section.data for name, section in binary.sections.items()}
    assert build() == build()
