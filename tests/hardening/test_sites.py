"""Site mapping: report PCs back to stable (function, ordinal) keys."""

from __future__ import annotations

import pytest

from repro.baselines.specfuzz import SpecFuzzConfig, SpecFuzzRewriter, SpecFuzzRuntime
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.disasm.disassembler import disassemble
from repro.hardening.sites import (
    GadgetSite,
    SiteResolver,
    locate_site,
    ordinal_translation,
    resolve_sites,
    snapshot_architectural,
    translate_site,
)
from repro.isa.instructions import Opcode, is_pseudo, lfence


@pytest.fixture
def teapot_reports(spectre_victim_binary, oob_input):
    config = TeapotConfig()
    instrumented = TeapotRewriter(config).instrument(spectre_victim_binary)
    runtime = TeapotRuntime(instrumented, config=config)
    result = runtime.run(oob_input)
    assert result.reports, "the OOB input must trigger gadget reports"
    return instrumented, result.reports


def test_shadow_copy_pcs_resolve_to_the_real_function(teapot_reports):
    instrumented, reports = teapot_reports
    # Reports fire inside victim$spec; sites must name the real function.
    assert any(
        instrumented.function_at(r.pc).name.endswith("$spec") for r in reports
    )
    sites = resolve_sites(instrumented, reports)
    assert sites
    for site in sites:
        assert not site.function.endswith("$spec")
    assert {site.function for site in sites} == {"victim"}


def test_sites_locate_memory_instructions_in_the_vanilla_module(
        spectre_victim_binary, teapot_reports):
    instrumented, reports = teapot_reports
    module = disassemble(spectre_victim_binary)
    for site in resolve_sites(instrumented, reports):
        located = locate_site(module, site)
        assert located is not None
        _, block, index = located
        instr = block.instructions[index]
        if site.kind == "load":
            assert instr.opcode is Opcode.LOAD
            assert instr.memory_operand() is not None


def test_site_keys_are_invariant_across_instrumentation_tools(
        spectre_victim_binary, teapot_reports, oob_input):
    """The same gadget maps to the same key under Teapot and SpecFuzz.

    Teapot reports fire in the two-copy Shadow world, SpecFuzz reports in
    its single-copy guarded world — the architectural-ordinal key must not
    care which instrumentation produced the PC.
    """
    instrumented, reports = teapot_reports
    teapot_keys = {site.key for site in resolve_sites(instrumented, reports)
                   if site.kind == "load"}

    sf_config = SpecFuzzConfig()
    sf_binary = SpecFuzzRewriter(sf_config).instrument(spectre_victim_binary)
    sf_runtime = SpecFuzzRuntime(sf_binary, config=sf_config)
    sf_result = sf_runtime.run(oob_input)
    assert sf_result.reports
    sf_keys = {site.key for site in resolve_sites(sf_binary, sf_result.reports)}

    assert teapot_keys, "expected at least one load site from teapot"
    assert teapot_keys <= sf_keys, (
        "SpecFuzz flags every speculative OOB access, so its site keys must "
        "cover Teapot's"
    )


def test_unmappable_pc_is_dropped(spectre_victim_binary):
    resolver = SiteResolver(spectre_victim_binary)
    assert resolver.resolve_pc(0x1) is None


def test_ordinal_translation_tracks_inserted_instructions(
        spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    snapshot = snapshot_architectural(module)

    victim = module.function("victim")
    # Insert an architectural instruction near the top of the function;
    # every later ordinal shifts by one.
    victim.blocks[0].instructions.insert(1, lfence())

    translation = ordinal_translation(module, snapshot)
    mapping = translation["victim"]
    assert mapping[0] == 0
    # Ordinal 1 is now the inserted fence: absent from the map.
    assert 1 not in mapping
    arch_count = sum(1 for i in victim.instructions() if not is_pseudo(i))
    for new_ordinal in range(2, arch_count):
        assert mapping[new_ordinal] == new_ordinal - 1

    site = GadgetSite(function="victim", ordinal=5, kind="load")
    back = translate_site(site, translation)
    assert back == GadgetSite(function="victim", ordinal=4, kind="load")
    # A site on the inserted instruction has no original coordinates.
    assert translate_site(
        GadgetSite(function="victim", ordinal=1, kind="other"), translation
    ) is None
