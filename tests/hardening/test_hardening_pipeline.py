"""The detect → patch → verify loop, end to end (the acceptance tests).

The repository's acceptance bar for the hardening subsystem:

* targeted hardening (fences at reported sites, SLH-style masking)
  eliminates **100 %** of the reported gadget sites on the Kocher samples
  and on the injected jsmn build under re-fuzz, and
* its measured cycle overhead is **strictly below** the
  fence-every-branch baseline.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import run_hardening_matrix
from repro.hardening.cli import main as harden_main
from repro.hardening.pipeline import detect_reports, run_hardening


@pytest.fixture(scope="module")
def gadgets_matrix():
    """One detect campaign + all three strategies on the Kocher samples."""
    (row,) = run_hardening_matrix(targets=("gadgets",), iterations=400,
                                  seed=1234)
    return row


@pytest.fixture(scope="module")
def jsmn_injected_matrix():
    """All three strategies on the Table-3-style injected jsmn build."""
    (row,) = run_hardening_matrix(targets=("jsmn",), variant="injected",
                                  iterations=60, seed=1234)
    return row


@pytest.mark.parametrize("strategy", ("fence", "mask"))
def test_targeted_hardening_eliminates_all_kocher_sites(
        gadgets_matrix, strategy):
    result = gadgets_matrix.results[strategy]
    assert result.sites_before, "the campaign must report gadget sites"
    assert result.all_eliminated
    assert result.residual == []
    assert len(result.eliminated) == len(result.sites_before)


@pytest.mark.parametrize("strategy", ("fence", "mask"))
def test_targeted_hardening_eliminates_all_injected_jsmn_sites(
        jsmn_injected_matrix, strategy):
    result = jsmn_injected_matrix.results[strategy]
    assert result.sites_before, "the injected gadgets must be reported"
    assert result.all_eliminated
    assert result.residual == []


@pytest.mark.parametrize("row_fixture",
                         ("gadgets_matrix", "jsmn_injected_matrix"))
def test_targeted_overhead_strictly_below_fence_everything(
        row_fixture, request):
    row = request.getfixturevalue(row_fixture)
    baseline = row.results["fence-all"]
    assert baseline.all_eliminated  # the sledgehammer works too…
    for strategy in ("fence", "mask"):
        result = row.results[strategy]
        # …but the targeted strategies pay strictly fewer cycles for the
        # same elimination on the reported sites.
        assert result.hardened_cycles < baseline.hardened_cycles, strategy
        assert result.overhead < row.baseline_overhead, strategy


def test_matrix_rows_serialize(gadgets_matrix):
    record = gadgets_matrix.as_dict()
    assert record["target"] == "gadgets"
    for strategy in ("fence", "mask", "fence-all"):
        assert record[strategy]["eliminated"] == record[strategy]["sites"]
        assert record[strategy]["residual"] == 0
    json.dumps(record)  # JSON-clean


def test_verification_campaign_matches_detection_budget(gadgets_matrix):
    result = gadgets_matrix.results["fence"]
    assert result.verify_executions == result.iterations


def test_hardening_without_reports_is_a_no_op():
    result = run_hardening("gadgets", "fence", iterations=40, seed=99,
                           reports=[])
    assert result.sites_before == []
    assert result.eliminated == [] and result.residual == []
    assert result.hardened_cycles == result.native_cycles
    assert not result.all_eliminated  # nothing to eliminate is not success


def test_results_are_deterministic():
    first = run_hardening("gadgets", "fence", iterations=120, seed=42)
    second = run_hardening("gadgets", "fence", iterations=120, seed=42)
    assert first.to_dict() == second.to_dict()


def test_cli_report_file_roundtrip(tmp_path, capsys):
    reports = detect_reports("gadgets", iterations=400, seed=1234)
    report_path = tmp_path / "reports.json"
    report_path.write_text(json.dumps([r.to_dict() for r in reports]))
    out_path = tmp_path / "hardening.json"

    exit_code = harden_main([
        "--target", "gadgets", "--strategy", "fence",
        "--iterations", "400", "--seed", "1234",
        "--report-in", str(report_path),
        "--json", str(out_path), "--quiet",
    ])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "strategy=fence" in captured.out

    (payload,) = json.loads(out_path.read_text())
    assert payload["strategy"] == "fence"
    assert payload["residual"] == []
    assert payload["sites_before"] and (
        len(payload["eliminated"]) == len(payload["sites_before"]))
    assert payload["overhead"] >= 1.0


def test_cli_rejects_unknown_target(capsys):
    with pytest.raises(SystemExit):
        harden_main(["--target", "not-a-target", "--quiet"])
