"""Metrics registry units: counters, gauges, histograms, merge_counts."""

from __future__ import annotations

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counts,
)


def test_counter_increments():
    counter = Counter("x")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42


def test_gauge_set_and_max():
    gauge = Gauge("depth")
    gauge.set(3)
    gauge.max(5)
    gauge.max(2)  # not a new peak
    assert gauge.value == 5
    gauge.set(1)  # set is unconditional
    assert gauge.value == 1


def test_histogram_buckets_and_snapshot():
    histogram = Histogram("latency", buckets=(1, 10, 100))
    for value in (0, 1, 5, 50, 500):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 5
    assert snapshot["sum"] == 556
    assert snapshot["buckets"] == {"le_1": 2, "le_10": 1, "le_100": 1,
                                   "inf": 1}


def test_histogram_default_buckets_cover_powers_of_two():
    histogram = Histogram("n")
    histogram.observe(DEFAULT_BUCKETS[-1])  # largest bound, not overflow
    histogram.observe(DEFAULT_BUCKETS[-1] + 1)  # overflow
    snapshot = histogram.snapshot()
    assert snapshot["buckets"][f"le_{DEFAULT_BUCKETS[-1]}"] == 1
    assert snapshot["buckets"]["inf"] == 1


def test_registry_create_on_demand_returns_same_object():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_registry_value_and_prefix_lookup():
    registry = MetricsRegistry()
    registry.counter("campaign.sites.pht").inc(3)
    registry.gauge("campaign.sites.btb").set(1)
    registry.counter("fuzz.executions").inc(10)
    assert registry.value("fuzz.executions") == 10
    assert registry.value("unknown.metric") == 0
    assert registry.values_with_prefix("campaign.sites.") == {
        "pht": 3, "btb": 1,
    }


def test_registry_snapshot_is_sorted_and_json_ready():
    import json

    registry = MetricsRegistry()
    registry.counter("z.count").inc(2)
    registry.gauge("a.gauge").set(7)
    registry.histogram("m.hist").observe(3)
    snapshot = registry.snapshot()
    assert list(snapshot) == sorted(snapshot)
    assert snapshot["z.count"] == 2
    assert snapshot["a.gauge"] == 7
    assert snapshot["m.hist"]["count"] == 1
    json.dumps(snapshot)  # must not raise


def test_merge_counts_sums_and_returns_target():
    into = {"a": 1, "b": 2}
    result = merge_counts(into, {"b": 3, "c": 4})
    assert result is into
    assert into == {"a": 1, "b": 5, "c": 4}


def test_merge_counts_matches_campaign_result_merge():
    # The shared helper is the single aggregation rule: CampaignResult.merge
    # must produce exactly its output for spec_stats.
    from repro.fuzzing.fuzzer import CampaignResult

    left = CampaignResult(spec_stats={"simulations": 2, "rollbacks": 1})
    right = CampaignResult(spec_stats={"simulations": 5, "nested": 3})
    left.merge(right)
    expected = merge_counts({"simulations": 2, "rollbacks": 1},
                            {"simulations": 5, "nested": 3})
    assert left.spec_stats == expected
