"""`repro top`: sampling, frame rendering, throughput deltas, --once."""

from __future__ import annotations

import io

import pytest

from repro.telemetry import top
from repro.telemetry.runs import RunRegistry


def _service_sample(sampled_at=100.0, done=4, pending=2):
    return {
        "kind": "service",
        "target": "http://127.0.0.1:8642",
        "sampled_at": sampled_at,
        "health": {"status": "ok", "version": "0.0.0", "uptime_s": 12.5,
                   "observe": True},
        "queue": {"pending": pending, "leased": 1, "done": done,
                  "failed": 0, "submitted": done + pending + 1,
                  "fleet": {"workers": 2, "alive": 2, "busy": 1}},
        "fleet": {
            "counts": {"workers": 2, "alive": 2, "busy": 1, "completed": done},
            "workers": [
                {"name": "w0", "alive": True, "busy": True, "completed": 2,
                 "utilization": 0.75, "heartbeat_age_s": 0.1,
                 "current_job": {"campaign_id": "c0001-ab", "attempt": 1,
                                 "fingerprint": "deadbeefcafe"}},
                {"name": "w1", "alive": True, "busy": False, "completed": 2,
                 "utilization": 0.5, "heartbeat_age_s": 0.2,
                 "current_job": None},
            ],
        },
        "campaigns": [
            {"campaign_id": "c0001-ab", "status": "running",
             "rounds_completed": 1, "rounds": 2,
             "jobs_done": 4, "jobs_total": 8},
        ],
    }


def test_render_service_frame():
    frame = top.render_frame(_service_sample())
    assert "repro top — http://127.0.0.1:8642" in frame
    assert "2 pending / 1 leased / 4 done / 0 failed" in frame
    assert "2 workers, 2 alive, 1 busy" in frame
    assert "w0" in frame and "busy" in frame and "75%" in frame
    assert "#deadbeef" in frame  # fingerprint is truncated for display
    assert "c0001-ab" in frame and "running" in frame and "4/8" in frame
    # Without a previous sample there is no rate to report.
    assert "- jobs/s" in frame


def test_throughput_from_consecutive_samples():
    previous = _service_sample(sampled_at=100.0, done=4)
    current = _service_sample(sampled_at=102.0, done=10)
    frame = top.render_frame(current, previous)
    assert "3.0 jobs/s" in frame  # (10 - 4) done over 2 seconds


def test_render_run_dir_frame(tmp_path):
    registry = RunRegistry(str(tmp_path / "runs"))
    run = registry.create_run(command="campaign", config={"seed": 1})
    sample = top.sample_run_dir(run.path)
    assert sample["kind"] == "run_dir"
    frame = top.render_frame(sample)
    assert f"run {run.run_id}" in frame
    assert "campaign" in frame


def test_sample_dispatch_and_errors(tmp_path):
    with pytest.raises(top.TopError):
        top.sample(str(tmp_path / "not-a-run"))
    with pytest.raises(top.TopError):
        top.sample_service("http://127.0.0.1:1", timeout=0.5)


def test_run_top_once_writes_one_frame(tmp_path):
    registry = RunRegistry(str(tmp_path / "runs"))
    run = registry.create_run(command="fuzz", config={})
    stream = io.StringIO()
    assert top.run_top(run.path, once=True, stream=stream) == 0
    output = stream.getvalue()
    assert top.ANSI_CLEAR not in output  # --once stays pipe-clean
    assert f"run {run.run_id}" in output


def test_run_top_bad_target_exits_2(tmp_path, capsys):
    assert top.run_top(str(tmp_path / "missing"), once=True) == 2
    assert "error:" in capsys.readouterr().err
