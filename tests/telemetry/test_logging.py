"""Structured JSONL logging: shape, levels, binding, disabled no-op."""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry.logging import LEVELS, StructuredLogger, parse_level


def _lines(buffer: io.StringIO):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


def test_records_are_one_sorted_json_object_per_line():
    buffer = io.StringIO()
    log = StructuredLogger(buffer, level="debug", clock=lambda: 123.456)
    log.info("job_completed", worker="w0", elapsed_s=0.5)
    log.debug("job_claimed", fingerprint="abcd")
    records = _lines(buffer)
    assert [record["event"] for record in records] == [
        "job_completed", "job_claimed"]
    assert records[0] == {"ts": 123.456, "level": "info",
                          "event": "job_completed", "worker": "w0",
                          "elapsed_s": 0.5}
    # Lines are emitted with sorted keys (stable for diffing/grepping).
    first_line = buffer.getvalue().splitlines()[0]
    assert first_line == json.dumps(records[0], sort_keys=True)


def test_none_valued_fields_are_dropped():
    buffer = io.StringIO()
    log = StructuredLogger(buffer)
    log.info("event", trace_id=None, worker="w0")
    (record,) = _lines(buffer)
    assert "trace_id" not in record and record["worker"] == "w0"


def test_level_threshold_filters():
    buffer = io.StringIO()
    log = StructuredLogger(buffer, level="warning")
    log.debug("a")
    log.info("b")
    log.warning("c")
    log.error("d")
    assert [record["event"] for record in _lines(buffer)] == ["c", "d"]


def test_bind_merges_context_and_shares_sink():
    buffer = io.StringIO()
    root = StructuredLogger(buffer, level="debug",
                            context={"service": "repro"})
    child = root.bind(logger="service.queue", campaign_id="c1")
    child.info("job_submitted", fingerprint="ff")
    (record,) = _lines(buffer)
    assert record["service"] == "repro"
    assert record["logger"] == "service.queue"
    assert record["campaign_id"] == "c1"
    # Per-call fields override bound context on collision.
    child.info("x", campaign_id="c2")
    assert _lines(buffer)[-1]["campaign_id"] == "c2"


def test_disabled_logger_is_a_noop():
    log = StructuredLogger(None)
    assert not log.enabled
    log.info("event", anything="goes")  # must not raise
    child = log.bind(logger="x")
    assert not child.enabled
    child.error("still_nothing")
    log.close()


def test_path_sink_is_owned_and_appended(tmp_path):
    path = tmp_path / "service.log.jsonl"
    log = StructuredLogger(str(path), level="info")
    assert log.enabled
    log.info("first")
    log.close()
    again = StructuredLogger(str(path))
    again.info("second")
    again.close()
    events = [json.loads(line)["event"]
              for line in path.read_text().splitlines()]
    assert events == ["first", "second"]


def test_closed_sink_never_raises(tmp_path):
    path = tmp_path / "log.jsonl"
    log = StructuredLogger(str(path))
    log.close()
    log.info("after_close")  # swallowed, not raised


def test_parse_level():
    assert parse_level("DEBUG") == LEVELS["debug"]
    assert parse_level(" info ") == LEVELS["info"]
    with pytest.raises(ValueError):
        parse_level("loud")
