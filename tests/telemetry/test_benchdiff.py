"""Bench trajectory: direction heuristics, diffing, history, CLI gating."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main as repro_main
from repro.telemetry.benchdiff import (
    DEFAULT_THRESHOLD,
    bench_history,
    diff_bench,
    flatten_metrics,
    format_diff_table,
    format_history_table,
    load_bench_snapshot,
    metric_direction,
    regressions,
)


@pytest.mark.parametrize("name,direction", [
    ("execs_per_sec", 1),
    ("compile_throughput", 1),
    ("cache_hits", 1),
    ("unique_sites", 1),
    ("total_cycles", -1),
    ("elapsed_seconds", -1),
    ("overhead_pct", -1),
    ("cache_misses", -1),
    ("p90_latency_ms", -1),
    ("mystery_quantity", 0),
])
def test_metric_direction_heuristics(name, direction):
    assert metric_direction(name) == direction


def test_flatten_metrics_skips_meta_and_non_numeric():
    record = {"bench": "x", "scale": 2, "commit": "abc", "timestamp": "t",
              "execs_per_sec": 10.0, "enabled": True, "label": "text",
              "telemetry": {"metrics": {"engine.cycles": 5}}}
    assert flatten_metrics(record) == {
        "execs_per_sec": 10.0,
        "telemetry.metrics.engine.cycles": 5,
    }


def _snapshot(**metrics):
    return {"engine": {"bench": "engine", **metrics}}


def test_diff_statuses_and_threshold():
    old = _snapshot(execs_per_sec=100.0, total_cycles=1000, gone_metric=1)
    new = _snapshot(execs_per_sec=80.0, total_cycles=1040, fresh_metric=2)
    entries = diff_bench(old, new)
    by_metric = {entry["metric"]: entry for entry in entries}
    # 20% drop of a higher-is-better metric: regression.
    assert by_metric["execs_per_sec"]["status"] == "regression"
    assert by_metric["execs_per_sec"]["change"] == pytest.approx(-0.2)
    # 4% rise of a lower-is-better metric: inside the 5% default threshold.
    assert by_metric["total_cycles"]["status"] == "ok"
    assert by_metric["gone_metric"]["status"] == "removed"
    assert by_metric["fresh_metric"]["status"] == "added"
    assert [e["metric"] for e in regressions(entries)] == ["execs_per_sec"]
    # A tighter threshold flags the cycles rise too.
    tight = diff_bench(old, new, threshold=0.02)
    assert {e["metric"] for e in regressions(tight)} == {
        "execs_per_sec", "total_cycles"}


def test_improvements_and_unknown_direction_never_flag():
    old = _snapshot(execs_per_sec=100.0, mystery_quantity=10)
    new = _snapshot(execs_per_sec=150.0, mystery_quantity=2)
    by_metric = {e["metric"]: e for e in diff_bench(old, new)}
    assert by_metric["execs_per_sec"]["status"] == "improvement"
    # Direction unknown: a big move is reported but never gates CI.
    assert by_metric["mystery_quantity"]["status"] == "ok"


def test_zero_old_value_is_not_a_division_crash():
    entries = diff_bench(_snapshot(cache_hits=0), _snapshot(cache_hits=9))
    assert entries[0]["change"] is None
    assert entries[0]["status"] == "ok"


def test_diff_table_lists_regressions_first():
    old = _snapshot(execs_per_sec=100.0, total_cycles=1000)
    new = _snapshot(execs_per_sec=50.0, total_cycles=500)
    table = format_diff_table(diff_bench(old, new))
    body = table.splitlines()[2:]
    assert body[0].startswith("regression")
    assert "1 regression(s), 1 improvement(s)" in table


def _write_bench(path, name, **metrics):
    record = {"bench": name, "scale": 1, "version": "0.1", **metrics}
    path.write_text(json.dumps(record) + "\n", encoding="utf-8")


def test_load_snapshot_from_file_and_directory(tmp_path):
    _write_bench(tmp_path / "BENCH_a.json", "a", execs_per_sec=5)
    _write_bench(tmp_path / "BENCH_b.json", "b", total_cycles=9)
    snapshot = load_bench_snapshot(str(tmp_path))
    assert sorted(snapshot) == ["a", "b"]
    single = load_bench_snapshot(str(tmp_path / "BENCH_a.json"))
    assert list(single) == ["a"]
    with pytest.raises(FileNotFoundError):
        load_bench_snapshot(str(tmp_path / "empty-dir"))


def test_bench_history_lines_snapshots_up():
    snaps = [_snapshot(execs_per_sec=100.0),
             _snapshot(execs_per_sec=90.0, fresh=1)]
    headers, rows = bench_history(snaps, labels=["v1", "v2"])
    assert headers == ["bench", "metric", "v1", "v2"]
    table = format_history_table(headers, rows)
    assert "execs_per_sec" in table and "100" in table and "90" in table
    # A metric absent from one snapshot renders as '-', not a crash.
    assert any("-" in row for row in rows)


# -- CLI gating (`repro bench diff` exit codes) ------------------------------
def test_cli_bench_diff_exit_codes(tmp_path, capsys):
    _write_bench(tmp_path / "old.json", "engine", execs_per_sec=100.0)
    _write_bench(tmp_path / "ok.json", "engine", execs_per_sec=99.0)
    _write_bench(tmp_path / "bad.json", "engine", execs_per_sec=80.0)

    assert repro_main(["bench", "diff", str(tmp_path / "old.json"),
                       str(tmp_path / "ok.json")]) == 0
    assert repro_main(["bench", "diff", str(tmp_path / "old.json"),
                       str(tmp_path / "bad.json")]) == 1
    assert repro_main(["bench", "diff", str(tmp_path / "old.json"),
                       str(tmp_path / "missing.json")]) == 2
    capsys.readouterr()
    # An injected regression below a loosened threshold passes again.
    assert repro_main(["bench", "diff", str(tmp_path / "old.json"),
                       str(tmp_path / "bad.json"), "--threshold", "0.5"]) == 0


def test_cli_bench_diff_json_output(tmp_path, capsys):
    _write_bench(tmp_path / "old.json", "engine", execs_per_sec=100.0)
    _write_bench(tmp_path / "bad.json", "engine", execs_per_sec=80.0)
    code = repro_main(["bench", "diff", str(tmp_path / "old.json"),
                       str(tmp_path / "bad.json"), "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["regressions"] == 1
    assert payload["entries"][0]["metric"] == "execs_per_sec"
    assert payload["entries"][0]["status"] == "regression"


def test_cli_bench_history(tmp_path, capsys):
    _write_bench(tmp_path / "old.json", "engine", execs_per_sec=100.0)
    _write_bench(tmp_path / "new.json", "engine", execs_per_sec=120.0)
    assert repro_main(["bench", "history", str(tmp_path / "old.json"),
                       str(tmp_path / "new.json")]) == 0
    out = capsys.readouterr().out
    assert "execs_per_sec" in out and "120" in out


def test_default_threshold_is_five_percent():
    assert DEFAULT_THRESHOLD == 0.05
