"""The telemetry-facing CLI: --version, --progress/--trace, repro stats."""

from __future__ import annotations

import json

import pytest

from repro._version import __version__
from repro.api.cli import main


def test_repro_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_fuzz_trace_then_stats_round_trip(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    code = main(["fuzz", "--target", "gadgets", "--iterations", "30",
                 "--seed", "7", "--quiet", "--trace", str(trace)])
    assert code == 0
    assert trace.exists()
    capsys.readouterr()

    assert main(["stats", str(trace)]) == 0
    out = capsys.readouterr().out
    assert f"trace: repro {__version__}" in out
    assert "stage:fuzz" in out
    assert "campaign.executions = 30" in out


def test_stats_json_output(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    main(["fuzz", "--target", "gadgets", "--iterations", "20", "--seed", "7",
          "--quiet", "--trace", str(trace)])
    capsys.readouterr()
    assert main(["stats", str(trace), "--json"]) == 0
    aggregate = json.loads(capsys.readouterr().out)
    assert aggregate["counters"]["campaign.executions"] == 20
    assert any(span["path"] == "pipeline/stage:fuzz"
               for span in aggregate["spans"])


def test_stats_rejects_non_trace_files(tmp_path, capsys):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"type": "nope"}\n')
    assert main(["stats", str(bogus)]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(["stats", str(tmp_path / "missing.jsonl")]) == 2


def test_fuzz_progress_heartbeat_smoke(capsys):
    code = main(["fuzz", "--target", "gadgets", "--iterations", "40",
                 "--seed", "7", "--quiet", "--progress",
                 "--progress-interval", "0.05"])
    assert code == 0
    err = capsys.readouterr().err
    assert "[progress]" in err
    assert "execs" in err


def test_campaign_cli_trace_and_progress(tmp_path, capsys):
    from repro.campaign.cli import main as campaign_main

    trace = tmp_path / "campaign-trace.jsonl"
    code = campaign_main([
        "--targets", "gadgets", "--iterations", "20", "--rounds", "1",
        "--quiet", "--progress", "--progress-interval", "0.05",
        "--trace", str(trace),
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "[progress]" in err

    from repro.telemetry import aggregate_trace, read_trace

    aggregate = aggregate_trace(read_trace(str(trace)))
    assert aggregate["counters"]["campaign.executions"] == 20
    assert aggregate["context"]["command"] == "campaign"
    assert any(span["name"] == "round:0" for span in aggregate["spans"])
