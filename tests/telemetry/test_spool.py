"""Worker metrics spool: fork detection, append/read, consume offsets."""

from __future__ import annotations

import json
import os

from repro.telemetry import Telemetry
from repro.telemetry import spool as telemetry_spool
from repro.telemetry.spool import MetricsSpool


def _fake_fork(monkeypatch):
    """Make this process look like a forked child of the enabler."""
    monkeypatch.setattr(telemetry_spool, "_PARENT_PID", os.getpid() + 1)


def test_disarmed_spool_yields_no_worker_telemetry():
    telemetry_spool.disable()
    assert telemetry_spool.is_worker() is False
    assert telemetry_spool.worker_telemetry() is None
    assert telemetry_spool.worker_spool_path() is None


def test_parent_process_is_not_a_worker(tmp_path):
    # The scheduler itself armed the spool: its own pid matches, so the
    # parent must NOT get a second registry (serial campaigns count
    # directly into the parent registry; a worker bundle would double).
    telemetry_spool.enable(str(tmp_path / "spool.jsonl"))
    try:
        assert telemetry_spool.is_worker() is False
        assert telemetry_spool.worker_telemetry() is None
    finally:
        telemetry_spool.disable()


def test_forked_child_gets_fresh_registry_only_telemetry(tmp_path, monkeypatch):
    path = str(tmp_path / "spool.jsonl")
    telemetry_spool.enable(path)
    try:
        _fake_fork(monkeypatch)
        assert telemetry_spool.is_worker() is True
        assert telemetry_spool.worker_spool_path() == path
        bundle = telemetry_spool.worker_telemetry()
        assert isinstance(bundle, Telemetry)
        assert bundle.trace is None and bundle.heartbeat is None
    finally:
        telemetry_spool.disable()


def test_collect_counts_takes_counters_and_cache_deltas():
    bundle = Telemetry()
    bundle.registry.counter("fuzz.executions").inc(25)
    bundle.registry.counter("engine.rollbacks").inc(3)
    bundle.registry.counter("never.incremented")  # zero: dropped
    bundle.registry.gauge("fuzz.corpus_size").set(9)  # gauges: dropped
    before = telemetry_spool.jit_cache_stats()
    counts = telemetry_spool.collect_counts(bundle, before)
    assert counts["fuzz.executions"] == 25
    assert counts["engine.rollbacks"] == 3
    assert "never.incremented" not in counts
    assert "fuzz.corpus_size" not in counts
    # Cache stats did not move between the two snapshots: no cache keys.
    assert not any(k.startswith("engine.jit.cache.") for k in counts)


def test_append_and_read_round_trip(tmp_path):
    path = str(tmp_path / "spool.jsonl")
    telemetry_spool.append_counts(path, "job-a", {"fuzz.executions": 10})
    telemetry_spool.append_counts(path, "job-b", {"fuzz.executions": 5,
                                                  "engine.rollbacks": 2})
    records, offset = telemetry_spool.read_records(path)
    assert [r["job_id"] for r in records] == ["job-a", "job-b"]
    assert all(r["pid"] == os.getpid() for r in records)
    assert offset == os.path.getsize(path)
    assert telemetry_spool.sum_counts(records) == {
        "fuzz.executions": 15, "engine.rollbacks": 2}


def test_partial_last_line_is_left_for_the_next_read(tmp_path):
    path = str(tmp_path / "spool.jsonl")
    telemetry_spool.append_counts(path, "done", {"fuzz.executions": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"pid": 1, "job_id": "inflight", "counts": {')  # torn
    records, offset = telemetry_spool.read_records(path)
    assert [r["job_id"] for r in records] == ["done"]
    # Once the writer finishes the line, a read from the offset sees it.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('"fuzz.executions": 4}}\n')
    more, _ = telemetry_spool.read_records(path, offset)
    assert [r["job_id"] for r in more] == ["inflight"]


def test_garbage_line_is_one_lost_sample_not_a_dead_spool(tmp_path):
    path = str(tmp_path / "spool.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps({"pid": 1, "job_id": "ok",
                                 "counts": {"fuzz.executions": 2}}) + "\n")
    records, _ = telemetry_spool.read_records(path)
    assert [r["job_id"] for r in records] == ["ok"]


def test_metrics_spool_consume_advances_past_merged_records(tmp_path):
    path = str(tmp_path / "spool.jsonl")
    spool = MetricsSpool(path)
    assert os.path.exists(path)  # created eagerly so readers never race
    assert spool.unconsumed() == {}
    telemetry_spool.append_counts(path, "r0", {"fuzz.executions": 10})
    assert spool.unconsumed() == {"fuzz.executions": 10}
    spool.consume()  # scheduler merged round 0 into its registry
    assert spool.unconsumed() == {}
    telemetry_spool.append_counts(path, "r1", {"fuzz.executions": 7})
    assert spool.unconsumed() == {"fuzz.executions": 7}


def test_telemetry_merged_counts_includes_spool_tail(tmp_path):
    bundle = Telemetry()
    bundle.registry.counter("fuzz.executions").inc(100)
    bundle.spool = MetricsSpool(str(tmp_path / "spool.jsonl"))
    telemetry_spool.append_counts(bundle.spool.path, "live",
                                  {"fuzz.executions": 30,
                                   "engine.jit.cache.memo_hits": 2})
    merged = bundle.merged_counts()
    assert merged["fuzz.executions"] == 130
    assert merged["engine.jit.cache.memo_hits"] == 2
    # After the round merge the registry owns the counts; the consumed
    # tail must not be added twice.
    bundle.registry.counter("fuzz.executions").inc(30)
    bundle.spool.consume()
    assert bundle.merged_counts()["fuzz.executions"] == 130
