"""Telemetry end to end: facade spans, engine counters, bit-identity.

The acceptance contract of the subsystem: with telemetry disabled the
pipeline produces bit-identical artifacts (telemetry is observation
only); with tracing enabled a facade fuzz→harden→refuzz run emits a
parseable JSONL trace whose span tree covers every pipeline stage and
whose counters match the RunResult totals.
"""

from __future__ import annotations

import repro.api as api
from repro.campaign.worker import build_runtime
from repro.telemetry import Telemetry, read_trace, aggregate_trace
from repro.telemetry import context as telemetry_context


def _traced_run(tmp_path, **telemetry_kwargs):
    trace_path = tmp_path / "trace.jsonl"
    run = (api.pipeline(target="gadgets", seed=7)
           .fuzz(iterations=60)
           .harden("fence")
           .refuzz()
           .telemetry(trace=str(trace_path), **telemetry_kwargs)
           .report())
    return run, trace_path


def test_span_tree_covers_every_pipeline_stage(tmp_path):
    run, trace_path = _traced_run(tmp_path)
    records = read_trace(str(trace_path))
    aggregate = aggregate_trace(records)
    paths = [span["path"] for span in aggregate["spans"]]
    assert "pipeline" in paths
    for stage in run.stages:
        assert f"pipeline/stage:{stage.kind}" in paths
    assert all(span["status"] == "ok" for span in aggregate["spans"])


def test_trace_counters_match_runresult_totals(tmp_path):
    run, trace_path = _traced_run(tmp_path)
    records = read_trace(str(trace_path))
    fuzz_payload = run.stage("fuzz").payload
    refuzz_payload = run.stage("refuzz").payload

    # The fuzz stage's closing snapshot equals the stage's artifact totals.
    fuzz_end = next(r for r in records if r.get("type") == "span_end"
                    and r.get("path") == "pipeline/stage:fuzz")
    counters = fuzz_end["counters"]
    assert counters["campaign.executions"] == fuzz_payload["executions"]
    assert counters["fuzz.executions"] == fuzz_payload["executions"]
    assert counters["campaign.reports_unique"] == fuzz_payload["unique_gadgets"]
    assert counters["campaign.reports_raw"] == fuzz_payload["raw_reports"]

    # The final snapshot (and RunResult.telemetry) covers fuzz + refuzz.
    final = aggregate_trace(records)["counters"]
    total = fuzz_payload["executions"] + refuzz_payload["verify_executions"]
    assert final["campaign.executions"] == total
    assert run.telemetry["metrics"]["campaign.executions"] == total
    assert (run.telemetry["metrics"]["harden.sites_patched"]
            == run.stage("harden").payload["sites"])


def test_telemetry_disabled_is_bit_identical(tmp_path):
    plain = (api.pipeline(target="gadgets", seed=7)
             .fuzz(iterations=60).harden("fence").refuzz().report())
    traced, _ = _traced_run(tmp_path)
    # Identical stage artifacts; only the telemetry section differs.
    assert plain.telemetry is None
    assert traced.telemetry is not None
    assert plain.to_dict()["stages"] == traced.to_dict()["stages"]


def test_runresult_telemetry_round_trips(tmp_path):
    run, _ = _traced_run(tmp_path)
    record = run.to_dict()
    assert record["version"] == api.RunResult().version
    reloaded = api.RunResult.from_dict(record)
    assert reloaded.telemetry == run.telemetry
    assert reloaded.to_dict() == record
    assert "telemetry:" in run.format_summary()


def test_engine_counters_follow_controller_deltas():
    # Counters track per-run deltas of the controller's cumulative stats:
    # after N runs the counter equals the last run's cumulative total.
    telemetry = Telemetry.create()
    runtime = build_runtime("gadgets", "teapot", "vanilla")
    with telemetry_context.session(telemetry):
        first = runtime.run(b"\x00" * 16)
        second = runtime.run(b"\xff" * 16)
    registry = telemetry.registry
    assert registry.value("engine.executions") == 2
    assert (registry.value("engine.simulations")
            == second.spec_stats["simulations_started"])
    assert (registry.value("engine.instructions")
            == first.arch_instructions + second.arch_instructions)
    hist = registry.histogram("engine.instructions_per_exec").snapshot()
    assert hist["count"] == 2


def test_disabled_path_records_nothing():
    telemetry = Telemetry.create()
    runtime = build_runtime("gadgets", "teapot", "vanilla")
    runtime.run(b"\x00" * 16)  # no active telemetry: the no-op fast path
    assert telemetry.registry.snapshot() == {}
    assert telemetry_context.active() is None


def test_context_session_nests_and_restores():
    outer = Telemetry.create()
    inner = Telemetry.create()
    assert telemetry_context.active() is None
    with telemetry_context.session(outer):
        assert telemetry_context.active() is outer
        with telemetry_context.session(inner):
            assert telemetry_context.active() is inner
        assert telemetry_context.active() is outer
    assert telemetry_context.active() is None


def test_config_threaded_telemetry_overrides_the_global_slot():
    from repro.core.config import TeapotConfig
    from repro.core.teapot import TeapotRewriter, TeapotRuntime
    from repro.campaign.worker import compiled_binary

    telemetry = Telemetry.create()
    config = TeapotConfig(telemetry=telemetry)
    binary = TeapotRewriter(config).instrument(
        compiled_binary("gadgets", "vanilla"))
    runtime = TeapotRuntime(binary, config=config)
    runtime.run(b"\x00" * 16)  # no session installed, yet still observed
    assert telemetry.registry.value("engine.executions") == 1


def test_engine_profiler_collects_hot_spots(tmp_path):
    run, _ = _traced_run(tmp_path, profile_engine=True)
    profile = run.telemetry["profile"]
    assert profile["per_opcode"], "expected opcode counts"
    assert profile["addresses_seen"] > 0
    assert profile["hot_spots"], "expected hot-spot entries"


def test_version_satellite_is_consistent():
    import os
    import re

    import repro
    from repro._version import __version__

    assert repro.__version__ == __version__
    # setup.py reads the same file textually.
    setup_path = os.path.join(os.path.dirname(__file__), os.pardir,
                              os.pardir, "setup.py")
    with open(setup_path, "r", encoding="utf-8") as handle:
        setup_text = handle.read()
    assert "_version.py" in setup_text
    assert re.match(r"^\d+\.\d+\.\d+$", __version__)
