"""Trace reports: critical path, self times, flamegraph, HTML rendering."""

from __future__ import annotations

from repro.telemetry.report import (
    critical_path,
    render_flamegraph,
    render_html_report,
    self_times,
)
from repro.telemetry.tracing import TraceWriter, aggregate_trace, read_trace


def _aggregate(tmp_path):
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    path = str(tmp_path / "trace.jsonl")
    writer = TraceWriter(path, context={"command": "campaign"},
                         registry=registry)
    with writer.span("campaign"):
        with writer.span("round:0"):
            writer.event("job", job_id="j0", executions=10, elapsed_s=0.5)
            registry.counter("campaign.executions").inc(10)
        with writer.span("round:1"):
            pass
    writer.close()
    return aggregate_trace(read_trace(path))


def _spans(*specs):
    return [{"path": path, "name": path.rsplit("/", 1)[-1],
             "elapsed_s": elapsed, "status": "ok"}
            for path, elapsed in specs]


def test_critical_path_follows_heaviest_chain():
    spans = _spans(("campaign", 10.0),
                   ("campaign/round:0", 2.0),
                   ("campaign/round:1", 7.0),
                   ("campaign/round:1/merge", 1.0))
    chain = [span["path"] for span in critical_path(spans)]
    assert chain == ["campaign", "campaign/round:1",
                     "campaign/round:1/merge"]


def test_self_times_subtract_direct_children():
    spans = _spans(("campaign", 10.0),
                   ("campaign/round:0", 2.0),
                   ("campaign/round:1", 7.0))
    totals = self_times(spans)
    assert totals["campaign"] == 1.0  # 10 - (2 + 7)
    assert totals["campaign/round:0"] == 2.0


def test_self_times_split_children_across_repeated_instances():
    # Two instances of the same path share their children's total evenly,
    # so summed self time stays consistent with inclusive time.
    spans = _spans(("a", 4.0), ("a", 6.0), ("a/b", 2.0))
    totals = self_times(spans)
    assert totals["a"] == (4.0 - 1.0) + (6.0 - 1.0)


def test_flamegraph_collapsed_stack_format():
    spans = _spans(("campaign", 10.0),
                   ("campaign/round:0", 4.0),
                   ("campaign/round:1", 5.0))
    lines = render_flamegraph({"spans": spans}).splitlines()
    assert "campaign 1000000" in lines  # 1s self time in µs
    assert "campaign;round:0 4000000" in lines
    assert "campaign;round:1 5000000" in lines
    # Frames use ';' separators only: ready for flamegraph.pl/speedscope.
    for line in lines:
        frames, value = line.rsplit(" ", 1)
        assert int(value) > 0
        assert "/" not in frames


def test_flamegraph_of_empty_aggregate_is_empty():
    assert render_flamegraph({"spans": []}) == ""


def test_html_report_is_self_contained_and_complete(tmp_path):
    aggregate = _aggregate(tmp_path)
    profile = {
        "per_opcode": {"load": 120, "store": 30},
        "hot_spots": [{"address": "0x400010", "count": 55,
                       "function": "parse"}],
        "addresses_seen": 17,
    }
    page = render_html_report(aggregate, profile=profile, title="smoke")
    assert page.startswith("<!doctype html>")
    assert "<script" not in page and "http" not in page.split("</style>")[1]
    assert "<title>smoke</title>" in page
    assert "<code>command=campaign</code>" in page
    # Span tree + critical path + per-path percentiles.
    assert "Span tree" in page and "critical path:" in page
    assert "Per-path timings" in page
    assert "campaign/round:0" in page
    # Jobs and counters sections.
    assert "1 completed" in page
    assert "Final counters" in page
    # Engine profile tables.
    assert "Engine hot spots" in page and "0x400010" in page
    assert "Per-opcode executions" in page and "load" in page


def test_html_report_escapes_untrusted_strings():
    aggregate = {
        "version": "0.1", "schema_version": 1, "records": 3,
        "context": {"command": "<script>alert(1)</script>"},
        "spans": _spans(("<b>span</b>", 1.0)),
        "counters": {}, "jobs": {}, "span_paths": {},
    }
    page = render_html_report(aggregate)
    assert "<script>alert(1)</script>" not in page
    assert "&lt;script&gt;" in page
    assert "<b>span</b>" not in page


def test_html_report_without_spans_or_profile_degrades_gracefully():
    page = render_html_report({"version": "0.1", "schema_version": 1,
                               "records": 0, "spans": []})
    assert "no spans recorded" in page
    assert "Engine hot spots" not in page
