"""Span tracing: writer round-trip, nesting, error capture, aggregation."""

from __future__ import annotations

import json

import pytest

from repro._version import __version__
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import (
    TRACE_KIND,
    TRACE_SCHEMA_VERSION,
    TraceError,
    TraceWriter,
    aggregate_trace,
    format_trace_stats,
    read_trace,
)


def _write_trace(path, registry=None):
    writer = TraceWriter(str(path), context={"command": "test"},
                         registry=registry)
    with writer.span("pipeline"):
        with writer.span("stage:fuzz"):
            writer.event("job", job_id="j0", executions=10, elapsed_s=0.5)
        with writer.span("stage:harden"):
            pass
    writer.close()


def test_trace_header_and_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_trace(path)
    records = read_trace(str(path))
    header = records[0]
    assert header["type"] == "trace_start"
    assert header["kind"] == TRACE_KIND
    assert header["schema_version"] == TRACE_SCHEMA_VERSION
    assert header["version"] == __version__
    assert header["context"] == {"command": "test"}
    assert records[-1]["type"] == "trace_end"
    # seq is dense and monotonically increasing.
    assert [r["seq"] for r in records] == list(range(len(records)))


def test_span_nesting_paths(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_trace(path)
    records = read_trace(str(path))
    paths = [r["path"] for r in records if r["type"] == "span_start"]
    assert paths == ["pipeline", "pipeline/stage:fuzz",
                     "pipeline/stage:harden"]
    job = next(r for r in records if r["type"] == "job")
    assert job["span"] == "pipeline/stage:fuzz"
    ends = {r["path"]: r for r in records if r["type"] == "span_end"}
    assert ends["pipeline"]["status"] == "ok"
    assert ends["pipeline"]["elapsed_s"] >= 0


def test_span_end_snapshots_registry_counters(tmp_path):
    registry = MetricsRegistry()
    path = tmp_path / "trace.jsonl"
    writer = TraceWriter(str(path), registry=registry)
    with writer.span("work"):
        registry.counter("fuzz.executions").inc(7)
    writer.close()
    records = read_trace(str(path))
    end = next(r for r in records if r["type"] == "span_end")
    assert end["counters"]["fuzz.executions"] == 7
    assert records[-1]["counters"]["fuzz.executions"] == 7


def test_span_error_is_recorded_and_reraised(tmp_path):
    path = tmp_path / "trace.jsonl"
    writer = TraceWriter(str(path))
    with pytest.raises(RuntimeError, match="boom"):
        with writer.span("explodes"):
            raise RuntimeError("boom")
    writer.close()
    records = read_trace(str(path))
    end = next(r for r in records if r["type"] == "span_end")
    assert end["status"] == "error"
    assert end["error"] == "RuntimeError: boom"


def test_read_trace_rejects_foreign_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(TraceError, match="empty"):
        read_trace(str(empty))

    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text("not json\n")
    with pytest.raises(TraceError, match="unparseable"):
        read_trace(str(garbage))

    foreign = tmp_path / "foreign.jsonl"
    foreign.write_text(json.dumps({"type": "something_else"}) + "\n")
    with pytest.raises(TraceError, match="not a"):
        read_trace(str(foreign))

    future = tmp_path / "future.jsonl"
    future.write_text(json.dumps({
        "type": "trace_start", "kind": TRACE_KIND,
        "schema_version": TRACE_SCHEMA_VERSION + 1,
    }) + "\n")
    with pytest.raises(TraceError, match="schema_version"):
        read_trace(str(future))


def test_aggregate_and_format(tmp_path):
    registry = MetricsRegistry()
    path = tmp_path / "trace.jsonl"
    writer = TraceWriter(str(path), context={"target": "gadgets"},
                         registry=registry)
    with writer.span("pipeline"):
        with writer.span("stage:fuzz"):
            writer.event("job", job_id="j0", executions=10, elapsed_s=0.25)
            writer.event("job_failed", job_id="j1", error="ValueError: nope")
            registry.counter("campaign.executions").inc(10)
    writer.close()

    aggregate = aggregate_trace(read_trace(str(path)))
    assert aggregate["kind"] == TRACE_KIND
    assert [s["path"] for s in aggregate["spans"]] == [
        "pipeline", "pipeline/stage:fuzz"]
    assert aggregate["jobs"] == {"done": 1, "failed": 1, "executions": 10,
                                 "elapsed_s": 0.25}
    assert aggregate["failures"] == [{"job_id": "j1",
                                      "error": "ValueError: nope"}]
    assert aggregate["counters"]["campaign.executions"] == 10

    rendered = format_trace_stats(aggregate)
    assert "stage:fuzz" in rendered
    assert "1 completed, 1 failed" in rendered
    assert "campaign.executions = 10" in rendered


def test_writer_borrows_open_file_objects(tmp_path):
    import io

    buffer = io.StringIO()
    writer = TraceWriter(buffer)
    with writer.span("s"):
        pass
    writer.close()
    lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert lines[0]["type"] == "trace_start"
    assert lines[-1]["type"] == "trace_end"
    buffer.write("still open")  # borrowed sinks are not closed


def test_aggregate_span_path_percentiles(tmp_path):
    path = tmp_path / "trace.jsonl"
    writer = TraceWriter(str(path))
    with writer.span("campaign"):
        for _ in range(5):
            with writer.span("round"):
                pass
    writer.close()

    aggregate = aggregate_trace(read_trace(str(path)))
    rounds = aggregate["span_paths"]["campaign/round"]
    assert rounds["count"] == 5
    assert rounds["p50_s"] <= rounds["p90_s"] <= rounds["max_s"]
    assert rounds["total_s"] >= rounds["max_s"]
    assert aggregate["span_paths"]["campaign"]["count"] == 1

    rendered = format_trace_stats(aggregate)
    assert "span paths (count, p50/p90/max seconds):" in rendered
    assert "campaign/round  n=5" in rendered


def test_aggregate_attributes_counter_deltas_to_ending_spans(tmp_path):
    registry = MetricsRegistry()
    path = tmp_path / "trace.jsonl"
    writer = TraceWriter(str(path), registry=registry)
    with writer.span("campaign"):
        with writer.span("round:0"):
            registry.counter("campaign.executions").inc(10)
        with writer.span("round:1"):
            registry.counter("campaign.executions").inc(7)
    writer.close()

    aggregate = aggregate_trace(read_trace(str(path)))
    spans = {span["path"]: span for span in aggregate["spans"]}
    assert spans["campaign/round:0"]["counters_delta"] == {
        "campaign.executions": 10}
    assert spans["campaign/round:1"]["counters_delta"] == {
        "campaign.executions": 7}
    # The outer span ends last: everything already attributed inward.
    assert "counters_delta" not in spans["campaign"]
