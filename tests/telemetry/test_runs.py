"""Run registry: manifest round-trip, snapshots, listing and gc."""

from __future__ import annotations

import json
import os

import pytest

from repro._version import __version__
from repro.telemetry import MetricsSpool, Telemetry
from repro.telemetry import spool as telemetry_spool
from repro.telemetry.runs import (
    RUN_KIND,
    RUN_SCHEMA_VERSION,
    RunDirectory,
    RunRegistry,
    RunSchemaError,
    config_digest,
    format_runs_table,
)


def test_manifest_round_trip(tmp_path):
    config = {"iterations": 200, "seed": 0}
    run = RunDirectory.create(
        root=str(tmp_path), command="campaign", target="jsmn", engine="jit",
        variants=["pht", "btb"], config=config, extra={"fingerprint": "abc"})
    manifest = run.manifest()
    assert manifest["kind"] == RUN_KIND
    assert manifest["schema_version"] == RUN_SCHEMA_VERSION
    assert manifest["run_id"] == run.run_id
    assert manifest["version"] == __version__
    assert manifest["status"] == "running"
    assert manifest["command"] == "campaign"
    assert manifest["target"] == "jsmn"
    assert manifest["engine"] == "jit"
    assert manifest["variants"] == ["pht", "btb"]
    assert manifest["config"] == config
    assert manifest["config_digest"] == config_digest(config)
    assert manifest["fingerprint"] == "abc"
    # Identical configurations digest identically; any change diverges.
    assert config_digest({"seed": 0, "iterations": 200}) == \
        manifest["config_digest"]
    assert config_digest({"iterations": 201, "seed": 0}) != \
        manifest["config_digest"]


def test_finalize_stamps_status_and_finish_time(tmp_path):
    run = RunDirectory.create(root=str(tmp_path), command="campaign")
    run.finalize(status="completed", rounds=4)
    manifest = run.manifest()
    assert manifest["status"] == "completed"
    assert manifest["rounds"] == 4
    assert manifest["finished_at"].endswith("Z")


def test_same_second_runs_get_disambiguating_suffixes(tmp_path):
    first = RunDirectory.create(root=str(tmp_path), run_id="fixed")
    second = RunDirectory.create(root=str(tmp_path), run_id="fixed")
    assert first.run_id == "fixed"
    assert second.run_id == "fixed.1"
    assert os.path.isdir(second.path)


def test_foreign_manifest_is_rejected(tmp_path):
    run = RunDirectory.create(root=str(tmp_path))
    with open(run.manifest_path, "w", encoding="utf-8") as handle:
        json.dump({"kind": "something/else", "schema_version": 1}, handle)
    with pytest.raises(RunSchemaError, match="not a repro.telemetry/run"):
        run.manifest()
    with open(run.manifest_path, "w", encoding="utf-8") as handle:
        json.dump({"kind": RUN_KIND,
                   "schema_version": RUN_SCHEMA_VERSION + 1}, handle)
    with pytest.raises(RunSchemaError, match="unsupported"):
        run.manifest()


def test_metrics_snapshots_record_types_and_spool_offset(tmp_path):
    run = RunDirectory.create(root=str(tmp_path))
    bundle = Telemetry()
    bundle.registry.counter("fuzz.executions").inc(10)
    bundle.registry.gauge("fuzz.corpus_size").set(4)
    bundle.spool = MetricsSpool(run.spool_path)
    telemetry_spool.append_counts(run.spool_path, "j0",
                                  {"fuzz.executions": 10})
    bundle.spool.consume()  # merged into the registry above
    run.write_metrics_snapshot(bundle)
    snapshot = run.latest_metrics()
    assert snapshot["seq"] == 1
    assert snapshot["metrics"]["fuzz.executions"] == 10
    assert snapshot["types"]["fuzz.executions"] == "counter"
    assert snapshot["types"]["fuzz.corpus_size"] == "gauge"
    assert snapshot["spool_offset"] == os.path.getsize(run.spool_path)
    # live_counts = snapshot + spool tail past the recorded offset.
    telemetry_spool.append_counts(run.spool_path, "j1",
                                  {"fuzz.executions": 5})
    live = run.live_counts()
    assert live["fuzz.executions"] == 15
    assert live["fuzz.corpus_size"] == 4


def test_registry_lists_newest_first_and_skips_foreign_dirs(tmp_path):
    registry = RunRegistry(str(tmp_path))
    registry.create_run(run_id="20260101-000000-1", command="campaign")
    registry.create_run(run_id="20260102-000000-1", command="fuzz")
    os.makedirs(tmp_path / "not-a-run")
    manifests = registry.list_manifests()
    assert [m["run_id"] for m in manifests] == [
        "20260102-000000-1", "20260101-000000-1"]
    table = format_runs_table(manifests)
    assert "20260102-000000-1" in table.splitlines()[2]
    assert registry.get("20260101-000000-1").run_id == "20260101-000000-1"
    with pytest.raises(KeyError):
        registry.get("missing")


def test_gc_keeps_newest_and_never_touches_running_runs(tmp_path):
    registry = RunRegistry(str(tmp_path))
    for index in range(4):
        run = registry.create_run(run_id=f"2026010{index}-000000-1")
        if index > 0:
            run.finalize(status="completed")
    # run 0 oldest..run 3 newest; run 0 is still "running".
    would = registry.gc(keep=1, dry_run=True)
    assert would == ["20260101-000000-1", "20260102-000000-1"]
    assert len(registry.runs()) == 4  # dry run removed nothing
    removed = registry.gc(keep=1)
    assert removed == would
    left = [run.run_id for run in registry.runs()]
    assert left == ["20260103-000000-1", "20260100-000000-1"]


def test_empty_registry_is_harmless(tmp_path):
    registry = RunRegistry(str(tmp_path / "never-created"))
    assert registry.runs() == []
    assert registry.list_manifests() == []
    assert registry.gc() == []
    assert format_runs_table([]) == "no runs recorded"
