"""Heartbeat reporter: rate limiting, rendering, registry sources."""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import HeartbeatReporter


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def _reporter(registry, interval=5.0):
    clock = FakeClock()
    lines = []
    reporter = HeartbeatReporter(registry, interval=interval,
                                 sink=lines.append, clock=clock)
    return reporter, clock, lines


def test_heartbeat_rate_limits_by_interval():
    registry = MetricsRegistry()
    reporter, clock, lines = _reporter(registry)
    execs = registry.counter("fuzz.executions")

    # First beat only anchors the window.
    assert reporter.maybe_beat() is False
    execs.inc(50)
    clock.now += 1.0  # within the interval: suppressed
    assert reporter.maybe_beat() is False
    clock.now += 5.0  # past the interval: emits
    assert reporter.maybe_beat() is True
    assert reporter.beats == 1
    assert len(lines) == 1


def test_heartbeat_renders_rate_corpus_and_sites():
    registry = MetricsRegistry()
    reporter, clock, lines = _reporter(registry)
    reporter.maybe_beat()  # anchor
    registry.counter("fuzz.executions").inc(1000)
    registry.gauge("fuzz.corpus_size").set(57)
    registry.gauge("fuzz.sites.pht").set(3)
    registry.gauge("fuzz.sites.btb").set(1)
    clock.now += 10.0
    assert reporter.maybe_beat() is True
    line = lines[-1]
    assert "1,000 execs" in line
    assert "(100/s)" in line
    assert "corpus 57" in line
    assert "sites: btb=1 pht=3" in line


def test_heartbeat_prefers_campaign_counters_and_shows_failures():
    registry = MetricsRegistry()
    reporter, clock, lines = _reporter(registry)
    reporter.maybe_beat()  # anchor
    registry.counter("fuzz.executions").inc(10)
    registry.counter("campaign.executions").inc(400)
    registry.gauge("campaign.sites.pht").set(9)
    registry.gauge("fuzz.sites.pht").set(2)
    registry.counter("campaign.jobs_failed").inc(2)
    clock.now += 10.0
    reporter.maybe_beat()
    line = lines[-1]
    assert "400 execs" in line  # max(campaign, fuzz), not their sum
    assert "sites: pht=9" in line  # campaign-wide dedup view wins
    assert "failed jobs 2" in line


def test_tick_is_cheap_and_eventually_beats():
    registry = MetricsRegistry()
    reporter, clock, lines = _reporter(registry, interval=0.5)
    registry.counter("fuzz.executions").inc(1)
    # Ticks 1..15 never even read the clock; the 16th may beat.
    for _ in range(16):
        reporter.tick()
    clock.now += 1.0
    for _ in range(16):
        reporter.tick()
    assert reporter.beats == 1


def test_slow_single_executions_still_beat_every_interval():
    registry = MetricsRegistry()
    reporter, clock, lines = _reporter(registry, interval=5.0)
    execs = registry.counter("fuzz.executions")
    # A pathological job: one execution per 6 seconds, slower than the
    # reporting interval.  A fixed 1-in-16 tick mask would stay silent
    # for ~96 s; the adaptive stride collapses to 1 and beats on every
    # slow tick.
    for _ in range(10):
        execs.inc()
        reporter.tick()
        clock.now += 6.0
    assert reporter.beats == 9  # every tick after the anchoring first


def test_stride_grows_under_fast_ticking_and_collapses_when_slow():
    registry = MetricsRegistry()
    reporter, clock, lines = _reporter(registry, interval=5.0)
    registry.counter("fuzz.executions").inc(1)
    # Fast ticking: the stride doubles, amortising clock reads.
    for _ in range(200):
        reporter.tick()
        clock.now += 0.001
    grown = reporter._stride
    assert grown > 1
    # Executions turn slow: the stride collapses back to 1 and stays
    # there while each tick keeps arriving a full interval apart.
    clock.now += 10.0
    for _ in range(grown):
        reporter.tick()
        clock.now += 6.0
    assert reporter._stride == 1
    assert reporter.beats >= 1


def test_stride_never_exceeds_the_cap():
    registry = MetricsRegistry()
    reporter, clock, lines = _reporter(registry, interval=1000.0)
    for _ in range(50_000):
        reporter.tick()
    assert reporter._stride <= HeartbeatReporter.MAX_STRIDE


def test_force_beat_emits_immediately():
    registry = MetricsRegistry()
    reporter, clock, lines = _reporter(registry)
    assert reporter.maybe_beat(force=True) is True
    assert len(lines) == 1
