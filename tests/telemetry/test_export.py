"""Metrics export: Prometheus exposition conformance + HTTP endpoints."""

from __future__ import annotations

import json
import re
import urllib.request

import pytest

from repro.telemetry import MetricsSpool, Telemetry
from repro.telemetry import spool as telemetry_spool
from repro.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsExporter,
    MetricsView,
    parse_address,
    render_prometheus,
    serve_metrics,
    status_snapshot,
)
from repro.telemetry.runs import RunRegistry


def _telemetry_with_counts() -> Telemetry:
    bundle = Telemetry()
    bundle.registry.counter("fuzz.executions").inc(400)
    bundle.registry.counter("campaign.executions").inc(400)
    bundle.registry.gauge("campaign.sites.pht").set(3)
    bundle.registry.gauge("campaign.sites.btb").set(1)
    bundle.registry.counter("engine.entered.pht").inc(12)
    bundle.registry.histogram("engine.instructions_per_exec").observe(90)
    bundle.registry.histogram("engine.instructions_per_exec").observe(2500)
    return bundle


def test_prometheus_rendering_conforms_to_text_format_0_0_4():
    text = render_prometheus(_telemetry_with_counts())
    lines = text.splitlines()
    assert text.endswith("\n")
    # Counters get the _total suffix and one # TYPE line per family.
    assert "# TYPE repro_fuzz_executions_total counter" in lines
    assert "repro_fuzz_executions_total 400" in lines
    # Per-variant gauges collapse into one labeled family.
    assert "# TYPE repro_campaign_sites gauge" in lines
    assert 'repro_campaign_sites{variant="pht"} 3' in lines
    assert 'repro_campaign_sites{variant="btb"} 1' in lines
    assert lines.count("# TYPE repro_campaign_sites gauge") == 1
    # Per-model counters label the same way.
    assert 'repro_engine_entered_total{model="pht"} 12' in lines
    # Histograms: cumulative buckets ending in +Inf, plus _sum/_count.
    bucket_lines = [l for l in lines
                    if l.startswith("repro_engine_instructions_per_exec_bucket")]
    assert bucket_lines[-1].startswith(
        'repro_engine_instructions_per_exec_bucket{le="+Inf"} 2')
    counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
    assert counts == sorted(counts)  # cumulative, never decreasing
    assert "repro_engine_instructions_per_exec_count 2" in lines
    # Every sample line matches the exposition grammar.
    sample = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$')
    for line in lines:
        if not line.startswith("#"):
            assert sample.match(line), line


def test_prometheus_includes_unconsumed_spool_tail(tmp_path):
    bundle = _telemetry_with_counts()
    bundle.spool = MetricsSpool(str(tmp_path / "spool.jsonl"))
    telemetry_spool.append_counts(
        bundle.spool.path, "live-job",
        {"fuzz.executions": 50, "engine.jit.cache.memo_hits": 4})
    lines = render_prometheus(bundle).splitlines()
    assert "repro_fuzz_executions_total 450" in lines
    assert "repro_engine_jit_cache_memo_hits_total 4" in lines


def test_status_snapshot_progress_digest():
    record = status_snapshot(_telemetry_with_counts())
    assert record["kind"] == "repro.telemetry/status"
    assert record["schema_version"] == 1
    progress = record["progress"]
    assert progress["executions"] == 400
    assert progress["sites"] == {"btb": 1, "pht": 3}
    assert record["counts"]["campaign.executions"] == 400


def test_exporter_serves_metrics_status_runs_and_404(tmp_path):
    registry = RunRegistry(str(tmp_path / "runs"))
    run = registry.create_run(command="campaign", target="jsmn",
                              engine="jit", config={"seed": 0})
    bundle = _telemetry_with_counts()
    bundle.run_dir = run
    exporter = serve_metrics(bundle, registry=registry)
    try:
        def fetch(path):
            return urllib.request.urlopen(exporter.url + path, timeout=5)

        reply = fetch("/metrics")
        assert reply.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        body = reply.read().decode("utf-8")
        assert "repro_fuzz_executions_total 400" in body

        status = json.load(fetch("/status"))
        assert status["progress"]["executions"] == 400
        assert status["run"]["run_id"] == run.run_id

        runs = json.load(fetch("/runs"))
        assert [m["run_id"] for m in runs] == [run.run_id]

        with pytest.raises(urllib.error.HTTPError) as info:
            fetch("/nope")
        assert info.value.code == 404
    finally:
        exporter.stop()


def test_exporter_from_run_dir_cross_process_view(tmp_path):
    # Simulate the `repro monitor` flow: a campaign in another process
    # wrote a snapshot + spool lines; the exporter process only has the
    # run directory.
    registry = RunRegistry(str(tmp_path / "runs"))
    run = registry.create_run(command="campaign", config={})
    bundle = _telemetry_with_counts()
    bundle.spool = MetricsSpool(run.spool_path)
    run.write_metrics_snapshot(bundle)
    # Worker activity after the snapshot: lands in the spool tail.
    telemetry_spool.append_counts(run.spool_path, "tail-job",
                                  {"fuzz.executions": 25})
    view = MetricsView.from_run_dir(run)
    assert view.counters["fuzz.executions"] == 425
    assert view.gauges["campaign.sites.pht"] == 3
    assert "engine.instructions_per_exec" in view.histograms
    lines = render_prometheus(run).splitlines()
    assert "repro_fuzz_executions_total 425" in lines
    # Type fidelity survives the JSON round trip: counters stay counters.
    assert "# TYPE repro_campaign_executions_total counter" in lines


def test_exporter_picks_free_port_and_stops_cleanly():
    exporter = MetricsExporter(Telemetry()).start()
    port = exporter.port
    assert port > 0
    exporter.stop()
    # A second exporter can bind a fresh port after the first closed.
    again = MetricsExporter(Telemetry()).start()
    assert again.port > 0
    again.stop()


@pytest.mark.parametrize("text,expected", [
    ("", ("127.0.0.1", 9753)),
    ("9090", ("127.0.0.1", 9090)),
    (":9090", ("127.0.0.1", 9090)),
    ("0.0.0.0:8000", ("0.0.0.0", 8000)),
    ("localhost", ("localhost", 9753)),
])
def test_parse_address(text, expected):
    assert parse_address(text) == expected
