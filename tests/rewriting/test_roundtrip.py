"""Reassembly round-trip: the invariant the hardening loop depends on.

Hardening re-disassembles a compiled binary, rewrites it and reassembles;
verification then re-disassembles the *hardened* output to instrument it.
That only works if disassemble → (no-op pass) → reassemble is lossless for
every shipped workload: same entry, imports, block structure, instruction
stream and data — in fact byte-identical text, since the compiler and the
reassembler share one code path for layout.
"""

from __future__ import annotations

import pytest

from repro.disasm.disassembler import disassemble
from repro.disasm.ir import Module
from repro.rewriting.passes import PassManager, RewritePass
from repro.rewriting.reassemble import reassemble
from repro.runtime.emulator import Emulator
from repro.targets import get_target, runnable_targets
from repro.targets.injection import compile_vanilla


class NoOpPass(RewritePass):
    """A pass that observes but does not modify the module."""

    name = "no-op"

    def run(self, module: Module) -> None:
        self.bump("functions_seen", len(module.functions))


def _module_signature(module: Module):
    """Structural identity that must survive a reassembly round-trip.

    Block labels are derived from addresses and may be renamed, so the
    signature captures order and content, not label spellings.
    """
    return {
        "entry": module.entry,
        "imports": list(module.imports),
        "functions": [
            (
                func.name,
                [len(block) for block in func.blocks],
                [instr.mnemonic() for instr in func.instructions()],
            )
            for func in module.functions
        ],
        "data": [(obj.name, obj.data, obj.section)
                 for obj in module.data_objects],
        "instruction_count": module.instruction_count(),
    }


def _run_signature(binary, data: bytes):
    result = Emulator(binary).run(data)
    return (result.status, result.exit_status, result.crash_reason,
            result.cycles, tuple(result.output))


@pytest.mark.parametrize("target_name", runnable_targets())
def test_roundtrip_is_lossless(target_name):
    target = get_target(target_name)
    binary = compile_vanilla(target)

    module = disassemble(binary)
    stats = PassManager().add(NoOpPass()).run(module)
    assert stats["no-op"]["functions_seen"] == len(module.functions)

    reassembled = reassemble(module)
    module_again = disassemble(reassembled)

    assert _module_signature(module) == _module_signature(module_again)

    # The reassembled binary is byte-identical section for section (the
    # compiler and the reassembler share the layout path), so behaviour is
    # trivially preserved — assert both anyway to catch layout drift.
    assert set(binary.sections) == set(reassembled.sections)
    for name, section in binary.sections.items():
        assert reassembled.sections[name].address == section.address, name
        assert reassembled.sections[name].data == section.data, name

    for seed in target.seeds:
        assert _run_signature(binary, seed) == _run_signature(reassembled, seed)


@pytest.mark.parametrize("target_name", runnable_targets())
def test_roundtrip_reaches_a_fixed_point(target_name):
    """disasm∘reasm is idempotent: a second round trip changes nothing."""
    binary = compile_vanilla(get_target(target_name))
    first = reassemble(disassemble(binary))
    second = reassemble(disassemble(first))
    assert {name: (s.address, s.data) for name, s in first.sections.items()} \
        == {name: (s.address, s.data) for name, s in second.sections.items()}
    assert [(s.name, s.address, s.size) for s in first.symbols] \
        == [(s.name, s.address, s.size) for s in second.symbols]
