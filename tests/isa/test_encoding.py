"""Round-trip and property-based tests of the instruction encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import instructions as ins
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    encode_instruction,
    encoded_length,
)
from repro.isa.instructions import ConditionCode, Instruction, Opcode
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register


def _round_trip(instr: Instruction) -> Instruction:
    encoded = encode_instruction(instr)
    decoded, length = decode_instruction(encoded)
    assert length == len(encoded)
    return decoded


def test_simple_round_trip():
    instr = ins.mov(Reg(Register.R3), Imm(-77))
    decoded = _round_trip(instr)
    assert decoded.opcode is Opcode.MOV
    assert decoded.operands == [Reg(Register.R3), Imm(-77)]


def test_memory_operand_round_trip():
    instr = ins.load(Reg(Register.R1),
                     Mem(base=Register.R2, index=Register.R3, scale=8, disp=-64),
                     size=2)
    decoded = _round_trip(instr)
    assert decoded.size == 2
    mem = decoded.operands[1]
    assert mem.base is Register.R2 and mem.index is Register.R3
    assert mem.scale == 8 and mem.disp == -64


def test_condition_code_round_trip():
    for cc in ConditionCode:
        decoded = _round_trip(Instruction(Opcode.JCC, [Imm(0x1234)], cc=cc))
        assert decoded.cc is cc


def test_unresolved_label_cannot_encode():
    with pytest.raises(EncodingError):
        encode_instruction(ins.jmp("somewhere"))
    with pytest.raises(EncodingError):
        encode_instruction(ins.load(Reg(Register.R0), Mem(disp=Label("g"))))


def test_encoded_length_matches_actual():
    samples = [
        ins.nop(),
        ins.ret(),
        ins.mov(Reg(Register.R0), Imm(1)),
        ins.store(Mem(base=Register.R1, index=Register.R2, scale=4, disp=8),
                  Reg(Register.R3)),
        ins.push(Imm(123456789)),
    ]
    for instr in samples:
        assert encoded_length(instr) == len(encode_instruction(instr))


def test_encoded_length_for_labels_assumes_imm():
    # A label encodes to an 8-byte immediate after resolution.
    unresolved = ins.jmp("target")
    resolved = ins.jmp(0x10000)
    assert encoded_length(unresolved) == len(encode_instruction(resolved))


def test_decode_truncated_raises():
    encoded = encode_instruction(ins.mov(Reg(Register.R0), Imm(5)))
    with pytest.raises(EncodingError):
        decode_instruction(encoded[:-3])


def test_decode_unknown_opcode_raises():
    with pytest.raises(EncodingError):
        decode_instruction(bytes([0xFE, 0x03, 0x00]))


_registers = st.sampled_from(list(Register))
_imm_values = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


@st.composite
def _mem_operands(draw):
    base = draw(st.one_of(st.none(), _registers))
    index = draw(st.one_of(st.none(), _registers))
    scale = draw(st.sampled_from([1, 2, 4, 8]))
    disp = draw(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    return Mem(base=base, index=index, scale=scale, disp=disp)


@st.composite
def _instructions(draw):
    kind = draw(st.sampled_from(["mov", "load", "store", "alu", "jcc", "push"]))
    if kind == "mov":
        return ins.mov(Reg(draw(_registers)), Imm(draw(_imm_values)))
    if kind == "load":
        return ins.load(Reg(draw(_registers)), draw(_mem_operands()),
                        size=draw(st.sampled_from([1, 2, 4, 8])))
    if kind == "store":
        return ins.store(draw(_mem_operands()), Reg(draw(_registers)),
                         size=draw(st.sampled_from([1, 2, 4, 8])))
    if kind == "alu":
        opcode = draw(st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.XOR,
                                       Opcode.SHL, Opcode.MUL]))
        return ins.alu(opcode, Reg(draw(_registers)), Imm(draw(_imm_values)))
    if kind == "jcc":
        return Instruction(Opcode.JCC, [Imm(draw(st.integers(0, 2 ** 40)))],
                           cc=draw(st.sampled_from(list(ConditionCode))))
    return ins.push(Imm(draw(_imm_values)))


@given(_instructions())
@settings(max_examples=200, deadline=None)
def test_encoding_round_trip_property(instr):
    """decode(encode(i)) preserves opcode, operands, size and condition code."""
    decoded = _round_trip(instr)
    assert decoded.opcode is instr.opcode
    assert decoded.cc == instr.cc
    assert decoded.size == instr.size
    assert decoded.operands == instr.operands


@given(st.lists(_instructions(), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_stream_decoding_property(instrs):
    """A concatenated instruction stream decodes back element by element."""
    blob = b"".join(encode_instruction(i) for i in instrs)
    offset = 0
    decoded = []
    while offset < len(blob):
        instr, length = decode_instruction(blob, offset)
        decoded.append(instr)
        offset += length
    assert len(decoded) == len(instrs)
    assert [d.opcode for d in decoded] == [i.opcode for i in instrs]
