"""Tests for the two-pass assembler."""

import struct

import pytest

from repro.isa.assembler import AsmFunction, AsmProgram, Assembler, AssemblerError
from repro.isa.builder import FunctionBuilder
from repro.isa.encoding import decode_instruction
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register
from repro.loader.binary_format import DataObject, RelocationKind, SymbolKind


def _single_function(name="main", body=None):
    builder = FunctionBuilder(name)
    if body:
        body(builder)
    else:
        builder.mov(Reg(Register.R0), Imm(0))
        builder.ret()
    return builder.build()


def test_assemble_produces_sections_and_symbols(simple_binary):
    assert simple_binary.text.size > 0
    names = {s.name for s in simple_binary.symbols}
    assert {"main", "helper"} <= names
    main = simple_binary.symbol("main")
    assert main.kind is SymbolKind.FUNCTION
    assert main.address == simple_binary.layout.text_base


def test_function_sizes_cover_text(simple_binary):
    total = sum(s.size for s in simple_binary.function_symbols())
    assert total == simple_binary.text.size


def test_duplicate_function_rejected():
    program = AsmProgram(functions=[_single_function(), ])
    with pytest.raises(AssemblerError):
        program.add_function(_single_function())


def test_undefined_label_rejected():
    builder = FunctionBuilder("main")
    builder.jmp("nowhere")
    program = AsmProgram(functions=[builder.build()])
    with pytest.raises(AssemblerError):
        Assembler().assemble(program)


def test_undefined_entry_rejected():
    program = AsmProgram(functions=[_single_function("not_main")])
    with pytest.raises(AssemblerError):
        Assembler().assemble(program)


def test_duplicate_local_label_rejected():
    builder = FunctionBuilder("main")
    builder.label("here")
    builder.label("here")
    builder.ret()
    with pytest.raises(AssemblerError):
        Assembler().assemble(AsmProgram(functions=[builder.build()]))


def test_ecall_builds_import_table():
    def body(b):
        b.ecall("malloc")
        b.ecall("free")
        b.ecall("malloc")
        b.ret()
    program = AsmProgram(functions=[_single_function("main", body)])
    binary = Assembler().assemble(program)
    assert binary.imports == ["malloc", "free"]
    # The encoded ecall operand is the import index.
    first, _ = decode_instruction(binary.text.data, 0)
    assert first.operands[0] == Imm(0)


def test_ecall_to_defined_function_rejected():
    def body(b):
        b.ecall("main")
        b.ret()
    program = AsmProgram(functions=[_single_function("main", body)])
    with pytest.raises(AssemblerError):
        Assembler().assemble(program)


def test_data_objects_are_laid_out_with_alignment():
    program = AsmProgram(functions=[_single_function()])
    program.add_data(DataObject("a", b"\x01", ".data", align=1))
    program.add_data(DataObject("b", b"\x02" * 8, ".data", align=8))
    binary = Assembler().assemble(program)
    sym_a = binary.symbol("a")
    sym_b = binary.symbol("b")
    assert sym_b.address % 8 == 0
    assert sym_b.address >= sym_a.address + 1
    assert binary.read_bytes(sym_b.address, 8) == b"\x02" * 8


def test_global_reference_generates_relocation():
    def body(b):
        b.load(Reg(Register.R0), Mem(disp=Label("counter")))
        b.ret()
    program = AsmProgram(functions=[_single_function("main", body)])
    program.add_data(DataObject("counter", bytes(8), ".data"))
    binary = Assembler().assemble(program)
    kinds = {r.kind for r in binary.relocations}
    assert RelocationKind.ABS64_CODE in kinds
    reloc = [r for r in binary.relocations if r.symbol == "counter"][0]
    assert reloc.address == binary.layout.text_base  # first instruction


def test_pointer_slots_are_patched_and_relocated():
    def body(b):
        b.ret()
    program = AsmProgram(functions=[_single_function("main", body),
                                    _single_function("callee", body)])
    table = DataObject("table", bytes(16), ".rodata", align=8,
                       pointer_slots=[(0, "main", 0), (8, "callee", 0)])
    program.add_data(table)
    binary = Assembler().assemble(program)
    main_addr = binary.symbol("main").address
    callee_addr = binary.symbol("callee").address
    stored = struct.unpack("<QQ", binary.read_bytes(binary.symbol("table").address, 16))
    assert stored == (main_addr, callee_addr)
    data_relocs = [r for r in binary.relocations
                   if r.kind is RelocationKind.ABS64_DATA]
    assert len(data_relocs) == 2


def test_pointer_slot_with_unknown_symbol_rejected():
    program = AsmProgram(functions=[_single_function()])
    program.add_data(DataObject("t", bytes(8), ".data",
                                pointer_slots=[(0, "missing", 0)]))
    with pytest.raises(AssemblerError):
        Assembler().assemble(program)


def test_qualified_pointer_slot_resolves_local_label():
    builder = FunctionBuilder("main")
    builder.mov(Reg(Register.R0), Imm(0))
    builder.label("inner")
    builder.ret()
    program = AsmProgram(functions=[builder.build()])
    program.add_data(DataObject("t", bytes(8), ".rodata", align=8,
                                pointer_slots=[(0, "main::inner", 0)]))
    binary = Assembler().assemble(program)
    stored = struct.unpack("<Q", binary.read_bytes(binary.symbol("t").address, 8))[0]
    main = binary.symbol("main")
    assert main.address < stored < main.address + main.size


def test_branch_targets_resolve_to_addresses(simple_binary):
    # Every encoded branch/call target must land on an instruction boundary.
    text = simple_binary.text
    offset = 0
    boundaries = set()
    while offset < len(text.data):
        _, length = decode_instruction(text.data, offset)
        boundaries.add(text.address + offset)
        offset += length
    offset = 0
    while offset < len(text.data):
        instr, length = decode_instruction(text.data, offset)
        if instr.opcode.value in ("call", "jmp") or instr.cc is not None:
            assert instr.operands[0].value in boundaries
        offset += length
