"""Tests for the operand model."""

import pytest

from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register


def test_reg_coerces_int():
    assert Reg(3).reg is Register.R3


def test_imm_rejects_non_int():
    with pytest.raises(TypeError):
        Imm("5")
    with pytest.raises(TypeError):
        Imm(True)


def test_label_requires_name():
    with pytest.raises(ValueError):
        Label("")


def test_label_addend_arithmetic():
    label = Label("table", 8)
    assert label.with_addend(8) == Label("table", 16)
    assert str(label) == "table+8"
    assert str(Label("x", -4)) == "x-4"


def test_mem_scale_validation():
    with pytest.raises(ValueError):
        Mem(base=Register.R1, scale=3)
    for scale in (1, 2, 4, 8):
        assert Mem(index=Register.R2, scale=scale).scale == scale


def test_mem_frame_relative_constant():
    assert Mem(base=Register.FP, disp=-8).is_frame_relative_constant
    assert Mem(base=Register.SP, disp=16).is_frame_relative_constant
    assert not Mem(base=Register.R1, disp=-8).is_frame_relative_constant
    assert not Mem(base=Register.FP, index=Register.R1).is_frame_relative_constant
    assert not Mem(base=Register.FP, disp=Label("g")).is_frame_relative_constant


def test_mem_registers():
    mem = Mem(base=Register.R1, index=Register.R2, scale=8, disp=4)
    assert mem.registers() == (Register.R1, Register.R2)
    assert Mem(disp=100).registers() == ()


def test_mem_symbolic_disp():
    mem = Mem(index=Register.R1, scale=8, disp=Label("table"))
    assert mem.has_symbolic_disp
    replaced = mem.with_disp(0x1000)
    assert not replaced.has_symbolic_disp
    assert replaced.index is Register.R1


def test_mem_str_formats():
    assert str(Mem(base=Register.R1, index=Register.R2, scale=8, disp=16)) == \
        "[r1 + r2*8 + 16]"
    assert str(Mem(disp=0)) == "[0]"
