"""Tests for instruction construction and predicates."""

import pytest

from repro.isa import instructions as ins
from repro.isa.instructions import (
    ConditionCode,
    Instruction,
    Opcode,
    falls_through,
    is_branch,
    is_call,
    is_conditional_branch,
    is_control_flow,
    is_indirect_control_flow,
    is_load,
    is_memory_access,
    is_pseudo,
    is_serializing,
    is_store,
)
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register


def test_jcc_requires_condition_code():
    with pytest.raises(ValueError):
        Instruction(Opcode.JCC, [Label("x")])


def test_invalid_access_size_rejected():
    with pytest.raises(ValueError):
        Instruction(Opcode.LOAD, [Reg(Register.R0), Mem(base=Register.R1)], size=3)


def test_condition_code_negation_is_involutive():
    for cc in ConditionCode:
        assert cc.negate().negate() is cc


def test_negation_pairs():
    assert ConditionCode.LT.negate() is ConditionCode.GE
    assert ConditionCode.B.negate() is ConditionCode.AE
    assert ConditionCode.EQ.negate() is ConditionCode.NE


def test_predicates_on_load_store():
    load = ins.load(Reg(Register.R0), Mem(base=Register.R1), size=1)
    store = ins.store(Mem(base=Register.R2), Reg(Register.R3))
    assert is_load(load) and not is_store(load)
    assert is_store(store) and not is_load(store)
    assert is_memory_access(load) and is_memory_access(store)


def test_push_pop_are_memory_accesses():
    assert is_store(ins.push(Reg(Register.R1)))
    assert is_load(ins.pop(Reg(Register.R1)))


def test_control_flow_predicates():
    assert is_branch(ins.jmp("x"))
    assert is_conditional_branch(ins.jcc(ConditionCode.LT, "x"))
    assert not is_conditional_branch(ins.jmp("x"))
    assert is_call(ins.call("f"))
    assert is_call(ins.ecall("malloc"))
    assert is_indirect_control_flow(ins.ret())
    assert is_indirect_control_flow(ins.icall(Reg(Register.R1)))
    assert not is_indirect_control_flow(ins.call("f"))
    assert is_control_flow(ins.ret())


def test_serializing_predicate():
    assert is_serializing(ins.lfence())
    assert is_serializing(Instruction(Opcode.CPUID))
    assert not is_serializing(ins.nop())


def test_pseudo_predicate():
    assert is_pseudo(Instruction(Opcode.CHECKPOINT, [Label("t")]))
    assert is_pseudo(Instruction(Opcode.ASAN_CHECK, [Mem(base=Register.R1)]))
    assert not is_pseudo(ins.mov(Reg(Register.R0), Imm(1)))


def test_falls_through():
    assert falls_through(ins.jcc(ConditionCode.EQ, "x"))
    assert falls_through(ins.call("f"))
    assert not falls_through(ins.jmp("x"))
    assert not falls_through(ins.ret())
    assert not falls_through(ins.halt())


def test_labels_collection():
    instr = ins.load(Reg(Register.R0), Mem(index=Register.R1, disp=Label("tbl")))
    assert instr.labels() == (Label("tbl"),)
    instr2 = ins.mov(Reg(Register.R0), Label("func"))
    assert instr2.labels() == (Label("func"),)


def test_copy_is_independent():
    original = ins.mov(Reg(Register.R0), Imm(1))
    duplicate = original.copy()
    duplicate.operands[1] = Imm(2)
    assert original.operands[1] == Imm(1)


def test_mnemonic_formatting():
    assert ins.jcc(ConditionCode.AE, "x").mnemonic() == "jae"
    assert ins.load(Reg(Register.R0), Mem(base=Register.R1), size=1).mnemonic() == "load.1"
    assert ins.load(Reg(Register.R0), Mem(base=Register.R1)).mnemonic() == "load"


def test_target_accessor():
    assert ins.jmp("dest").target == Label("dest")
    assert ins.call("f").target == Label("f")
    assert ins.icall(Reg(Register.R4)).target == Reg(Register.R4)
    assert ins.ret().target is None


def test_alu_constructor_rejects_non_alu():
    with pytest.raises(ValueError):
        ins.alu(Opcode.MOV, Reg(Register.R0), Imm(1))
