"""Tests for the register file definitions."""

import pytest

from repro.isa.registers import (
    ARG_REGISTERS,
    CALLEE_SAVED,
    CALLER_SAVED,
    FRAME_POINTER,
    GPR_NAMES,
    RETURN_REGISTER,
    SCRATCH_REGISTERS,
    STACK_POINTER,
    Register,
)


def test_sixteen_registers():
    assert len(list(Register)) == 16
    assert len(GPR_NAMES) == 16


def test_special_register_names():
    assert Register.SP.asm_name == "sp"
    assert Register.FP.asm_name == "fp"
    assert Register.R3.asm_name == "r3"


def test_from_name_round_trip():
    for reg in Register:
        assert Register.from_name(reg.asm_name) is reg


def test_from_name_rejects_unknown():
    with pytest.raises(ValueError):
        Register.from_name("r16")
    with pytest.raises(ValueError):
        Register.from_name("rax")


def test_frame_relative_flags():
    assert Register.SP.is_frame_relative
    assert Register.FP.is_frame_relative
    assert not Register.R0.is_frame_relative


def test_calling_convention_disjointness():
    assert RETURN_REGISTER not in ARG_REGISTERS
    assert STACK_POINTER not in CALLER_SAVED
    assert FRAME_POINTER in CALLEE_SAVED
    # Scratch registers never overlap argument registers, so expression
    # evaluation cannot clobber outgoing arguments.
    assert not set(SCRATCH_REGISTERS) & set(ARG_REGISTERS)


def test_arg_register_count():
    assert len(ARG_REGISTERS) == 5
