"""Tests for the redzone-aware heap allocator."""

import pytest

from repro.loader.layout import DEFAULT_LAYOUT
from repro.runtime.heap import ALIGNMENT, REDZONE_SIZE, Heap, HeapError
from repro.runtime.machine import Memory
from repro.sanitizers.asan import BinaryAsan


@pytest.fixture
def heap():
    memory = Memory()
    return Heap(memory, DEFAULT_LAYOUT)


@pytest.fixture
def asan_heap():
    memory = Memory()
    heap = Heap(memory, DEFAULT_LAYOUT)
    heap.asan = BinaryAsan(memory, DEFAULT_LAYOUT)
    return heap


def test_allocations_are_aligned_and_disjoint(heap):
    pointers = [heap.malloc(n) for n in (1, 7, 16, 100, 3)]
    for ptr in pointers:
        assert ptr % ALIGNMENT == 0
    spans = sorted((p, p + max(n, 1)) for p, n in zip(pointers, (1, 7, 16, 100, 3)))
    for (a_start, a_end), (b_start, _) in zip(spans, spans[1:]):
        assert a_end <= b_start


def test_redzone_gap_between_allocations(heap):
    first = heap.malloc(16)
    second = heap.malloc(16)
    assert second - (first + 16) >= REDZONE_SIZE


def test_calloc_zeroes(heap):
    ptr = heap.calloc(4, 8)
    assert heap.memory.read_bytes(ptr, 32) == bytes(32)


def test_realloc_copies_contents(heap):
    ptr = heap.malloc(8)
    heap.memory.write_bytes(ptr, b"ABCDEFGH")
    bigger = heap.realloc(ptr, 32)
    assert heap.memory.read_bytes(bigger, 8) == b"ABCDEFGH"
    assert heap.allocations[ptr].freed


def test_double_free_rejected(heap):
    ptr = heap.malloc(8)
    heap.free(ptr)
    with pytest.raises(HeapError):
        heap.free(ptr)


def test_foreign_pointer_free_rejected(heap):
    with pytest.raises(HeapError):
        heap.free(0x12345)


def test_free_null_is_noop(heap):
    heap.free(0)


def test_negative_malloc_rejected(heap):
    with pytest.raises(HeapError):
        heap.malloc(-1)


def test_arena_exhaustion(heap):
    with pytest.raises(HeapError):
        heap.malloc(heap.arena_size)


def test_allocation_containing(heap):
    ptr = heap.malloc(64)
    assert heap.allocation_containing(ptr + 10).address == ptr
    assert heap.allocation_containing(ptr - 1) is None


def test_statistics(heap):
    a = heap.malloc(10)
    heap.malloc(20)
    assert heap.allocation_count == 2
    assert heap.bytes_allocated == 30
    heap.free(a)
    assert heap.allocation_count == 1
    assert heap.bytes_allocated == 20


def test_asan_poisoning_around_allocation(asan_heap):
    ptr = asan_heap.malloc(10)
    asan = asan_heap.asan
    # Payload addressable, redzones and slack poisoned.
    assert not asan.is_poisoned(ptr, 10)
    assert asan.is_poisoned(ptr - 1, 1)
    assert asan.is_poisoned(ptr + 10, 1)
    assert asan.is_poisoned(ptr + 16, 1)


def test_asan_poisoning_after_free(asan_heap):
    ptr = asan_heap.malloc(32)
    asan_heap.free(ptr)
    assert asan_heap.asan.is_poisoned(ptr, 1)
    assert asan_heap.asan.is_poisoned(ptr + 31, 1)
