"""Reusable cross-engine differential harness.

Every execution engine (``legacy``, ``fast``, ``jit``) is only allowed to
change *how fast* executions run, never *what* they compute.  This module
is the shared enforcement tool: :func:`assert_engines_identical` runs one
target through every engine — across speculation-model variant sets and
nested-speculation policies — and asserts bit-identical behaviour
(status, exit status, steps, **cycle counts**, speculation statistics,
gadget reports and coverage maps).

It is imported by ``tests/runtime/test_differential.py`` but deliberately
kept test-framework-free so ad-hoc scripts, CI jobs and future engines
can reuse it::

    from differential import assert_engines_identical
    assert_engines_identical("gadgets", engines=("legacy", "fast", "jit"))
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.runtime.fastpath import engine_names, resolve_engine
from repro.runtime.speculation import (
    DisabledNestingPolicy,
    SpecFuzzNestingPolicy,
    SpecTaintNestingPolicy,
    TeapotNestingPolicy,
)
from repro.targets import get_target
from repro.targets.base import TargetProgram
from repro.targets.injection import compile_vanilla

#: Nesting-policy factories the harness understands, by name.  Fresh
#: instances are built per engine so per-branch counters never leak
#: between runs.
NESTING_POLICIES = {
    "disabled": DisabledNestingPolicy,
    "specfuzz": lambda: SpecFuzzNestingPolicy(ramp=4),
    "spectaint": lambda: SpecTaintNestingPolicy(max_visits=3),
    "teapot": TeapotNestingPolicy,
}

#: The speculation-model variant sets every engine must agree on: each
#: variant alone, and everything at once.
VARIANT_SETS: Tuple[Tuple[str, ...], ...] = (
    ("pht",), ("btb",), ("rsb",), ("stl",), ("pht", "btb", "rsb", "stl"),
)


def _resolve_target(target) -> TargetProgram:
    return target if isinstance(target, TargetProgram) else get_target(target)


def build_runtime(binary, engine: str, config: TeapotConfig,
                  policy_factory=None) -> TeapotRuntime:
    """A Teapot runtime on ``engine``, optionally with a custom nesting
    policy swapped in through :meth:`rebind_controller` (the supported
    way to re-policy an engine whose dispatch closes over the
    controller)."""
    runtime = TeapotRuntime(binary, config=config.with_engine(engine))
    if policy_factory is not None:
        _, controller_cls = resolve_engine(engine)
        controller = controller_cls(policy_factory(),
                                    rob_budget=config.rob_budget)
        runtime.controller = controller
        runtime.emulator.rebind_controller(controller)
    return runtime


def result_record(result) -> Dict:
    """An ExecutionResult as a comparable dictionary (reports serialized)."""
    record = dict(result.__dict__)
    record["reports"] = [report.to_dict() for report in result.reports]
    return record


def coverage_record(emulator) -> Tuple:
    return (
        emulator.coverage.normal.covered(),
        emulator.coverage.speculative.covered(),
    )


def campaign_record(result, fuzzer) -> Tuple:
    """Everything a fuzzing campaign computes, as one comparable tuple."""
    return (
        result.executions,
        result.total_cycles,
        result.total_steps,
        result.crashes,
        result.hangs,
        result.corpus_size,
        result.normal_coverage,
        result.speculative_coverage,
        result.spec_stats,
        result.reports.to_dicts(),
        fuzzer.corpus.to_dicts(),
    )


def default_inputs(target: TargetProgram) -> Sequence[bytes]:
    """Seeds plus a mid-sized perf input — in- and out-of-bounds shapes."""
    inputs = list(target.seeds)[:4]
    if target.perf_input_builder is not None:
        inputs.append(target.perf_input(48))
    return inputs


def assert_engines_identical(
    target,
    engines: Optional[Sequence[str]] = None,
    variants: Iterable[Sequence[str]] = (("pht",),),
    policies: Sequence[str] = ("teapot",),
    inputs: Optional[Sequence[bytes]] = None,
    baseline: str = "legacy",
) -> None:
    """Assert every engine reproduces ``baseline`` bit-for-bit.

    For each variant set and nesting policy, every input runs through a
    fresh Teapot runtime per engine; results (including cycles and spec
    stats) and final coverage maps must match the baseline engine
    exactly.

    ``target`` is a target name or :class:`TargetProgram`; ``engines``
    defaults to every registered engine; ``variants`` is an iterable of
    speculation-model variant *sets*; ``policies`` names entries of
    :data:`NESTING_POLICIES`.
    """
    target = _resolve_target(target)
    if engines is None:
        engines = engine_names()
    assert baseline in engines, f"baseline engine {baseline!r} not under test"
    run_inputs = list(inputs) if inputs is not None else default_inputs(target)
    for variant_set in variants:
        config = TeapotConfig(variants=tuple(variant_set))
        binary = TeapotRewriter(config).instrument(compile_vanilla(target))
        for policy_name in policies:
            factory = NESTING_POLICIES[policy_name]
            outcomes = {}
            for engine in engines:
                runtime = build_runtime(binary, engine, config, factory)
                records = [result_record(runtime.run(data))
                           for data in run_inputs]
                outcomes[engine] = (records,
                                    coverage_record(runtime.emulator))
            expected = outcomes[baseline]
            for engine, outcome in outcomes.items():
                for got, want, data in zip(outcome[0], expected[0],
                                           run_inputs):
                    assert got == want, (
                        f"{target.name}: {engine} diverged from {baseline} "
                        f"on input {data[:16].hex()} under "
                        f"variants={tuple(variant_set)} "
                        f"policy={policy_name}"
                    )
                assert outcome[1] == expected[1], (
                    f"{target.name}: {engine} coverage diverged from "
                    f"{baseline} under variants={tuple(variant_set)} "
                    f"policy={policy_name}"
                )


def assert_campaigns_identical(
    target,
    engines: Optional[Sequence[str]] = None,
    variants: Sequence[str] = ("pht",),
    policy: Optional[str] = None,
    iterations: int = 80,
    seed: int = 23,
    baseline: str = "legacy",
) -> None:
    """Assert full fuzzing campaigns are engine-invariant.

    Runs one deterministic campaign per engine through the Teapot runtime
    (coverage-guided loop, corpus evolution, report aggregation) and
    compares the complete campaign record.
    """
    target = _resolve_target(target)
    if engines is None:
        engines = engine_names()
    config = TeapotConfig(variants=tuple(variants))
    binary = TeapotRewriter(config).instrument(compile_vanilla(target))
    factory = NESTING_POLICIES[policy] if policy is not None else None
    campaigns = {}
    for engine in engines:
        runtime = build_runtime(binary, engine, config, factory)
        fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds),
                        seed=seed)
        campaigns[engine] = campaign_record(fuzzer.run_campaign(iterations),
                                            fuzzer)
    expected = campaigns[baseline]
    for engine, record in campaigns.items():
        assert record == expected, (
            f"{target.name}: campaign under {engine} diverged from "
            f"{baseline} (variants={tuple(variants)}, policy={policy})"
        )
