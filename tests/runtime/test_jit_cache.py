"""Persistent compiled-block cache: hits, reuse, staleness, corruption.

The jit engine's :class:`repro.runtime.jitcache.BlockCache` persists
compiled block modules across emulator constructions and across
processes.  These tests pin the accounting (cold miss → store, warm
memo/disk hits), cross-process reuse (pool-scheduler campaign workers
and sequential invocations), rejection of stale entries (rebuilt binary,
bumped codegen version, changed engine options) and recovery from
corrupted cache files.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro.runtime.jit as jit_module
from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.runtime import jitcache
from repro.runtime.jit import JitEmulator
from repro.runtime.jitcache import BlockCache
from repro.targets import get_target

SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the shared cache at a fresh per-test directory."""
    directory = str(tmp_path / "jit-cache")
    monkeypatch.setenv("REPRO_JIT_CACHE", directory)
    # the shared instance is keyed on the directory, so force a fresh one
    monkeypatch.setattr(jitcache, "_shared", None)
    monkeypatch.setattr(jitcache, "_shared_dir", None)
    return directory


@pytest.fixture
def gadgets_binary():
    return get_target("gadgets").compile()


def _cache_files(directory):
    if not os.path.isdir(directory):
        return []
    return sorted(name for name in os.listdir(directory)
                  if name.endswith(".jitblk"))


def test_cold_then_warm_hit_accounting(cache_dir, gadgets_binary):
    first = JitEmulator(gadgets_binary)
    cache = first._jit_cache
    assert first._jit_cache_event == "miss"
    assert cache.stats["misses"] == 1
    assert cache.stats["stores"] == 1
    assert len(_cache_files(cache_dir)) == 1

    # Same process, same (binary, options): served from the memo.
    second = JitEmulator(gadgets_binary)
    assert second._jit_cache_event == "hit"
    assert cache.stats["memo_hits"] == 1
    assert cache.stats["misses"] == 1

    # Fresh cache instance over the same directory: served from disk.
    fresh = BlockCache(cache_dir)
    assert fresh.load(*first._jit_key) is not None
    assert fresh.stats == {"memo_hits": 0, "disk_hits": 1, "misses": 0,
                           "stale": 0, "corrupt": 0, "stores": 0}


def test_warm_construction_executes_identically(cache_dir, gadgets_binary):
    data = b"\x00" + b"\x05" * 8
    cold = JitEmulator(gadgets_binary).run(data)
    # A second emulator (memo hit) must run the same: the generated
    # source is instance-independent.
    warm = JitEmulator(gadgets_binary).run(data)
    assert (warm.status, warm.exit_status, warm.steps, warm.cycles) == \
        (cold.status, cold.exit_status, cold.steps, cold.cycles)


def test_cross_process_reuse(cache_dir, gadgets_binary):
    """A second process over the same binary hits the disk cache."""
    parent = JitEmulator(gadgets_binary)
    assert parent._jit_cache_event == "miss"
    script = (
        "import json\n"
        "from repro.targets import get_target\n"
        "from repro.runtime.jit import JitEmulator\n"
        "em = JitEmulator(get_target('gadgets').compile())\n"
        "stats = dict(em._jit_cache.stats)\n"
        "stats['event'] = em._jit_cache_event\n"
        "print(json.dumps(stats))\n"
    )
    env = dict(os.environ, REPRO_JIT_CACHE=cache_dir,
               PYTHONPATH=SRC_ROOT + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, check=True)
    stats = json.loads(proc.stdout)
    assert stats["event"] == "hit"
    assert stats["disk_hits"] == 1
    assert stats["misses"] == 0
    assert stats["stale"] == 0
    assert stats["corrupt"] == 0


def test_pool_scheduler_campaign_reuses_cache(cache_dir):
    """A multi-worker jit campaign completes bit-identically to fast and
    leaves (and reuses) shared cache entries for its worker processes."""
    params = dict(targets=("gadgets",), tools=("teapot",), iterations=20,
                  rounds=2, shards=2, seed=13, workers=3)
    jit_summary = run_campaign(CampaignSpec(engine="jit", **params))
    assert _cache_files(cache_dir), "campaign left no cache entries"
    fast_summary = run_campaign(CampaignSpec(engine="fast", **params))
    jit_dict = jit_summary.to_dict()
    fast_dict = fast_summary.to_dict()
    # identical results; engine is execution mechanics, not fingerprint
    assert jit_dict == fast_dict

    # a serial rerun in this process reuses the entries the workers
    # published instead of compiling anything new
    before = dict(jitcache.shared_cache().stats)
    serial = dict(params, workers=1)
    rerun = run_campaign(CampaignSpec(engine="jit", **serial))
    assert rerun.to_dict() == jit_dict
    after = jitcache.shared_cache().stats
    assert after["memo_hits"] + after["disk_hits"] > \
        before["memo_hits"] + before["disk_hits"]
    assert after["stores"] == before["stores"]


def test_stale_rejected_when_binary_rebuilt(cache_dir, gadgets_binary):
    """An entry whose header hash mismatches (rebuilt binary behind the
    same truncated file name) is stale: rejected and recompiled."""
    emulator = JitEmulator(gadgets_binary)
    binary_hash, digest = emulator._jit_key
    cache = emulator._jit_cache
    path = cache.path_for(binary_hash, digest)
    # a "rebuilt" binary whose 16-hex prefix collides: same file name,
    # different full hash recorded in the header
    rebuilt_hash = binary_hash[:16] + "f" * (len(binary_hash) - 16)
    rebuilt_path = cache.path_for(rebuilt_hash, digest)
    assert rebuilt_path == path  # the prefix collision this test targets

    fresh = BlockCache(cache_dir)
    assert fresh.load(rebuilt_hash, digest) is None
    assert fresh.stats["stale"] == 1
    assert fresh.stats["corrupt"] == 0


def test_stale_rejected_when_version_bumped(cache_dir, gadgets_binary):
    """Entries from another repro version are stale, never loaded."""
    emulator = JitEmulator(gadgets_binary)
    binary_hash, digest = emulator._jit_key

    upgraded = BlockCache(cache_dir, version="999.0-next")
    assert upgraded.load(binary_hash, digest) is None
    assert upgraded.stats["stale"] == 1

    # ...and the upgraded process overwrites the stale entry in place.
    upgraded.store(binary_hash, digest, emulator._block_code)
    assert upgraded.stats["stores"] == 1
    reload = BlockCache(cache_dir, version="999.0-next")
    assert reload.load(binary_hash, digest) is not None
    assert reload.stats["disk_hits"] == 1


def test_codegen_version_bump_recompiles(cache_dir, gadgets_binary,
                                         monkeypatch):
    """Bumping the codegen version changes the options digest: old
    entries are simply never looked up again (cold recompile)."""
    first = JitEmulator(gadgets_binary)
    monkeypatch.setattr(jit_module, "_CODEGEN_VERSION", 999_999)
    bumped = JitEmulator(gadgets_binary)
    assert bumped._jit_cache_event == "miss"
    assert bumped._jit_key != first._jit_key
    assert len(_cache_files(cache_dir)) == 2


def test_engine_options_change_keys_new_entry(cache_dir, gadgets_binary):
    """Different engine options (here: max_steps) produce a different
    digest — a fresh compile — and a cross-keyed lookup whose header
    digest mismatches is rejected as stale."""
    small = JitEmulator(gadgets_binary, max_steps=1_000)
    large = JitEmulator(gadgets_binary, max_steps=2_000_000)
    assert small._jit_key != large._jit_key
    assert small._jit_cache.stats["misses"] == 2

    # Cross-key the stored entries: same binary, wrong options digest in
    # the header (simulates a digest-prefix collision after an options
    # change) — must be stale, not served.
    binary_hash, small_digest = small._jit_key
    _, large_digest = large._jit_key
    cache = small._jit_cache
    crossed_digest = large_digest[:16] + small_digest[16:]
    os.replace(cache.path_for(binary_hash, small_digest),
               cache.path_for(binary_hash, crossed_digest))
    fresh = BlockCache(cache_dir)
    assert fresh.load(binary_hash, crossed_digest) is None
    assert fresh.stats["stale"] == 1


@pytest.mark.parametrize("damage", ["truncate", "garbage", "no_newline",
                                    "bad_payload"])
def test_corrupted_cache_file_recovery(cache_dir, gadgets_binary, damage):
    """Unreadable entries are counted corrupt, deleted, and recompiled."""
    emulator = JitEmulator(gadgets_binary)
    binary_hash, digest = emulator._jit_key
    path = emulator._jit_cache.path_for(binary_hash, digest)
    with open(path, "rb") as handle:
        payload = handle.read()
    if damage == "truncate":
        damaged = payload[: payload.find(b"\n") + 3]
    elif damage == "garbage":
        damaged = b"\xde\xad\xbe\xef" * 8
    elif damage == "no_newline":
        damaged = payload.replace(b"\n", b" ")
    else:  # valid header, unmarshalable payload
        damaged = payload[: payload.find(b"\n") + 1] + b"not marshal data"
    with open(path, "wb") as handle:
        handle.write(damaged)

    fresh = BlockCache(cache_dir)
    assert fresh.load(binary_hash, digest) is None
    assert fresh.stats["corrupt"] == 1
    assert not os.path.exists(path), "corrupt entry must be deleted"

    # recovery: the next construction recompiles and re-publishes
    jitcache._shared = None
    jitcache._shared_dir = None
    recovered = JitEmulator(gadgets_binary)
    assert recovered._jit_cache_event == "miss"
    assert recovered._jit_cache.stats["stores"] == 1
    result = recovered.run(b"\x00" + b"\x05" * 8)
    assert result.status == "exit"


def test_disabled_cache_keeps_memo_only(tmp_path, monkeypatch,
                                        gadgets_binary):
    monkeypatch.setenv("REPRO_JIT_CACHE", "0")
    monkeypatch.setattr(jitcache, "_shared", None)
    monkeypatch.setattr(jitcache, "_shared_dir", None)
    first = JitEmulator(gadgets_binary)
    assert first._jit_cache.directory is None
    assert first._jit_cache_event == "miss"
    second = JitEmulator(gadgets_binary)
    assert second._jit_cache_event == "hit"
    assert second._jit_cache.stats["memo_hits"] == 1
