"""Property-based tests for the copy-on-write rollback journal.

Random interleavings of register writes, guest-memory writes, checkpoints
and rollbacks must restore byte-identical machine state — and the
journaling controller must agree with the legacy snapshot controller on
every observable (restored state, rollback ``undone`` counts, statistics).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime.machine import MachineState, StateJournal
from repro.runtime.speculation import (
    JournalingSpeculationController,
    NestedSpeculationPolicy,
    SpecFuzzNestingPolicy,
    SpeculationController,
)

REGION_START = 0x1000
REGION_SIZE = 0x2000


class AlwaysNest(NestedSpeculationPolicy):
    """Unconditionally enter speculation (up to a depth cap)."""

    name = "always"

    def __init__(self, max_depth: int = 8) -> None:
        self.max_depth = max_depth

    def should_enter(self, branch_address: int, depth: int) -> bool:
        return depth < self.max_depth


def _machine() -> MachineState:
    machine = MachineState()
    machine.memory.map_region(REGION_START, REGION_SIZE)
    return machine


def _state(machine: MachineState):
    """Full observable machine state (registers, flags, mapped memory)."""
    return (
        list(machine.registers),
        machine.flags.snapshot(),
        machine.memory.read_bytes(REGION_START, REGION_SIZE),
    )


def _guest_write(machine, controller, addr: int, data: bytes) -> None:
    """Write guest memory the way the emulator does for each controller.

    Legacy controllers need the explicit memory log; journaling controllers
    record the undo entry inside ``Memory.write_bytes`` itself.
    """
    if (
        not controller.uses_machine_journal
        and controller.in_simulation
        and machine.memory.is_mapped(addr, len(data))
    ):
        controller.log_memory_write(addr, machine.memory.read_bytes(addr, len(data)))
    machine.memory.write_bytes(addr, data)


#: One operation: (kind, a, b) with kind in reg/mem/flags/checkpoint/rollback.
_OPS = st.one_of(
    st.tuples(st.just("reg"), st.integers(0, 15), st.integers(0, 2**64 - 1)),
    st.tuples(st.just("mem"), st.integers(0, REGION_SIZE - 16),
              st.binary(min_size=1, max_size=16)),
    st.tuples(st.just("flags"), st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1)),
    st.tuples(st.just("checkpoint"), st.just(0), st.just(0)),
    st.tuples(st.just("rollback"), st.just(0), st.just(0)),
)


def _apply_ops(machine, controller, ops):
    """Drive one controller through an op sequence.

    Maintains the stack of full-state snapshots alongside the controller's
    checkpoints; every rollback pops the innermost snapshot and pairs it
    with the state actually restored.  Returns (pending snapshots,
    (restored, expected) pairs, ``undone`` counts) for cross-checking.
    """
    snapshots = []
    restored = []
    undone_counts = []
    for kind, a, b in ops:
        if kind == "reg":
            machine.set_reg(a, b)
        elif kind == "mem":
            _guest_write(machine, controller, REGION_START + a, b)
        elif kind == "flags":
            machine.flags.set_compare(a, b)
        elif kind == "checkpoint":
            if controller.maybe_enter(machine, branch_address=0x40,
                                      resume_pc=0x44 + len(snapshots)):
                snapshots.append(_state(machine))
        elif kind == "rollback":
            if controller.in_simulation:
                undone_counts.append(controller.rollback(machine))
                restored.append((_state(machine), snapshots.pop()))
    return snapshots, restored, undone_counts


@settings(max_examples=120, deadline=None)
@given(st.lists(_OPS, min_size=1, max_size=60))
def test_journal_rollback_restores_byte_identical_state(ops):
    """Rolling back always restores the exact state of the checkpoint."""
    machine = _machine()
    controller = JournalingSpeculationController(AlwaysNest())
    snapshots, restored, _ = _apply_ops(machine, controller, ops)
    # Every rollback must have restored the innermost snapshot.
    for state, expected in restored:
        assert state == expected
    # Unwinding whatever simulation is still active restores the rest,
    # innermost first.
    while controller.in_simulation:
        controller.rollback(machine)
        assert _state(machine) == snapshots.pop()
    assert not snapshots
    assert machine.journal is None
    assert machine.memory.journal is None
    assert len(controller.journal) == 0


@settings(max_examples=120, deadline=None)
@given(st.lists(_OPS, min_size=1, max_size=60))
def test_journaling_controller_matches_legacy_snapshots(ops):
    """Both controllers observe identical states and rollback costs."""
    legacy_machine, fast_machine = _machine(), _machine()
    legacy = SpeculationController(AlwaysNest())
    fast = JournalingSpeculationController(AlwaysNest())
    legacy_out = _apply_ops(legacy_machine, legacy, ops)
    fast_out = _apply_ops(fast_machine, fast, ops)
    assert fast_out == legacy_out
    assert _state(fast_machine) == _state(legacy_machine)
    assert legacy_machine.pc == fast_machine.pc
    assert fast.stats.as_dict() == legacy.stats.as_dict()
    assert fast.depth == legacy.depth


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 15), st.integers(0, 2**64 - 1)),
             min_size=0, max_size=20),
    st.lists(st.tuples(st.integers(0, REGION_SIZE - 8),
                       st.binary(min_size=1, max_size=8)),
             min_size=0, max_size=20),
)
def test_state_journal_nested_marks(reg_writes, mem_writes):
    """Popping journal segments restores exactly to each nested mark."""
    machine = _machine()
    journal = StateJournal()
    machine.attach_journal(journal)

    before_outer = _state(machine)
    outer_mark = journal.mark()
    for index, value in reg_writes:
        machine.set_reg(index, value)
    for offset, data in mem_writes:
        machine.memory.write_bytes(REGION_START + offset, data)

    before_inner = _state(machine)
    inner_mark = journal.mark()
    for index, value in reg_writes:
        machine.set_reg(index, value ^ 0xDEAD)
    for offset, data in mem_writes:
        machine.memory.write_bytes(REGION_START + offset, bytes(len(data)))

    inner_undone = journal.rollback_to(inner_mark, machine)
    assert _state(machine) == before_inner
    assert inner_undone == len(mem_writes)

    outer_undone = journal.rollback_to(outer_mark, machine)
    assert _state(machine) == before_outer
    assert outer_undone == len(mem_writes)
    assert len(journal) == 0
    machine.attach_journal(None)


def test_nested_speculation_pops_journal_segments():
    """Nested enter/rollback peels exactly one journal segment at a time."""
    machine = _machine()
    controller = JournalingSpeculationController(AlwaysNest())
    machine.set_reg(3, 100)
    machine.memory.write_int(REGION_START, 0xAAAA, 8)

    assert controller.maybe_enter(machine, branch_address=1, resume_pc=10)
    machine.set_reg(3, 200)
    machine.memory.write_int(REGION_START, 0xBBBB, 8)

    assert controller.maybe_enter(machine, branch_address=2, resume_pc=20)
    machine.set_reg(3, 300)
    machine.memory.write_int(REGION_START, 0xCCCC, 8)

    undone = controller.rollback(machine)
    assert undone == 1
    assert controller.depth == 1
    assert machine.pc == 20
    assert machine.get_reg(3) == 200
    assert machine.memory.read_int(REGION_START, 8) == 0xBBBB
    assert machine.journal is not None  # outer simulation still active

    undone = controller.rollback(machine)
    assert undone == 1
    assert controller.depth == 0
    assert machine.pc == 10
    assert machine.get_reg(3) == 100
    assert machine.memory.read_int(REGION_START, 8) == 0xAAAA
    assert machine.journal is None  # journal detached after the last pop


# ---------------------------------------------------------------------------
# Speculation-model interaction: mixed-model nesting over the journal
# ---------------------------------------------------------------------------

#: One op in a mixed-model run: register/memory writes, model-tagged
#: checkpoint entries (pht is checkpoint-driven, btb/stl dynamic), an STL
#: stale-window rewind (a journaled guest write of pre-store bytes), and
#: rollbacks.  Models the exact write pattern the emulator's model hooks
#: produce.
_MODEL_OPS = st.one_of(
    st.tuples(st.just("reg"), st.integers(0, 15), st.integers(0, 2**64 - 1)),
    st.tuples(st.just("mem"), st.integers(0, REGION_SIZE - 16),
              st.binary(min_size=1, max_size=16)),
    st.tuples(st.just("checkpoint"),
              st.sampled_from(["pht", "btb", "rsb", "stl"]), st.just(0)),
    st.tuples(st.just("stale"), st.integers(0, REGION_SIZE - 8),
              st.binary(min_size=8, max_size=8)),
    st.tuples(st.just("rollback"), st.just(0), st.just(0)),
)


def _apply_model_ops(machine, controller, ops):
    """Drive one controller through a mixed-model op sequence.

    ``stale`` ops emulate the STL hook: inside a simulation they rewrite
    guest memory to (pretend) pre-store bytes through the journaled write
    path.  Returns (pending snapshots, (restored, expected, model) rows,
    ``undone`` counts).
    """
    snapshots = []
    restored = []
    undone_counts = []
    site = 0x40
    for kind, a, b in ops:
        if kind == "reg":
            machine.set_reg(a, b)
        elif kind == "mem":
            _guest_write(machine, controller, REGION_START + a, b)
        elif kind == "stale":
            if controller.in_simulation:
                _guest_write(machine, controller, REGION_START + a, b)
        elif kind == "checkpoint":
            site += 4
            if controller.maybe_enter(machine, branch_address=site,
                                      resume_pc=site, model=a):
                snapshots.append((_state(machine), a, site))
        elif kind == "rollback":
            if controller.in_simulation:
                model = controller.checkpoints[-1].model
                undone_counts.append(controller.rollback(machine))
                state, expected_model, entry_site = snapshots.pop()
                assert expected_model == model
                restored.append((_state(machine), state, model))
                # Dynamic models arm the skip for their entry site; the
                # checkpoint-driven pht must not.
                if model == "pht":
                    assert controller.skip_site is None
                else:
                    assert controller.skip_site == entry_site
                    assert machine.pc == entry_site
    return snapshots, restored, undone_counts


@settings(max_examples=120, deadline=None)
@given(st.lists(_MODEL_OPS, min_size=1, max_size=60))
def test_mixed_model_nesting_pops_journal_marks_cleanly(ops):
    """BTB/RSB/STL/PHT checkpoints interleave; every rollback restores the
    exact entry state of *its* nesting level (journal marks pop cleanly)."""
    machine = _machine()
    controller = JournalingSpeculationController(AlwaysNest())
    snapshots, restored, _ = _apply_model_ops(machine, controller, ops)
    for state, expected, _model in restored:
        assert state == expected
    while controller.in_simulation:
        controller.rollback(machine)
        assert _state(machine) == snapshots.pop()[0]
    assert not snapshots
    assert machine.journal is None
    assert len(controller.journal) == 0


@settings(max_examples=120, deadline=None)
@given(st.lists(_MODEL_OPS, min_size=1, max_size=60))
def test_mixed_model_controllers_agree(ops):
    """Snapshot and journaling controllers agree under mixed-model runs."""
    legacy_machine, fast_machine = _machine(), _machine()
    legacy = SpeculationController(AlwaysNest())
    fast = JournalingSpeculationController(AlwaysNest())
    legacy_out = _apply_model_ops(legacy_machine, legacy, ops)
    fast_out = _apply_model_ops(fast_machine, fast, ops)
    assert fast_out == legacy_out
    assert _state(fast_machine) == _state(legacy_machine)
    assert fast.stats.as_dict() == legacy.stats.as_dict()
    assert fast.skip_site == legacy.skip_site


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, REGION_SIZE - 8),
    st.binary(min_size=8, max_size=8),
    st.binary(min_size=8, max_size=8),
)
def test_stl_stale_window_rewind_rolls_back(offset, committed, stale):
    """An STL entry's stale-memory rewind is undone by its own rollback,
    and the model's store window itself is architectural state that the
    rollback must NOT touch."""
    from repro.specmodels import StlModel

    machine = _machine()
    controller = JournalingSpeculationController(AlwaysNest())
    addr = REGION_START + offset

    class _Em:
        pass

    em = _Em()
    em.machine = machine
    em.dift = None

    stl = StlModel()
    machine.memory.write_bytes(addr, stale)
    stl.on_store(em, None, addr, 8)           # records old = `stale`
    machine.memory.write_bytes(addr, committed)

    index = stl.find(addr, 8)
    assert index is not None
    assert controller.maybe_enter(machine, branch_address=0x40,
                                  resume_pc=0x40, model="stl")
    old, _tags = stl.take(index)
    machine.memory.write_bytes(addr, old)     # journaled stale rewind
    assert machine.memory.read_bytes(addr, 8) == stale
    window_after_entry = list(stl.journal.entries)

    controller.rollback(machine)
    assert machine.memory.read_bytes(addr, 8) == committed
    assert stl.journal.entries == window_after_entry  # window untouched
    assert stl.find(addr, 8) is None           # each store forwards once


def test_btb_history_untouched_by_rollback():
    """Indirect-branch target state is architectural: entering and rolling
    back a BTB simulation leaves the (deliberately unjournaled) target
    history exactly as trained."""
    from repro.specmodels import BtbModel

    machine = _machine()
    controller = JournalingSpeculationController(AlwaysNest())
    btb = BtbModel()
    btb.observe_target(0x100)
    btb.observe_target(0x108)

    # A function-pointer slot in guest memory *is* rolled back...
    machine.memory.write_int(REGION_START, 0x100, 8)
    assert controller.maybe_enter(machine, branch_address=0x48,
                                  resume_pc=0x48, model="btb")
    machine.memory.write_int(REGION_START, 0x108, 8)
    btb_trained = list(btb.history)
    controller.rollback(machine)
    assert machine.memory.read_int(REGION_START, 8) == 0x100
    # ...while the BTB itself survives, like a real predictor.
    assert btb.history == btb_trained
    assert controller.skip_site == 0x48


def test_begin_run_clears_stale_journal():
    """A run that dies mid-simulation must not leak journal state."""
    machine = _machine()
    controller = JournalingSpeculationController(SpecFuzzNestingPolicy())
    assert controller.maybe_enter(machine, branch_address=1, resume_pc=10)
    machine.set_reg(0, 42)
    assert len(controller.journal) == 1

    controller.begin_run()
    assert not controller.in_simulation
    assert len(controller.journal) == 0
    assert machine.journal is None
    # A fresh simulation starts from a clean journal.
    assert controller.maybe_enter(machine, branch_address=1, resume_pc=10)
    assert controller.checkpoints[-1].journal_mark == 0
