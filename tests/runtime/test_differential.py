"""Differential harness: the fast engine must be bit-identical to legacy.

The fast emulator engine (decoded-trace dispatch + copy-on-write rollback
journaling, :mod:`repro.runtime.fastpath`) is only allowed to change *how
fast* executions run, never *what* they compute.  This suite runs every
Kocher gadget sample plus jsmn/libyaml smoke inputs through both engines
and asserts identical :class:`ExecutionResult` records (status, exit
status, steps, **cycle counts**, speculation statistics), identical gadget
reports, and identical coverage maps — parametrized over every nested
speculation policy.
"""

from __future__ import annotations

import pytest

from repro.baselines.specfuzz import SpecFuzzConfig, SpecFuzzRewriter, SpecFuzzRuntime
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.coverage.sancov import CoverageRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.runtime.emulator import Emulator
from repro.runtime.fastpath import FastEmulator, resolve_engine
from repro.runtime.speculation import (
    DisabledNestingPolicy,
    JournalingSpeculationController,
    SpecFuzzNestingPolicy,
    SpecTaintNestingPolicy,
    SpeculationController,
    TeapotNestingPolicy,
)
from repro.sanitizers.policy import KasperPolicy
from repro.targets import get_target
from repro.targets.injection import compile_vanilla

#: Nesting-policy factories the harness parametrizes over (fresh instances
#: per engine so per-branch counters never leak between the two runs).
NESTING_POLICIES = {
    "disabled": DisabledNestingPolicy,
    "specfuzz": lambda: SpecFuzzNestingPolicy(ramp=4),
    "spectaint": lambda: SpecTaintNestingPolicy(max_visits=3),
    "teapot": TeapotNestingPolicy,
}

#: Kocher-sample inputs: the four seed selectors plus mutated variants that
#: drive each gadget shape in and out of bounds.
KOCHER_INPUTS = [
    bytes([selector]) + payload
    for selector in range(4)
    for payload in (b"\x05" * 8, b"\x7f" * 8, b"\xff" * 8, bytes(range(8)))
]


@pytest.fixture(scope="module")
def gadgets_binary():
    """The Kocher-samples driver, Teapot-instrumented."""
    return TeapotRewriter(TeapotConfig()).instrument(
        compile_vanilla(get_target("gadgets"))
    )


def _build_pair(binary, policy_factory):
    """A (legacy, fast) emulator pair with identical configuration."""
    pair = []
    for fast in (False, True):
        controller_cls = JournalingSpeculationController if fast else SpeculationController
        emulator_cls = FastEmulator if fast else Emulator
        pair.append(
            emulator_cls(
                binary,
                controller=controller_cls(policy_factory()),
                policy=KasperPolicy(),
                coverage=CoverageRuntime(),
            )
        )
    return pair


def _result_record(result):
    """An ExecutionResult as a comparable dictionary (reports serialized)."""
    record = dict(result.__dict__)
    record["reports"] = [report.to_dict() for report in result.reports]
    return record


def _coverage_record(emulator):
    return (
        emulator.coverage.normal.covered(),
        emulator.coverage.speculative.covered(),
    )


@pytest.mark.parametrize("policy_name", sorted(NESTING_POLICIES))
def test_kocher_samples_identical_across_engines(gadgets_binary, policy_name):
    """Every Kocher sample: same results, reports, cycles on both engines."""
    legacy, fast = _build_pair(gadgets_binary, NESTING_POLICIES[policy_name])
    for data in KOCHER_INPUTS:
        expected = _result_record(legacy.run(data))
        actual = _result_record(fast.run(data))
        assert actual == expected, f"divergence on input {data.hex()}"
    assert _coverage_record(fast) == _coverage_record(legacy)


@pytest.mark.parametrize("policy_name", sorted(NESTING_POLICIES))
def test_kocher_fuzzing_campaign_identical(policy_name):
    """A full fuzzing loop over the Kocher samples is engine-invariant."""
    target = get_target("gadgets")
    config = TeapotConfig()
    binary = TeapotRewriter(config).instrument(compile_vanilla(target))

    campaigns = {}
    for engine in ("legacy", "fast"):
        runtime = TeapotRuntime(binary, config=config.with_engine(engine))
        # The runtime's own nesting policy is replaced to parametrize the
        # harness beyond the Teapot default.
        _, controller_cls = resolve_engine(engine)
        runtime.controller = controller_cls(
            NESTING_POLICIES[policy_name](), rob_budget=config.rob_budget
        )
        runtime.emulator.controller = runtime.controller
        if engine == "fast":
            # Decoded thunks close over the controller; rebuild the trace.
            runtime.emulator._trace = runtime.emulator._build_trace()
        fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=11)
        result = fuzzer.run_campaign(150)
        campaigns[engine] = (
            result.executions,
            result.total_cycles,
            result.total_steps,
            result.crashes,
            result.hangs,
            result.corpus_size,
            result.normal_coverage,
            result.speculative_coverage,
            result.spec_stats,
            result.reports.to_dicts(),
            fuzzer.corpus.to_dicts(),
        )
    assert campaigns["fast"] == campaigns["legacy"]


@pytest.mark.parametrize("target_name", ["jsmn", "libyaml"])
def test_real_target_smoke_identical(target_name):
    """jsmn/libyaml smoke inputs: identical results on both engines."""
    target = get_target(target_name)
    binary = TeapotRewriter(TeapotConfig()).instrument(compile_vanilla(target))
    legacy, fast = _build_pair(binary, TeapotNestingPolicy)
    inputs = list(target.seeds)[:2] + [target.perf_input(48)]
    for data in inputs:
        expected = _result_record(legacy.run(data))
        actual = _result_record(fast.run(data))
        assert actual == expected, f"{target_name}: divergence on {data[:16].hex()}"
    assert _coverage_record(fast) == _coverage_record(legacy)


def test_specfuzz_runtime_identical_across_engines():
    """The SpecFuzz baseline runtime is engine-invariant too."""
    target = get_target("gadgets")
    config = SpecFuzzConfig()
    binary = SpecFuzzRewriter(config).instrument(compile_vanilla(target))
    records = {}
    for engine in ("legacy", "fast"):
        runtime = SpecFuzzRuntime(binary, config=config.with_engine(engine))
        records[engine] = [
            _result_record(runtime.run(data)) for data in KOCHER_INPUTS[:8]
        ]
    assert records["fast"] == records["legacy"]


@pytest.mark.parametrize("variants", [
    ("btb",), ("rsb",), ("stl",), ("pht", "btb", "rsb", "stl"),
])
def test_variant_models_identical_across_engines(variants):
    """Speculation-model runs (BTB/RSB/STL, alone and combined) must be
    engine-invariant too: model sites funnel both engines through the same
    shared handlers, and this locks that in over full fuzzing loops on
    every planted gadget-sample target."""
    for target_name in ("gadgets-btb", "gadgets-rsb", "gadgets-stl"):
        target = get_target(target_name)
        config = TeapotConfig(variants=variants)
        binary = TeapotRewriter(config).instrument(compile_vanilla(target))
        campaigns = {}
        for engine in ("legacy", "fast"):
            runtime = TeapotRuntime(binary, config=config.with_engine(engine))
            fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds),
                            seed=23)
            result = fuzzer.run_campaign(80)
            campaigns[engine] = (
                result.executions,
                result.total_cycles,
                result.total_steps,
                result.crashes,
                result.hangs,
                result.corpus_size,
                result.normal_coverage,
                result.speculative_coverage,
                result.spec_stats,
                result.reports.to_dicts(),
                fuzzer.corpus.to_dicts(),
            )
        assert campaigns["fast"] == campaigns["legacy"], (
            f"{target_name} diverged under variants={variants}")


def test_fuzzer_engine_selection_rebuilds_target():
    """Fuzzer(engine=...) swaps the runtime's engine without changing results."""
    target = get_target("gadgets")
    config = TeapotConfig(engine="legacy")
    binary = TeapotRewriter(config).instrument(compile_vanilla(target))
    runtime = TeapotRuntime(binary, config=config)
    assert runtime.engine == "legacy"

    fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=5,
                    engine="fast")
    assert fuzzer.target.runtime.engine == "fast"
    assert isinstance(fuzzer.target.runtime.emulator, FastEmulator)

    legacy_fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=5)
    fast_result = fuzzer.run_campaign(60)
    legacy_result = legacy_fuzzer.run_campaign(60)
    assert fast_result.total_cycles == legacy_result.total_cycles
    assert fast_result.reports.to_dicts() == legacy_result.reports.to_dicts()


def test_fuzzer_engine_selection_requires_support():
    """Engine selection on a bare-emulator target raises a clear error."""
    target = get_target("gadgets")
    binary = compile_vanilla(target)
    with pytest.raises(ValueError, match="engine selection"):
        Fuzzer(FuzzTarget(Emulator(binary)), seeds=[b"\x00"], engine="fast")


def test_resolve_engine_rejects_unknown():
    with pytest.raises(ValueError, match="unknown emulator engine"):
        resolve_engine("turbo")
