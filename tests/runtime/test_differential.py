"""Differential suite: fast and jit engines must be bit-identical to legacy.

The fast emulator engine (decoded-trace dispatch + copy-on-write rollback
journaling, :mod:`repro.runtime.fastpath`) and the jit engine (compiled
basic blocks + persistent block cache, :mod:`repro.runtime.jit`) are only
allowed to change *how fast* executions run, never *what* they compute.
This suite drives the reusable harness in :mod:`differential` over the
full engine triple — every Kocher gadget sample, jsmn/libyaml smoke
inputs, full fuzzing campaigns and all four speculation-model variants —
asserting identical :class:`ExecutionResult` records (status, exit
status, steps, **cycle counts**, speculation statistics), identical
gadget reports, and identical coverage maps, parametrized over every
nested speculation policy.
"""

from __future__ import annotations

import pytest

from differential import (
    NESTING_POLICIES,
    VARIANT_SETS,
    assert_campaigns_identical,
    assert_engines_identical,
    result_record,
)
from repro.baselines.specfuzz import SpecFuzzConfig, SpecFuzzRewriter, SpecFuzzRuntime
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.runtime.emulator import Emulator
from repro.runtime.fastpath import FastEmulator, engine_names, resolve_engine
from repro.runtime.jit import JitEmulator
from repro.targets import get_target
from repro.targets.injection import compile_vanilla

#: The full engine triple under test, baseline first.
ENGINES = ("legacy", "fast", "jit")

#: Kocher-sample inputs: the four seed selectors plus mutated variants that
#: drive each gadget shape in and out of bounds.
KOCHER_INPUTS = [
    bytes([selector]) + payload
    for selector in range(4)
    for payload in (b"\x05" * 8, b"\x7f" * 8, b"\xff" * 8, bytes(range(8)))
]


def test_engine_registry_exposes_triple():
    """All three engines are registered (plugins may add more)."""
    assert set(ENGINES) <= set(engine_names())


@pytest.mark.parametrize("policy_name", sorted(NESTING_POLICIES))
def test_kocher_samples_identical_across_engines(policy_name):
    """Every Kocher sample: same results, reports, cycles on all engines."""
    assert_engines_identical(
        "gadgets",
        engines=ENGINES,
        policies=(policy_name,),
        inputs=KOCHER_INPUTS,
    )


@pytest.mark.parametrize("variant_set", VARIANT_SETS,
                         ids=lambda vs: "+".join(vs))
def test_kocher_samples_identical_across_variants(variant_set):
    """Each speculation-model variant set (PHT/BTB/RSB/STL and the full
    matrix) yields bit-identical runs on all three engines."""
    assert_engines_identical(
        "gadgets",
        engines=ENGINES,
        variants=(variant_set,),
        inputs=KOCHER_INPUTS[:8],
    )


@pytest.mark.parametrize("policy_name", sorted(NESTING_POLICIES))
def test_kocher_fuzzing_campaign_identical(policy_name):
    """A full fuzzing loop over the Kocher samples is engine-invariant."""
    assert_campaigns_identical(
        "gadgets",
        engines=ENGINES,
        policy=policy_name,
        iterations=150,
        seed=11,
    )


@pytest.mark.parametrize("target_name", ["jsmn", "libyaml"])
def test_real_target_smoke_identical(target_name):
    """jsmn/libyaml smoke inputs: identical results on all engines."""
    target = get_target(target_name)
    inputs = list(target.seeds)[:2] + [target.perf_input(48)]
    assert_engines_identical(target, engines=ENGINES, inputs=inputs)


def test_specfuzz_runtime_identical_across_engines():
    """The SpecFuzz baseline runtime is engine-invariant too."""
    target = get_target("gadgets")
    config = SpecFuzzConfig()
    binary = SpecFuzzRewriter(config).instrument(compile_vanilla(target))
    records = {}
    for engine in ENGINES:
        runtime = SpecFuzzRuntime(binary, config=config.with_engine(engine))
        records[engine] = [
            result_record(runtime.run(data)) for data in KOCHER_INPUTS[:8]
        ]
    assert records["fast"] == records["legacy"]
    assert records["jit"] == records["legacy"]


@pytest.mark.parametrize("variants", [
    ("btb",), ("rsb",), ("stl",), ("pht", "btb", "rsb", "stl"),
])
def test_variant_models_identical_across_engines(variants):
    """Speculation-model campaigns (BTB/RSB/STL, alone and combined) must
    be engine-invariant: model sites funnel every engine through the same
    shared handlers — the jit engine falls back to thunks there — and this
    locks that in over full fuzzing loops on every planted gadget-sample
    target."""
    for target_name in ("gadgets-btb", "gadgets-rsb", "gadgets-stl"):
        assert_campaigns_identical(
            target_name,
            engines=ENGINES,
            variants=variants,
            iterations=80,
            seed=23,
        )


def test_fuzzer_engine_selection_rebuilds_target():
    """Fuzzer(engine=...) swaps the runtime's engine without changing results."""
    target = get_target("gadgets")
    config = TeapotConfig(engine="legacy")
    binary = TeapotRewriter(config).instrument(compile_vanilla(target))
    runtime = TeapotRuntime(binary, config=config)
    assert runtime.engine == "legacy"

    fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=5,
                    engine="fast")
    assert fuzzer.target.runtime.engine == "fast"
    assert isinstance(fuzzer.target.runtime.emulator, FastEmulator)

    jit_fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=5,
                        engine="jit")
    assert jit_fuzzer.target.runtime.engine == "jit"
    assert isinstance(jit_fuzzer.target.runtime.emulator, JitEmulator)

    legacy_fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=5)
    fast_result = fuzzer.run_campaign(60)
    jit_result = jit_fuzzer.run_campaign(60)
    legacy_result = legacy_fuzzer.run_campaign(60)
    assert fast_result.total_cycles == legacy_result.total_cycles
    assert jit_result.total_cycles == legacy_result.total_cycles
    assert fast_result.reports.to_dicts() == legacy_result.reports.to_dicts()
    assert jit_result.reports.to_dicts() == legacy_result.reports.to_dicts()


def test_fuzzer_engine_selection_requires_support():
    """Engine selection on a bare-emulator target raises a clear error."""
    target = get_target("gadgets")
    binary = compile_vanilla(target)
    with pytest.raises(ValueError, match="engine selection"):
        Fuzzer(FuzzTarget(Emulator(binary)), seeds=[b"\x00"], engine="fast")


def test_resolve_engine_rejects_unknown():
    with pytest.raises(ValueError, match="unknown emulator engine"):
        resolve_engine("turbo")
