"""Property tests for jit block compilation.

Hypothesis generates random straight-line and branchy instruction
sequences through :mod:`repro.isa.builder`, assembles them, and runs
them through every engine: the compiled blocks' final register file,
flags, memory, DIFT tags and execution record must match the
single-stepping legacy and fast engines exactly.  A second property
drives *mid-block rollback*: a speculated (architecturally dead)
random sequence with a forced rollback placed at every instruction
boundary in turn, checking that the copy-on-write journal depth at
rollback and the restored state agree between the journaling engines.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from differential import result_record
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter
from repro.coverage.sancov import CoverageRuntime
from repro.isa.assembler import AsmProgram, Assembler
from repro.isa.builder import FunctionBuilder
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register
from repro.loader.binary_format import DataObject
from repro.runtime.fastpath import resolve_engine
from repro.runtime.speculation import TeapotNestingPolicy
from repro.sanitizers.policy import KasperPolicy

ENGINES = ("legacy", "fast", "jit")

#: Scratch registers the generated sequences compute in.  R6 is reserved
#: as the data-buffer base, R7 stays zero, SP/FP belong to the frame.
WORK_REGS = (Register.R0, Register.R1, Register.R2,
             Register.R3, Register.R4, Register.R5)

BUF_SIZE = 256
IN_SIZE = 64

# -- instruction-sequence strategies ----------------------------------------

_reg = st.sampled_from(WORK_REGS)
_imm = st.integers(min_value=-128, max_value=1 << 40)
_size = st.sampled_from((1, 2, 4, 8))
_alu = st.sampled_from(("add", "sub", "mul", "and_", "or_", "xor",
                        "shl", "shr", "sar"))
_cc_jump = st.sampled_from(("je", "jne", "jl", "jle", "jg", "jge",
                            "jb", "jae", "ja", "jbe"))


def _disp(size: int):
    return st.integers(min_value=0, max_value=BUF_SIZE - size)


_op = st.one_of(
    st.tuples(st.just("mov_imm"), _reg, _imm),
    st.tuples(st.just("mov_reg"), _reg, _reg),
    st.tuples(st.just("alu_imm"), _alu, _reg, _imm),
    st.tuples(st.just("alu_reg"), _alu, _reg, _reg),
    st.tuples(st.just("neg"), _reg),
    st.tuples(st.just("not"), _reg),
    st.tuples(st.just("cmp"), _reg, _imm),
    st.tuples(st.just("test"), _reg, _reg),
    st.tuples(st.just("lea"), _reg, _disp(8)),
    _size.flatmap(lambda s: st.tuples(st.just("load"), _reg,
                                      _disp(s), st.just(s))),
    _size.flatmap(lambda s: st.tuples(st.just("store_reg"), _disp(s),
                                      _reg, st.just(s))),
    _size.flatmap(lambda s: st.tuples(st.just("store_imm"), _disp(s),
                                      _imm, st.just(s))),
    st.tuples(st.just("push"), _reg),
    st.tuples(st.just("pop"), _reg),
)

_ops = st.lists(_op, min_size=1, max_size=24)
_input = st.binary(min_size=IN_SIZE, max_size=IN_SIZE)


def _emit_ops(fn: FunctionBuilder, ops, balance_stack: bool = True) -> None:
    """Emit a drawn op sequence; POPs only run against prior PushES so the
    frame stays intact (unbalanced stacks are only allowed on speculated
    paths, where the rollback discards them)."""
    depth = 0
    for op in ops:
        kind = op[0]
        if kind == "mov_imm":
            fn.mov(Reg(op[1]), Imm(op[2]))
        elif kind == "mov_reg":
            fn.mov(Reg(op[1]), Reg(op[2]))
        elif kind == "alu_imm":
            getattr(fn, op[1])(Reg(op[2]), Imm(op[3]))
        elif kind == "alu_reg":
            getattr(fn, op[1])(Reg(op[2]), Reg(op[3]))
        elif kind == "neg":
            fn.neg(Reg(op[1]))
        elif kind == "not":
            fn.not_(Reg(op[1]))
        elif kind == "cmp":
            fn.cmp(Reg(op[1]), Imm(op[2]))
        elif kind == "test":
            fn.test(Reg(op[1]), Reg(op[2]))
        elif kind == "lea":
            fn.lea(Reg(op[1]), Mem(base=Register.R6, disp=op[2]))
        elif kind == "load":
            fn.load(Reg(op[1]), Mem(base=Register.R6, disp=op[2]),
                    size=op[3])
        elif kind == "store_reg":
            fn.store(Mem(base=Register.R6, disp=op[1]), Reg(op[2]),
                     size=op[3])
        elif kind == "store_imm":
            fn.store(Mem(base=Register.R6, disp=op[1]),
                     Imm(op[2] & 0xFF), size=op[3])
        elif kind == "push":
            fn.push(Reg(op[1]))
            depth += 1
        elif kind == "pop":
            if not balance_stack or depth > 0:
                fn.pop(Reg(op[1]))
                depth = max(0, depth - 1)
    if balance_stack:
        for _ in range(depth):
            fn.pop(Reg(Register.R7))


def _build_binary(body) -> "TelfBinary":
    """Assemble main(): taint IN_SIZE input bytes, seed the work registers
    from them, run ``body(fn)``, return 0."""
    fn = FunctionBuilder("main")
    fn.prologue(16)
    fn.lea(Reg(Register.R6), Mem(disp=Label("scratch")))
    fn.lea(Reg(Register.R1), Mem(disp=Label("inbuf")))
    fn.mov(Reg(Register.R2), Imm(IN_SIZE))
    fn.ecall("read_input")
    fn.lea(Reg(Register.R5), Mem(disp=Label("inbuf")))
    for i, reg in enumerate(WORK_REGS[:4]):
        fn.load(Reg(reg), Mem(base=Register.R5, disp=8 * i), size=8)
    fn.lea(Reg(Register.R6), Mem(disp=Label("scratch")))
    body(fn)
    fn.mov(Reg(Register.R0), Imm(0))
    fn.epilogue()
    program = AsmProgram(
        functions=[fn.build()],
        data_objects=[DataObject("scratch", bytes(BUF_SIZE)),
                      DataObject("inbuf", bytes(IN_SIZE))],
    )
    return Assembler().assemble(program)


def _build_emulator(binary, engine: str):
    emulator_cls, controller_cls = resolve_engine(engine)
    controller = controller_cls(TeapotNestingPolicy())
    return emulator_cls(binary, controller=controller, policy=KasperPolicy(),
                        coverage=CoverageRuntime())


def _final_state(emulator, binary):
    """Everything a block computes: registers, flags, memory, DIFT tags."""
    machine = emulator.machine
    scratch = binary.symbol("scratch").address
    dift = emulator.dift
    return {
        "registers": machine.snapshot_registers(),
        "flags": machine.flags.snapshot(),
        "memory": bytes(machine.memory.read_int(scratch + i, 1)
                        for i in range(BUF_SIZE)),
        "register_tags": tuple(dift.register_tags),
        "flags_tag": dift.flags_tag,
        "memory_tags": tuple(dift.get_mem_tag(scratch + i, 1)
                             for i in range(BUF_SIZE)),
        "coverage": (emulator.coverage.normal.covered(),
                     emulator.coverage.speculative.covered()),
    }


def _assert_engines_agree(binary, data: bytes, spy_rollbacks: bool = False):
    outcomes = {}
    for engine in ENGINES:
        emulator = _build_emulator(binary, engine)
        depths = []
        if spy_rollbacks and engine != "legacy":
            controller = emulator.controller
            inner = controller.rollback

            def spying(machine, dift, reason, _c=controller, _i=inner,
                       _d=depths):
                _d.append((reason, len(_c.journal.entries)))
                return _i(machine, dift, reason)

            controller.rollback = spying
        record = result_record(emulator.run(data))
        outcomes[engine] = (record, _final_state(emulator, binary), depths)
    for engine in ("fast", "jit"):
        assert outcomes[engine][0] == outcomes["legacy"][0], (
            f"{engine} record diverged from legacy on input {data[:16].hex()}"
        )
        assert outcomes[engine][1] == outcomes["legacy"][1], (
            f"{engine} final state diverged from legacy "
            f"on input {data[:16].hex()}"
        )
    # Journal depth at every rollback: jit must mirror the fast engine.
    assert outcomes["jit"][2] == outcomes["fast"][2], (
        "jit journal depths at rollback diverged from fast"
    )
    return outcomes


# -- properties -------------------------------------------------------------

@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_ops, data=_input)
def test_straight_line_blocks_match_single_step(ops, data):
    """Random straight-line sequences: identical state on all engines."""
    binary = _build_binary(lambda fn: _emit_ops(fn, ops))
    _assert_engines_agree(binary, data)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(chunks=st.lists(st.tuples(_ops, _cc_jump, _imm),
                       min_size=1, max_size=3),
       tail=_ops, data=_input)
def test_branchy_blocks_match_single_step(chunks, tail, data):
    """Random forward-branching sequences: every fall-through/taken split
    compiles into conditional block exits that must behave identically."""
    def body(fn):
        for ops, jump, threshold in chunks:
            _emit_ops(fn, ops)
            fn.cmp(Reg(Register.R0), Imm(threshold))
            label = fn.fresh_label()
            getattr(fn, jump)(Label(label))
            fn.add(Reg(Register.R1), Imm(1))
            fn.label(label)
        _emit_ops(fn, tail)

    binary = _build_binary(body)
    _assert_engines_agree(binary, data)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(_op, min_size=1, max_size=12),
       boundary=st.integers(min_value=0, max_value=12), data=_input)
def test_mid_block_rollback_at_every_boundary(ops, boundary, data):
    """A speculated random sequence with a forced rollback at a drawn
    instruction boundary: the journaling engines must undo exactly the
    same journal depth and restore the same state the legacy snapshot
    restores."""
    boundary = min(boundary, len(ops))

    def body(fn):
        # The guard reads tainted input; the crafted high byte makes the
        # architectural path always jump over the speculated sequence.
        fn.load(Reg(Register.R1), Mem(base=Register.R5, disp=0), size=8)
        fn.cmp(Reg(Register.R1), Imm(1000))
        label = fn.fresh_label()
        fn.jae(Label(label))
        # Architecturally dead: runs only inside speculation simulation,
        # ends in a serializing fence that forces a mid-block rollback.
        _emit_ops(fn, ops[:boundary], balance_stack=False)
        fn.lfence()
        _emit_ops(fn, ops[boundary:], balance_stack=False)
        fn.label(label)

    data = bytes([data[0]]) + b"\xff" + data[2:]  # force inbuf[0:8] >= 1000
    binary = TeapotRewriter(TeapotConfig()).instrument(_build_binary(body))
    outcomes = _assert_engines_agree(binary, data, spy_rollbacks=True)
    record = outcomes["legacy"][0]
    assert record["spec_stats"]["simulations_started"] >= 1, (
        "the guarded branch never speculated — the property is vacuous"
    )
