"""Tests for the emulator's architectural execution."""

import pytest

from repro.isa.assembler import AsmProgram, Assembler
from repro.isa.builder import FunctionBuilder
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register
from repro.loader.binary_format import DataObject
from repro.minic.compiler import compile_source
from repro.runtime import Emulator

R = Register


def _assemble(functions, data=None, entry="main"):
    program = AsmProgram(functions=functions, entry=entry)
    for obj in data or []:
        program.add_data(obj)
    return Assembler().assemble(program)


def test_exit_status_from_main(simple_binary):
    result = Emulator(simple_binary).run()
    assert result.ok
    assert result.exit_status == 8
    assert result.cycles > 0
    assert result.arch_instructions == result.steps  # no pseudo ops


def test_input_consumption_and_arithmetic():
    source = r"""
    int main() {
        byte buf[32];
        int n = read_input(buf, 32);
        int total = 0;
        int i;
        for (i = 0; i < n; i++) {
            total = total + buf[i];
        }
        return total;
    }
    """
    binary = compile_source(source)
    emulator = Emulator(binary)
    assert emulator.run(bytes([1, 2, 3, 4])).exit_status == 10
    assert emulator.run(bytes([200, 100])).exit_status == 300
    assert emulator.run(b"").exit_status == 0


def test_signed_division_and_modulo():
    source = r"""
    int main() {
        byte buf[8];
        read_input(buf, 8);
        int a = buf[0];
        int b = buf[1];
        return a / b * 100 + a % b;
    }
    """
    binary = compile_source(source)
    result = Emulator(binary).run(bytes([17, 5]))
    assert result.exit_status == 300 + 2


def test_division_by_zero_crashes():
    source = r"""
    int main() {
        byte buf[8];
        read_input(buf, 8);
        return 10 / buf[0];
    }
    """
    binary = compile_source(source)
    result = Emulator(binary).run(bytes([0]))
    assert result.status == "crash"
    assert "division" in result.crash_reason


def test_wild_pointer_crashes():
    source = r"""
    int main() {
        byte *p = 123456789123;
        return p[0];
    }
    """
    binary = compile_source(source)
    result = Emulator(binary).run()
    assert result.status == "crash"
    assert "memory fault" in result.crash_reason


def test_fuel_exhaustion_reports_hang():
    source = r"""
    int main() {
        int x = 1;
        while (x) {
            x = x + 1;
        }
        return 0;
    }
    """
    binary = compile_source(source)
    result = Emulator(binary, max_steps=5000).run()
    assert result.status == "fuel"


def test_heap_and_memcpy_externals():
    source = r"""
    int main() {
        byte buf[16];
        int n = read_input(buf, 16);
        byte *copy = malloc(16);
        memcpy(copy, buf, n);
        int ok = memcmp(copy, buf, n);
        free(copy);
        return ok;
    }
    """
    binary = compile_source(source)
    assert Emulator(binary).run(b"abcdef").exit_status == 0


def test_string_externals():
    source = r"""
    int main() {
        byte *s = "teapot";
        return strlen(s);
    }
    """
    binary = compile_source(source)
    assert Emulator(binary).run().exit_status == 6


def test_indirect_call_through_function_pointer():
    source = r"""
    int double_it(int x) { return x * 2; }
    int triple_it(int x) { return x * 3; }
    int main() {
        byte buf[4];
        read_input(buf, 4);
        int fp = &double_it;
        if (buf[0] > 10) {
            fp = &triple_it;
        }
        return fp(7);
    }
    """
    binary = compile_source(source)
    assert Emulator(binary).run(bytes([1])).exit_status == 14
    assert Emulator(binary).run(bytes([100])).exit_status == 21


def test_exit_external_terminates():
    source = r"""
    int main() {
        exit(42);
        return 1;
    }
    """
    binary = compile_source(source)
    result = Emulator(binary).run()
    assert result.ok and result.exit_status == 42


def test_output_externals_collect_text():
    source = r"""
    int main() {
        print_str("hello");
        print_int(123);
        return 0;
    }
    """
    binary = compile_source(source)
    result = Emulator(binary).run()
    assert result.output == ["hello", "123"]


def test_argv_passed_to_main():
    source = r"""
    int main(int argc, byte *argv) {
        return argc;
    }
    """
    binary = compile_source(source)
    result = Emulator(binary).run(b"", argv=[b"prog", b"arg1"])
    assert result.exit_status == 2


def test_jump_table_execution_all_cases():
    from repro.minic.codegen import CompilerOptions, SwitchLowering
    source = r"""
    int classify(int c) {
        int r = 0;
        switch (c) {
            case 0: { r = 11; }
            case 1: { r = 22; }
            case 2: { r = 33; }
            case 5: { r = 55; }
            default: { r = 99; }
        }
        return r;
    }
    int main() {
        byte buf[4];
        read_input(buf, 4);
        return classify(buf[0]);
    }
    """
    for lowering in (SwitchLowering.BRANCH_CHAIN, SwitchLowering.JUMP_TABLE):
        binary = compile_source(source, CompilerOptions(switch_lowering=lowering))
        emulator = Emulator(binary)
        expected = {0: 11, 1: 22, 2: 33, 5: 55, 3: 99, 200: 99}
        for value, want in expected.items():
            assert emulator.run(bytes([value])).exit_status == want, (lowering, value)
