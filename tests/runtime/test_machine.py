"""Tests for machine state: flags, memory, registers."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import ConditionCode
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register
from repro.runtime.errors import MemoryFault
from repro.runtime.machine import Flags, MachineState, Memory, to_signed, to_unsigned


# -- flags --------------------------------------------------------------------

def test_compare_signed_conditions():
    flags = Flags()
    flags.set_compare(5, 10)
    assert flags.evaluate(ConditionCode.LT)
    assert not flags.evaluate(ConditionCode.GE)
    flags.set_compare(10, 10)
    assert flags.evaluate(ConditionCode.EQ)
    assert flags.evaluate(ConditionCode.LE)
    assert not flags.evaluate(ConditionCode.NE)


def test_compare_unsigned_conditions():
    flags = Flags()
    flags.set_compare(to_unsigned(-1), 10)   # 0xffff... is above 10 unsigned
    assert flags.evaluate(ConditionCode.A)
    assert not flags.evaluate(ConditionCode.B)
    flags.set_compare(3, 10)
    assert flags.evaluate(ConditionCode.B)


def test_negative_comparison_signed():
    flags = Flags()
    flags.set_compare(to_unsigned(-5), 3)
    assert flags.evaluate(ConditionCode.LT)
    assert flags.evaluate(ConditionCode.B) is False  # unsigned -5 is huge


def test_snapshot_restore():
    flags = Flags()
    flags.set_compare(1, 2)
    snapshot = flags.snapshot()
    flags.set_compare(5, 5)
    flags.restore(snapshot)
    assert flags.evaluate(ConditionCode.LT)


def test_snapshot_restore_after_add_overflow():
    """Restore must round-trip the carry/overflow bits set_add produces."""
    flags = Flags()
    # INT64_MAX + 1: signed overflow, no carry, negative result.
    a, b = (1 << 63) - 1, 1
    flags.set_add(a, b, (a + b) & ((1 << 64) - 1))
    assert flags.overflow and flags.sign and not flags.carry and not flags.zero
    snapshot = flags.snapshot()
    flags.set_logic(0)  # clobber every bit (CF=OF=0, ZF=1)
    flags.restore(snapshot)
    assert (flags.zero, flags.sign, flags.carry, flags.overflow) == snapshot
    # OF-sensitive condition codes: SF=OF=1 means the mathematically
    # positive sum reads as "greater-or-equal" despite the negative result.
    assert flags.evaluate(ConditionCode.GE)
    assert not flags.evaluate(ConditionCode.LT)

    # UINT64_MAX + 1: carry out, zero result, no signed overflow.
    flags.set_add((1 << 64) - 1, 1, 0)
    assert flags.carry and flags.zero and not flags.overflow
    snapshot = flags.snapshot()
    flags.set_compare(5, 3)
    flags.restore(snapshot)
    assert (flags.zero, flags.sign, flags.carry, flags.overflow) == snapshot
    assert flags.evaluate(ConditionCode.BE)


def test_snapshot_restore_after_sub_overflow():
    """Restore must round-trip the flags of INT64_MIN - 1 (signed overflow)."""
    flags = Flags()
    int64_min = 1 << 63  # INT64_MIN as an unsigned 64-bit value
    flags.set_sub(int64_min, 1, (int64_min - 1) & ((1 << 64) - 1))
    # INT64_MIN - 1 overflows to INT64_MAX: positive result, OF set.
    assert flags.overflow and not flags.sign and not flags.carry
    snapshot = flags.snapshot()
    flags.set_test(0, 0)
    flags.restore(snapshot)
    assert (flags.zero, flags.sign, flags.carry, flags.overflow) == snapshot
    # Signed: INT64_MIN < 1 even though SF is clear — only OF carries this.
    assert flags.evaluate(ConditionCode.LT)
    assert not flags.evaluate(ConditionCode.GT)


@given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
def test_add_flags_snapshot_restore_round_trip(a, b):
    """Property: snapshot/restore is lossless for every set_add outcome."""
    flags = Flags()
    flags.set_add(a, b, (a + b) & ((1 << 64) - 1))
    snapshot = flags.snapshot()
    flags.set_sub(b, a, (b - a) & ((1 << 64) - 1))
    flags.restore(snapshot)
    assert flags.snapshot() == snapshot


@given(st.integers(-2**63, 2**63 - 1), st.integers(-2**63, 2**63 - 1))
def test_compare_matches_python_semantics(a, b):
    """Property: signed and unsigned condition codes agree with Python ints."""
    flags = Flags()
    flags.set_compare(to_unsigned(a), to_unsigned(b))
    assert flags.evaluate(ConditionCode.EQ) == (a == b)
    assert flags.evaluate(ConditionCode.LT) == (a < b)
    assert flags.evaluate(ConditionCode.GE) == (a >= b)
    assert flags.evaluate(ConditionCode.B) == (to_unsigned(a) < to_unsigned(b))
    assert flags.evaluate(ConditionCode.AE) == (to_unsigned(a) >= to_unsigned(b))


# -- memory --------------------------------------------------------------------

def test_unmapped_access_faults():
    memory = Memory()
    with pytest.raises(MemoryFault):
        memory.read_bytes(0x5000, 4)
    with pytest.raises(MemoryFault):
        memory.write_bytes(0x5000, b"hi")


def test_mapped_read_write_round_trip():
    memory = Memory()
    memory.map_region(0x1000, 0x1000)
    memory.write_bytes(0x1800, b"hello world")
    assert memory.read_bytes(0x1800, 11) == b"hello world"
    memory.write_int(0x1000, -1, 8)
    assert memory.read_int(0x1000, 8) == to_unsigned(-1)


def test_access_straddling_region_boundary_faults():
    memory = Memory()
    memory.map_region(0x1000, 0x10)
    with pytest.raises(MemoryFault):
        memory.read_bytes(0x100C, 8)


def test_adjacent_regions_are_contiguous():
    memory = Memory()
    memory.map_region(0x1000, 0x10)
    memory.map_region(0x1010, 0x10)
    assert memory.is_mapped(0x1008, 16)


def test_cross_page_write():
    memory = Memory()
    memory.map_region(0, 3 * 4096)
    payload = bytes(range(256)) * 20
    memory.write_bytes(4000, payload)
    assert memory.read_bytes(4000, len(payload)) == payload


def test_shadow_access_bypasses_mapping():
    memory = Memory()
    shadow_addr = 0x2000_0000_0000
    memory.write_shadow_byte(shadow_addr, 0x41)
    assert memory.read_shadow_byte(shadow_addr) == 0x41
    # Unwritten shadow reads back as zero.
    assert memory.read_shadow_byte(shadow_addr + 100) == 0


def test_read_cstring():
    memory = Memory()
    memory.map_region(0x1000, 64)
    memory.write_bytes(0x1000, b"teapot\x00junk")
    assert memory.read_cstring(0x1000) == b"teapot"


# -- machine state ----------------------------------------------------------------

def test_effective_address_computation():
    machine = MachineState()
    machine.set_reg(Register.R1, 0x1000)
    machine.set_reg(Register.R2, 3)
    mem = Mem(base=Register.R1, index=Register.R2, scale=8, disp=16)
    assert machine.effective_address(mem) == 0x1000 + 24 + 16


def test_effective_address_wraps_to_64_bits():
    machine = MachineState()
    machine.set_reg(Register.R1, (1 << 64) - 8)
    assert machine.effective_address(Mem(base=Register.R1, disp=16)) == 8


def test_register_wrapping():
    machine = MachineState()
    machine.set_reg(Register.R0, -1)
    assert machine.get_reg(Register.R0) == (1 << 64) - 1


def test_push_pop():
    machine = MachineState()
    machine.memory.map_region(machine.layout.stack_bottom(),
                              machine.layout.stack_size + 256)
    machine.sp = machine.layout.stack_top
    machine.push(42)
    machine.push(99)
    assert machine.pop() == 99
    assert machine.pop() == 42


def test_read_operand():
    machine = MachineState()
    machine.set_reg(Register.R5, 7)
    assert machine.read_operand(Reg(Register.R5)) == 7
    assert machine.read_operand(Imm(-3)) == to_unsigned(-3)
    with pytest.raises(ValueError):
        machine.read_operand(Mem(base=Register.R5))


@given(st.integers(-2**70, 2**70))
def test_signed_unsigned_round_trip(value):
    """Property: to_signed(to_unsigned(x)) == x mod 2^64 interpreted as signed."""
    wrapped = to_unsigned(value)
    assert 0 <= wrapped < 2**64
    assert to_unsigned(to_signed(wrapped)) == wrapped
