"""Tests for the speculation controller and nesting policies."""

import pytest

from repro.runtime.machine import MachineState
from repro.runtime.speculation import (
    DisabledNestingPolicy,
    SpecFuzzNestingPolicy,
    SpecTaintNestingPolicy,
    SpeculationController,
    TeapotNestingPolicy,
)


def _machine():
    machine = MachineState()
    machine.memory.map_region(0x1000, 0x1000)
    return machine


def test_checkpoint_and_rollback_restores_state():
    machine = _machine()
    controller = SpeculationController(DisabledNestingPolicy())
    machine.set_reg(3, 111)
    machine.flags.set_compare(1, 2)
    machine.memory.write_int(0x1100, 0xAA, 8)

    assert controller.maybe_enter(machine, branch_address=0x40, resume_pc=0x44)
    machine.set_reg(3, 999)
    machine.flags.set_compare(9, 1)
    old = machine.memory.read_bytes(0x1100, 8)
    controller.log_memory_write(0x1100, old)
    machine.memory.write_int(0x1100, 0xBB, 8)

    undone = controller.rollback(machine)
    assert undone == 1
    assert machine.get_reg(3) == 111
    assert machine.memory.read_int(0x1100, 8) == 0xAA
    assert machine.pc == 0x44
    assert not controller.in_simulation


def test_rollback_without_checkpoint_raises():
    controller = SpeculationController()
    with pytest.raises(RuntimeError):
        controller.rollback(_machine())


def test_nested_rollback_unwinds_one_level():
    machine = _machine()
    controller = SpeculationController(TeapotNestingPolicy())
    assert controller.maybe_enter(machine, branch_address=1, resume_pc=10)
    assert controller.maybe_enter(machine, branch_address=2, resume_pc=20)
    assert controller.depth == 2
    assert controller.branch_addresses == (1, 2)
    controller.rollback(machine)
    assert controller.depth == 1
    assert machine.pc == 20
    controller.rollback(machine)
    assert machine.pc == 10
    assert controller.spec_instruction_count == 0


def test_budget_accounting():
    machine = _machine()
    controller = SpeculationController(DisabledNestingPolicy(), rob_budget=5)
    controller.maybe_enter(machine, branch_address=1, resume_pc=10)
    for _ in range(4):
        controller.count_instruction()
    assert not controller.budget_exceeded()
    controller.count_instruction()
    assert controller.budget_exceeded()


def test_disabled_policy_never_nests():
    policy = DisabledNestingPolicy()
    assert policy.should_enter(0x1, depth=0)
    assert not policy.should_enter(0x1, depth=1)


def test_spectaint_policy_five_visit_cap():
    policy = SpecTaintNestingPolicy(max_visits=5)
    entries = [policy.should_enter(0xAA, depth=0) for _ in range(8)]
    assert entries == [True] * 5 + [False] * 3
    # A different branch has its own budget.
    assert policy.should_enter(0xBB, depth=0)
    policy.reset()
    assert policy.should_enter(0xAA, depth=0)


def test_spectaint_policy_depth_cap():
    policy = SpecTaintNestingPolicy(max_visits=100, max_depth=6)
    assert not policy.should_enter(0xAA, depth=6)


def test_specfuzz_policy_ramps_depth_with_encounters():
    policy = SpecFuzzNestingPolicy(ramp=4, max_depth=6)
    # First encounters: only depth 0 allowed.
    assert policy.should_enter(0x1, depth=0)
    assert not policy.should_enter(0x1, depth=1)
    # After enough encounters the permitted depth grows.
    for _ in range(10):
        policy.should_enter(0x1, depth=0)
    assert policy.should_enter(0x1, depth=1)
    assert not policy.should_enter(0x1, depth=5)


def test_teapot_policy_eager_then_ramp():
    policy = TeapotNestingPolicy(eager_runs=3, ramp=100, max_depth=6)
    # Eager phase: deep nesting allowed immediately.
    assert policy.should_enter(0x1, depth=5)
    assert policy.should_enter(0x1, depth=4)
    assert policy.should_enter(0x1, depth=3)
    # After the eager budget, the SpecFuzz-style ramp takes over (ramp=100
    # means effectively depth 1 only).
    assert not policy.should_enter(0x1, depth=3)
    assert policy.should_enter(0x1, depth=0)


def test_teapot_policy_respects_max_depth():
    policy = TeapotNestingPolicy(eager_runs=100, max_depth=6)
    assert not policy.should_enter(0x7, depth=6)


def test_taint_log_rollback():
    machine = _machine()
    controller = SpeculationController()
    controller.maybe_enter(machine, branch_address=1, resume_pc=10)
    shadow_addr = 0x2000_0000_1000
    machine.memory.write_shadow_byte(shadow_addr, 0x1)
    controller.log_taint_write(shadow_addr, 0x1)
    machine.memory.write_shadow_byte(shadow_addr, 0x5)
    controller.rollback(machine)
    assert machine.memory.read_shadow_byte(shadow_addr) == 0x1


def test_stats_accumulate():
    machine = _machine()
    controller = SpeculationController(TeapotNestingPolicy())
    controller.maybe_enter(machine, branch_address=1, resume_pc=10)
    controller.count_instruction()
    controller.rollback(machine, reason="budget")
    stats = controller.stats.as_dict()
    assert stats["simulations_started"] == 1
    assert stats["budget_rollbacks"] == 1
    assert stats["simulated_instructions"] == 1
    controller.reset()
    assert controller.stats.simulations_started == 0
