"""Acceptance tests: planted BTB/RSB/STL gadgets are detected, identically
on both engines, and the variant matrix threads end to end.

These pin the headline guarantees of the speculation-model subsystem:

* each planted gadget-sample target yields >= 2 (in fact exactly 4) unique
  sites under its own variant, attributed to that variant,
* the fast and legacy engines produce bit-identical results with any
  variant set active (differential harness extension),
* campaigns fan the (target x tool) matrix over a third, speculation-
  variant axis whose checkpoints resume across variant sets, and
* a PHT-only configuration remains exactly the classic behaviour.
"""

from __future__ import annotations

import pytest

from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.targets import get_target
from repro.targets.injection import compile_vanilla

VARIANTS = ("btb", "rsb", "stl")

#: Per-variant unique-site floors on the planted gadget samples: the seed
#: replay alone finds these four (cache + port victims, two sites each);
#: fuzzing can only add sites on top.
EXPECTED_SITES = {"btb": 4, "rsb": 4, "stl": 4}


def test_target_listing_publishes_variant_capabilities():
    """``repro targets --json`` supersedes ad-hoc knowledge of which
    target plants which variant."""
    import repro.api as api

    records = {record["name"]: record for record in api.target_listing()}
    assert records["gadgets"]["variants"] == ["pht"]
    assert records["jsmn"]["variants"] == ["pht"]
    for variant in VARIANTS:
        assert variant in records[f"gadgets-{variant}"]["variants"], (
            f"gadgets-{variant} must advertise its planted variant")
    # The btb samples' function-pointer stores are themselves bypassable:
    # the capability list owns that fact (the CI golden pins the 2 sites).
    assert records["gadgets-btb"]["variants"] == ["btb", "stl"]


@pytest.fixture(scope="module")
def variant_binaries():
    binaries = {}
    for variant in VARIANTS:
        target = get_target(f"gadgets-{variant}")
        binaries[variant] = TeapotRewriter(TeapotConfig()).instrument(
            compile_vanilla(target))
    return binaries


def _campaign_record(result, fuzzer):
    return (
        result.executions,
        result.total_cycles,
        result.total_steps,
        result.crashes,
        result.hangs,
        result.corpus_size,
        result.normal_coverage,
        result.speculative_coverage,
        result.spec_stats,
        result.reports.to_dicts(),
        fuzzer.corpus.to_dicts(),
    )


@pytest.mark.parametrize("variant", VARIANTS)
def test_planted_sites_detected_identically_on_both_engines(
        variant, variant_binaries):
    """>= 2 planted sites per variant, bit-identical across engines."""
    target = get_target(f"gadgets-{variant}")
    binary = variant_binaries[variant]
    records = {}
    for engine in ("legacy", "fast"):
        config = TeapotConfig(engine=engine, variants=(variant,))
        fuzzer = Fuzzer(FuzzTarget(TeapotRuntime(binary, config=config)),
                        seeds=list(target.seeds), seed=7)
        result = fuzzer.run_campaign(60)
        records[engine] = _campaign_record(result, fuzzer)
        sites = {report.site for report in result.reports}
        assert len(sites) >= 2, f"{variant}: expected >= 2 planted sites"
        assert len(sites) >= EXPECTED_SITES[variant]
        assert {report.variant for report in result.reports} == {variant}
        # Speculation entries of the model were accounted separately.
        assert result.spec_stats[f"entered_{variant}"] > 0
    assert records["fast"] == records["legacy"], (
        f"{variant}: engines diverged")


def test_variant_off_means_no_variant_reports(variant_binaries):
    """With only PHT enabled, the planted BTB gadgets stay invisible."""
    target = get_target("gadgets-btb")
    config = TeapotConfig()   # variants=("pht",)
    fuzzer = Fuzzer(FuzzTarget(TeapotRuntime(variant_binaries["btb"],
                                             config=config)),
                    seeds=list(target.seeds), seed=7)
    result = fuzzer.run_campaign(30)
    assert all(report.variant == "pht" for report in result.reports)
    assert "entered_btb" not in result.spec_stats


def test_fuzzer_variant_selection_rebuilds_target(variant_binaries):
    """Fuzzer(variants=...) swaps the runtime's variant set."""
    config = TeapotConfig()
    runtime = TeapotRuntime(variant_binaries["stl"], config=config)
    fuzzer = Fuzzer(FuzzTarget(runtime), seeds=[b"\x01"], seed=3,
                    variants=["stl", "pht"])
    assert fuzzer.target.runtime.config.variants == ("stl", "pht")
    with pytest.raises(ValueError, match="variant selection"):
        from repro.runtime.emulator import Emulator

        Fuzzer(FuzzTarget(Emulator(variant_binaries["stl"])),
               seeds=[b"\x01"], variants=["stl"])


def test_campaign_variant_axis_and_resume_across_variant_sets(tmp_path):
    """Variants are a matrix axis; checkpoints resume across variant sets."""
    checkpoint = tmp_path / "variant-campaign.json"
    base = CampaignSpec(
        targets=("gadgets-stl",), tools=("teapot",), iterations=24,
        rounds=2, seed=5, spec_variants=("pht",),
    )
    first = run_campaign(base, checkpoint_path=str(checkpoint),
                         scheduler="serial")
    row = first.row("gadgets-stl", "teapot")
    assert set(row.by_variant) <= {"pht"}

    # One job per (group, spec variant): the axis expands the matrix.
    grown = CampaignSpec(
        targets=("gadgets-stl",), tools=("teapot",), iterations=24,
        rounds=2, seed=5, spec_variants=("pht", "stl"),
    )
    assert len(grown.jobs_for_round(0)) == 2 * len(base.jobs_for_round(0))
    # PHT jobs keep their historic seeds: bit-identical single-variant runs.
    assert [job.seed for job in base.jobs_for_round(0)] == [
        job.seed for job in grown.jobs_for_round(0) if job.spec_variant == "pht"
    ]

    # The fingerprint ignores the variant axis, so the PHT checkpoint
    # resumes under the grown variant set (finished rounds stay cached).
    assert grown.fingerprint() == base.fingerprint()
    resumed = run_campaign(grown, checkpoint_path=str(checkpoint),
                           resume=True, scheduler="serial")
    resumed_row = resumed.row("gadgets-stl", "teapot")
    assert resumed_row.executions == row.executions
    assert resumed_row.by_variant == row.by_variant


def test_campaign_multi_variant_reports_are_attributed(tmp_path):
    spec = CampaignSpec(
        targets=("gadgets-stl",), tools=("teapot",), iterations=16,
        rounds=1, seed=5, spec_variants=("pht", "stl"),
    )
    summary = run_campaign(spec, scheduler="serial")
    row = summary.row("gadgets-stl", "teapot")
    assert row.by_variant.get("stl", 0) >= 2
    assert row.to_dict()["by_variant"] == row.by_variant
    # Executions doubled: each variant fuzzes the full budget.
    assert row.executions == 2 * spec.iterations


def test_spectaint_only_non_pht_matrix_is_rejected():
    """A matrix that would expand to zero jobs fails loudly at spec time."""
    with pytest.raises(ValueError, match="pht"):
        CampaignSpec(targets=("gadgets",), tools=("spectaint",),
                     iterations=8, spec_variants=("btb",))


def test_hardening_breakdown_splits_partially_mitigated_sites():
    """A site whose PHT path died but whose STL path survived counts as
    eliminated-for-pht and residual-for-stl."""
    from repro.hardening.pipeline import _variant_breakdown

    eliminated = [{"variants": ["pht"]}]
    residual = [{"variants": ["pht", "stl"], "residual_variants": ["stl"]}]
    new = [{"variants": ["btb"]}]
    breakdown = _variant_breakdown(eliminated, residual, new)
    assert breakdown["pht"] == {"eliminated": 2, "residual": 0, "new": 0}
    assert breakdown["stl"] == {"eliminated": 0, "residual": 1, "new": 0}
    assert breakdown["btb"] == {"eliminated": 0, "residual": 0, "new": 1}
    # Records predating residual_variants fall back to all-residual.
    legacy = _variant_breakdown([], [{"variants": ["pht", "stl"]}], [])
    assert legacy["pht"]["residual"] == 1
    assert legacy["stl"]["residual"] == 1


def test_spectaint_jobs_stay_pht_only():
    spec = CampaignSpec(
        targets=("gadgets",), tools=("teapot", "spectaint"), iterations=8,
        rounds=1, seed=1, spec_variants=("pht", "btb"),
    )
    jobs = spec.jobs_for_round(0)
    spectaint = [job for job in jobs if job.tool == "spectaint"]
    assert {job.spec_variant for job in spectaint} == {"pht"}
    teapot = [job for job in jobs if job.tool == "teapot"]
    assert {job.spec_variant for job in teapot} == {"pht", "btb"}


def test_specfuzz_baseline_gains_variants(variant_binaries):
    """The SpecFuzz baseline detects planted STL sites too (novel: the
    original tool is PHT-only)."""
    from repro.baselines.specfuzz import (
        SpecFuzzConfig,
        SpecFuzzRewriter,
        SpecFuzzRuntime,
    )

    target = get_target("gadgets-stl")
    config = SpecFuzzConfig(variants=("stl",))
    binary = SpecFuzzRewriter(config).instrument(compile_vanilla(target))
    records = {}
    for engine in ("legacy", "fast"):
        runtime = SpecFuzzRuntime(binary,
                                  config=config.with_engine(engine))
        outcomes = []
        sites = set()
        for seed in target.seeds:
            result = runtime.run(seed)
            outcomes.append((result.status, result.cycles, result.steps,
                             [r.to_dict() for r in result.reports]))
            sites.update(r.site for r in result.reports)
        records[engine] = outcomes
        assert len(sites) >= 2
        assert all(site[3] == "stl" for site in sites)
    assert records["fast"] == records["legacy"]
