"""Unit tests for the speculation-model subsystem (registry + models)."""

from __future__ import annotations

import pytest

from repro.plugins import (
    MODEL_REGISTRY,
    DuplicatePluginError,
    UnknownPluginError,
    model_names,
    register_model,
)
from repro.runtime.machine import MachineState
from repro.runtime.speculation import (
    JournalingSpeculationController,
    SpeculationController,
    TeapotNestingPolicy,
)
from repro.specmodels import (
    BtbModel,
    PhtModel,
    RsbModel,
    SpeculationModel,
    StlModel,
    build_models,
)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_builtin_models_registered():
    assert model_names() == ["btb", "pht", "rsb", "stl"]


def test_build_models_returns_fresh_instances():
    first = build_models(("btb", "stl"))
    second = build_models(("btb", "stl"))
    assert [m.name for m in first] == ["btb", "stl"]
    assert first[0] is not second[0]  # stateful: one instance per runtime


def test_build_models_deduplicates_preserving_order():
    models = build_models(("stl", "pht", "stl"))
    assert [m.name for m in models] == ["stl", "pht"]


def test_build_models_unknown_name_lists_options():
    with pytest.raises(UnknownPluginError, match="btb, pht, rsb, stl"):
        build_models(("smotherspectre",))


def test_register_model_rejects_duplicates():
    with pytest.raises(DuplicatePluginError):
        register_model("pht", PhtModel)


def test_third_party_model_plugs_in():
    @register_model("test-variant")
    class TestModel(SpeculationModel):
        name = "test-variant"

    try:
        (model,) = build_models(("test-variant",))
        assert isinstance(model, TestModel)
    finally:
        MODEL_REGISTRY.unregister("test-variant")
    assert "test-variant" not in model_names()


# ---------------------------------------------------------------------------
# model semantics (against a stub emulator)
# ---------------------------------------------------------------------------

class StubEmulator:
    """Just enough of an Emulator for the model hooks."""

    def __init__(self, code=(0x100, 0x108, 0x110, 0x118)):
        self.instructions = {addr: object() for addr in code}
        self.machine = MachineState()
        self.machine.memory.map_region(0x1000, 0x1000)
        self.dift = None


def test_btb_history_is_bounded_and_move_to_front():
    btb = BtbModel(history_size=2)
    for target in (1, 2, 3):
        btb.observe_target(target)
    assert btb.history == [3, 2]
    btb.observe_target(2)
    assert btb.history == [2, 3]


def test_btb_candidates_exclude_actual_and_non_code():
    em = StubEmulator()
    btb = BtbModel()
    btb.observe_target(0x100)
    btb.observe_target(0xDEAD)   # not decodable code
    btb.observe_target(0x108)
    assert btb.mispredicted_targets(em, None, 0x108) == [0x100]
    assert btb.mispredicted_targets(em, None, 0x999) == [0x108, 0x100]


def test_btb_rotates_candidates_per_site():
    btb = BtbModel()
    candidates = [0x100, 0x108]
    assert btb.choose_target(0x40, candidates) == 0x100
    assert btb.choose_target(0x40, candidates) == 0x108
    assert btb.choose_target(0x40, candidates) == 0x100
    # Rotation counters are per site.
    assert btb.choose_target(0x44, candidates) == 0x100


def test_btb_history_survives_begin_run():
    btb = BtbModel()
    btb.observe_target(0x100)
    btb.begin_run()
    assert btb.history == [0x100]   # BTBs are not flushed between runs
    btb.reset()
    assert btb.history == []


def test_rsb_overflow_overwrites_oldest():
    em = StubEmulator()
    rsb = RsbModel(depth=2)
    rsb.on_call(em, None, 0x100)
    rsb.on_call(em, None, 0x108)
    rsb.on_call(em, None, 0x110)   # overflow: overwrites 0x100
    assert rsb.pop() == 0x110
    assert rsb.pop() == 0x108
    # Underflow past the live entries cycles onto stale slots.
    assert rsb.pop() == 0x110


def test_rsb_mispredicts_only_to_decodable_stale_entries():
    em = StubEmulator()
    rsb = RsbModel(depth=2)
    assert rsb.mispredicted_targets(em, None, 0x100) == []  # empty buffer
    rsb.on_call(em, None, 0x108)
    assert rsb.mispredicted_targets(em, None, 0x108) == []  # prediction right
    assert rsb.mispredicted_targets(em, None, 0x100) == [0x108]


def test_rsb_resets_per_run():
    em = StubEmulator()
    rsb = RsbModel(depth=2)
    rsb.on_call(em, None, 0x108)
    rsb.begin_run()
    assert rsb.mispredicted_targets(em, None, 0x100) == []


def test_stl_window_matches_youngest_and_consumes_once():
    em = StubEmulator()
    stl = StlModel(window=4)
    em.machine.memory.write_bytes(0x1000, b"\x11" * 8)
    stl.on_store(em, None, 0x1000, 8)        # record old = 0x11...
    em.machine.memory.write_bytes(0x1000, b"\x22" * 8)
    stl.on_store(em, None, 0x1000, 8)        # record old = 0x22...
    index = stl.find(0x1000, 8)
    assert index is not None
    stale, _ = stl.take(index)
    assert stale == b"\x22" * 8              # youngest record wins
    index = stl.find(0x1000, 8)
    stale, _ = stl.take(index)
    assert stale == b"\x11" * 8
    assert stl.find(0x1000, 8) is None       # each store forwards once


def test_stl_requires_exact_range_and_bounds_window():
    em = StubEmulator()
    stl = StlModel(window=2)
    stl.on_store(em, None, 0x1000, 8)
    assert stl.find(0x1000, 4) is None       # width mismatch
    assert stl.find(0x1004, 8) is None       # address mismatch
    stl.on_store(em, None, 0x1010, 8)
    stl.on_store(em, None, 0x1020, 8)        # evicts the 0x1000 record
    assert stl.find(0x1000, 8) is None
    stl.begin_run()
    assert stl.find(0x1010, 8) is None       # store queues do not survive


def test_stl_ignores_unmapped_stores():
    em = StubEmulator()
    stl = StlModel()
    stl.on_store(em, None, 0xDEAD0000, 8)
    assert len(stl.journal.entries) == 0


# ---------------------------------------------------------------------------
# controller integration: model-tagged checkpoints and the rollback skip
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("controller_cls", [
    SpeculationController, JournalingSpeculationController,
])
def test_checkpoints_tagged_with_model(controller_cls):
    machine = MachineState()
    machine.memory.map_region(0x1000, 0x1000)
    controller = controller_cls(TeapotNestingPolicy())
    assert controller.current_model == "pht"

    assert controller.maybe_enter(machine, branch_address=0x40,
                                  resume_pc=0x40, model="stl")
    assert controller.current_model == "stl"
    assert controller.maybe_enter(machine, branch_address=0x48,
                                  resume_pc=0x4C)
    assert controller.current_model == "pht"    # nested default entry

    # Rolling back a PHT checkpoint arms no skip; a dynamic model's does.
    controller.rollback(machine)
    assert controller.skip_site is None
    assert controller.current_model == "stl"
    controller.rollback(machine)
    assert controller.skip_site == 0x40
    assert controller.consume_skip(0x40) is True
    assert controller.consume_skip(0x40) is False
    assert controller.stats.model_entries == {"stl": 1}
    assert controller.stats.as_dict()["entered_stl"] == 1


def test_pht_only_stats_serialization_unchanged():
    controller = SpeculationController(TeapotNestingPolicy())
    machine = MachineState()
    controller.maybe_enter(machine, branch_address=0x40, resume_pc=0x44)
    controller.rollback(machine)
    assert "entered_pht" not in controller.stats.as_dict()
    assert set(controller.stats.as_dict()) == {
        "simulations_started", "nested_simulations", "rollbacks",
        "forced_rollbacks", "exception_rollbacks", "budget_rollbacks",
        "max_depth_reached", "simulated_instructions",
    }
