"""Tests for disassembly, CFG recovery and symbolization."""

import pytest

from repro.disasm import DisassemblyError, disassemble, format_function, format_module
from repro.isa.assembler import AsmProgram, Assembler
from repro.isa.builder import FunctionBuilder
from repro.isa.instructions import Opcode
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register
from repro.loader.binary_format import DataObject
from repro.minic.compiler import compile_source
from repro.rewriting import reassemble


def test_functions_and_blocks_recovered(simple_binary):
    module = disassemble(simple_binary)
    assert module.function_names() == ["main", "helper"]
    main = module.function("main")
    # main: prologue block, then the return-site block after the call.
    assert len(main.blocks) == 2
    assert main.blocks[1].is_return_site


def test_call_target_symbolized(simple_binary):
    module = disassemble(simple_binary)
    call = [i for i in module.function("main").instructions()
            if i.opcode is Opcode.CALL][0]
    assert call.operands[0] == Label("helper")


def test_branch_targets_become_block_labels(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    for func in module.functions:
        for block in func.blocks:
            for instr in block.instructions:
                if instr.opcode in (Opcode.JMP, Opcode.JCC):
                    target = instr.operands[0]
                    assert isinstance(target, Label)
                    assert func.has_block(target.name)


def test_successors_are_consistent(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    for func in module.functions:
        labels = {b.label for b in func.blocks}
        for block in func.blocks:
            for succ in block.successors:
                assert succ in labels


def test_global_reference_symbolized(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    referenced = set()
    for func in module.functions:
        for instr in func.instructions():
            for label in instr.labels():
                referenced.add(label.name.split("::")[0])
    assert "limit" in referenced


def test_data_objects_recovered(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    limit = module.data_object("limit")
    assert limit.size == 8
    assert int.from_bytes(limit.data, "little") == 16


def test_reassembly_is_idempotent(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    rebuilt = reassemble(module)
    assert rebuilt.text.data == spectre_victim_binary.text.data
    module2 = disassemble(rebuilt)
    assert module2.function_names() == module.function_names()


def test_reassembly_idempotent_for_all_fixtures(simple_binary):
    rebuilt = reassemble(disassemble(simple_binary))
    assert rebuilt.text.data == simple_binary.text.data


def test_jump_table_successors_recovered():
    source = r"""
    int dispatch(int v) {
        int r = 0;
        switch (v) {
            case 0: { r = 10; }
            case 1: { r = 20; }
            case 2: { r = 30; }
            default: { r = 0; }
        }
        return r;
    }
    int main() {
        byte buf[4];
        read_input(buf, 4);
        return dispatch(buf[0]);
    }
    """
    from repro.minic.codegen import CompilerOptions, SwitchLowering
    binary = compile_source(source, CompilerOptions(switch_lowering=SwitchLowering.JUMP_TABLE))
    module = disassemble(binary)
    dispatch = module.function("dispatch")
    ijmps = [i for i in dispatch.instructions() if i.opcode is Opcode.IJMP]
    assert len(ijmps) == 1
    table_block = [b for b in dispatch.blocks if b.terminator is not None
                   and b.terminator.opcode is Opcode.IJMP][0]
    # The jump table has at least the three case targets as successors.
    assert len(table_block.successors) >= 3
    # Case-target blocks are marked address-taken (their addresses sit in rodata).
    taken = [b for b in dispatch.blocks if b.address_taken]
    assert len(taken) >= 3
    # Reassembling a program with a jump table keeps it runnable.
    rebuilt = reassemble(module)
    from repro.runtime import Emulator
    result = Emulator(rebuilt).run(bytes([2]))
    assert result.ok and result.exit_status == 30


def test_zero_sized_function_rejected():
    builder = FunctionBuilder("main")
    builder.ret()
    program = AsmProgram(functions=[builder.build()])
    binary = Assembler().assemble(program)
    binary.symbols[0].size = 0
    with pytest.raises(DisassemblyError):
        disassemble(binary)


def test_printer_produces_text(simple_binary):
    module = disassemble(simple_binary)
    text = format_module(module)
    assert "function main" in text
    assert "call helper" in text
    assert format_function(module.function("helper"))
