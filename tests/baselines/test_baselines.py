"""Tests for the SpecFuzz and SpecTaint baselines."""

import pytest

from repro.baselines.specfuzz import SpecFuzzConfig, SpecFuzzRewriter, SpecFuzzRuntime
from repro.baselines.spectaint import SpecTaintAnalyzer, SpecTaintConfig
from repro.disasm import disassemble
from repro.isa.instructions import Opcode
from repro.runtime import Emulator
from repro.sanitizers.reports import AttackerClass


def test_specfuzz_emits_guards_everywhere(spectre_victim_binary):
    rewriter = SpecFuzzRewriter()
    instrumented = rewriter.instrument(spectre_victim_binary)
    module = disassemble(instrumented)
    guard_count = sum(
        1 for f in module.functions for i in f.instructions()
        if i.opcode is Opcode.GUARD_CHECK
    )
    assert guard_count > 0
    stats = rewriter.last_stats["specfuzz-mixed-instrumentation"]
    assert stats["guarded_asan_checks"] > 0
    assert instrumented.metadata["tool"] == "specfuzz"
    # Single copy: no $spec functions.
    assert all(not f.name.endswith("$spec") for f in module.functions)


def test_specfuzz_preserves_program_semantics(spectre_victim_binary, inbounds_input):
    instrumented = SpecFuzzRewriter().instrument(spectre_victim_binary)
    native = Emulator(spectre_victim_binary).run(inbounds_input)
    runtime = SpecFuzzRuntime(instrumented, config=SpecFuzzConfig())
    result = runtime.run(inbounds_input)
    assert result.ok
    assert result.exit_status == native.exit_status


def test_specfuzz_detects_oob_without_attribution(spectre_victim_binary, oob_input):
    instrumented = SpecFuzzRewriter().instrument(spectre_victim_binary)
    runtime = SpecFuzzRuntime(instrumented)
    result = runtime.run(oob_input)
    assert result.ok
    assert result.reports
    assert all(r.attacker is AttackerClass.UNKNOWN for r in result.reports)
    assert all(r.tool == "specfuzz" for r in result.reports)


def test_spectaint_runs_unmodified_binary(spectre_victim_binary, inbounds_input):
    analyzer = SpecTaintAnalyzer(spectre_victim_binary)
    native = Emulator(spectre_victim_binary).run(inbounds_input)
    result = analyzer.run(inbounds_input)
    assert result.ok
    assert result.exit_status == native.exit_status
    assert result.spec_stats["simulations_started"] > 0


def test_spectaint_detects_user_controlled_leak(spectre_victim_binary):
    # A moderately out-of-bounds index: the speculative load lands in mapped
    # heap memory (so it does not fault away the transient window) and the
    # loaded value is then dereferenced — SpecTaint's user-taint-only policy
    # flags the flow without needing any bounds information.
    analyzer = SpecTaintAnalyzer(spectre_victim_binary)
    result = analyzer.run(bytes([100, 0, 0, 0]) + bytes(12))
    assert result.ok
    assert any(r.tool == "spectaint" for r in result.reports)


def test_spectaint_reports_without_bounds_evidence(spectre_victim_binary):
    """SpecTaint flags user-controlled speculative flows even when the access
    lands in perfectly valid memory — the over-restrictive policy the paper
    attributes to its lack of program-level information."""
    from repro.core import TeapotRewriter
    from repro.core.teapot import TeapotRuntime

    mild = bytes([100, 0, 0, 0]) + bytes(12)   # OOB index but mapped, unpoisoned
    st_result = SpecTaintAnalyzer(spectre_victim_binary).run(mild)
    teapot = TeapotRuntime(TeapotRewriter().instrument(spectre_victim_binary))
    tp_result = teapot.run(mild)
    assert st_result.reports
    # Teapot requires sanitizer-visible out-of-bounds evidence before calling
    # the loaded value a secret, so it stays quiet here.
    assert not [r for r in tp_result.reports if r.attacker is AttackerClass.USER]


def test_spectaint_emulation_overhead(spectre_victim_binary, inbounds_input):
    """Full-system emulation makes SpecTaint an order of magnitude slower."""
    native = Emulator(spectre_victim_binary).run(inbounds_input)
    st_result = SpecTaintAnalyzer(
        spectre_victim_binary, config=SpecTaintConfig(nested_speculation=False)
    ).run(inbounds_input)
    assert st_result.cycles > 20 * native.cycles


def test_spectaint_five_visit_cap_limits_exploration(spectre_victim_binary, oob_input):
    config = SpecTaintConfig()
    analyzer = SpecTaintAnalyzer(spectre_victim_binary, config=config)
    totals = []
    for _ in range(8):
        result = analyzer.run(oob_input)
        totals.append(result.spec_stats["simulations_started"])
    # Statistics are cumulative across the campaign; the per-run increment
    # must shrink to (near) zero once every branch has used its five visits.
    increments = [b - a for a, b in zip(totals, totals[1:])]
    assert increments[-1] < increments[0] or increments[-1] == 0
    assert increments[-1] <= 1
    # Overall exploration stays bounded by five visits per static branch.
    branch_count = 16
    assert analyzer.controller.stats.simulations_started <= 5 * branch_count


def test_nesting_disabled_configs():
    assert SpecFuzzConfig().without_nesting().nested_speculation is False
    assert SpecTaintConfig().without_nesting().nested_speculation is False
    # The original configs are unchanged.
    assert SpecFuzzConfig().nested_speculation is True
