"""Cross-module integration tests: the full Figure 3 workflow."""

import pytest

from repro.analysis.experiments import run_figure2
from repro.baselines.specfuzz import SpecFuzzRewriter, SpecFuzzRuntime
from repro.baselines.spectaint import SpecTaintAnalyzer
from repro.core import TeapotConfig, TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.fuzzing import Fuzzer, FuzzTarget
from repro.loader import dumps_binary, loads_binary
from repro.runtime import Emulator
from repro.targets import get_target, compile_vanilla, inject_gadgets
from repro.targets.case_studies import LZMA_CASE_STUDY, MASSAGE_CASE_STUDY
from repro.sanitizers.reports import AttackerClass, Channel


def test_full_workflow_on_serialized_cots_binary(tmp_path):
    """Compile → write to disk → load the opaque binary → rewrite → fuzz."""
    target = get_target("jsmn")
    path = tmp_path / "jsmn.telf"
    path.write_bytes(dumps_binary(compile_vanilla(target)))

    cots = loads_binary(path.read_bytes())
    instrumented = TeapotRewriter().instrument(cots)
    runtime = TeapotRuntime(instrumented)
    fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=3)
    campaign = fuzzer.run_campaign(10)
    assert campaign.executions == 10
    assert campaign.normal_coverage > 0


def test_instrumented_binaries_preserve_behaviour_across_tools():
    target = get_target("libhtp")
    binary = compile_vanilla(target)
    seed = target.seeds[0]
    native = Emulator(binary).run(seed).exit_status

    teapot = TeapotRuntime(TeapotRewriter().instrument(binary))
    specfuzz = SpecFuzzRuntime(SpecFuzzRewriter().instrument(binary))
    spectaint = SpecTaintAnalyzer(binary)
    assert teapot.run(seed).exit_status == native
    assert specfuzz.run(seed).exit_status == native
    assert spectaint.run(seed).exit_status == native


def test_injected_gadgets_found_by_short_campaign():
    target = get_target("jsmn")
    injected = inject_gadgets(target)
    config = TeapotConfig(massage_enabled=False, taint_sources_enabled=False)
    instrumented = TeapotRewriter(config).instrument(injected.binary)
    runtime = TeapotRuntime(instrumented, config=config)
    fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=11)
    campaign = fuzzer.run_campaign(20)
    assert campaign.gadget_count() >= 1
    assert all(r.attacker is AttackerClass.USER for r in campaign.reports)


def test_figure2_switch_lowering_shape():
    results = {r.lowering: r for r in run_figure2()}
    chain = results["branch_chain"]
    table = results["jump_table"]
    assert chain.spectre_v1_exposed
    assert not table.spectre_v1_exposed
    assert chain.conditional_branches > table.conditional_branches


def test_case_study_lzma_offset_manipulation_detected():
    """Appendix A.1: the dictionary-size offset gadget is a User-* gadget."""
    binary = LZMA_CASE_STUDY.compile()
    runtime = TeapotRuntime(TeapotRewriter().instrument(binary))
    crafted = bytes([0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 1]) + bytes(8)
    result = runtime.run(crafted)
    assert result.ok
    assert any(r.attacker is AttackerClass.USER for r in result.reports)


def test_case_study_massage_port_exercises_nested_speculation():
    """Appendix A.2: the memory-massage gadget needs three nested
    mispredictions.  The paper notes that detecting it is "extremely
    challenging if not impossible" for prior tools; here we check that
    Teapot's runtime explores the nested misprediction chain (the
    prerequisite the other detectors lack) and that the program's
    architectural behaviour is untouched while doing so."""
    binary = MASSAGE_CASE_STUDY.compile()
    config = TeapotConfig(eager_runs=8)
    runtime = TeapotRuntime(TeapotRewriter(config).instrument(binary), config=config)
    baseline = Emulator(binary).run(bytes([7, 1, 2, 3, 200, 250, 9, 9]))
    result = None
    for _ in range(4):
        result = runtime.run(bytes([7, 1, 2, 3, 200, 250, 9, 9]))
        assert result.ok
        assert result.exit_status == baseline.exit_status
    stats = result.spec_stats
    assert stats["nested_simulations"] > 0
    assert stats["max_depth_reached"] >= 2
