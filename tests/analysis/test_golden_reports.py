"""Golden-report regression: Table 3/4 summaries are frozen bit-for-bit.

The checked-in ``golden/tables.json`` pins the exact detection summaries of
``run_table3``/``run_table4`` for a fixed seed at reduced scale.  The tests
assert that both emulator engines still reproduce the file exactly — any
diff means either a behaviour regression or a deliberate change that must
be acknowledged by regenerating the golden file:

    PYTHONPATH=src python tests/analysis/test_golden_reports.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import run_table3, run_table4

GOLDEN_PATH = Path(__file__).parent / "golden" / "tables.json"


def _golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def _table3_rows(config, engine):
    rows = run_table3(
        programs=tuple(config["programs"]),
        fuzz_iterations=config["fuzz_iterations"],
        seed=config["seed"],
        engine=engine,
    )
    return [row.as_dict() for row in rows]


def _table4_rows(config, engine):
    rows = run_table4(
        programs=tuple(config["programs"]),
        fuzz_iterations=config["fuzz_iterations"],
        seed=config["seed"],
        engine=engine,
    )
    return [row.as_dict() for row in rows]


@pytest.mark.parametrize("engine", ["fast", "legacy"])
def test_table3_matches_golden(engine):
    golden = _golden()["table3"]
    assert _table3_rows(golden, engine) == golden["rows"]


@pytest.mark.parametrize("engine", ["fast", "legacy"])
def test_table4_matches_golden(engine):
    golden = _golden()["table4"]
    assert _table4_rows(golden, engine) == golden["rows"]


def _regenerate() -> None:
    golden = _golden()
    golden["table3"]["rows"] = _table3_rows(golden["table3"], "fast")
    golden["table4"]["rows"] = _table4_rows(golden["table4"], "fast")
    with GOLDEN_PATH.open("w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"regenerated {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
