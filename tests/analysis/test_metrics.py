"""Tests for detection scoring and the experiment harness plumbing."""

import pytest

from repro.analysis.metrics import DetectionScore, classify_reports, precision_recall
from repro.sanitizers.reports import AttackerClass, Channel, GadgetReport
from repro.targets import get_target, inject_gadgets
from repro.core import TeapotRewriter


def test_detection_score_derived_metrics():
    score = DetectionScore(ground_truth=10, true_positives=8, false_positives=2,
                           false_negatives=2)
    assert score.precision == pytest.approx(0.8)
    assert score.recall == pytest.approx(0.8)
    row = score.as_row()
    assert row["GT"] == 10 and row["TP"] == 8


def test_detection_score_edge_cases():
    silent = DetectionScore(5, 0, 0, 5)
    assert silent.precision == 1.0 and silent.recall == 0.0
    empty_gt = DetectionScore(0, 0, 3, 0)
    assert empty_gt.recall == 1.0
    assert precision_recall(3, 1, 4) == (0.75, 0.75)


@pytest.fixture(scope="module")
def injected_jsmn():
    injected = inject_gadgets(get_target("jsmn"))
    instrumented = TeapotRewriter().instrument(injected.binary)
    return injected, instrumented


def _report(pc, attacker=AttackerClass.USER):
    return GadgetReport(tool="teapot", channel=Channel.MDS, attacker=attacker,
                        pc=pc, branch_addresses=(0,), depth=1)


def test_classify_reports_function_attribution(injected_jsmn):
    injected, instrumented = injected_jsmn
    # A report inside a gadget-bearing function counts toward its gadgets.
    gadget_function = injected.gadgets[0].function
    shadow = instrumented.symbol(gadget_function + "$spec")
    hit = _report(shadow.address + 5)
    # A report in a function without gadgets is a false positive.
    clean_fn = instrumented.symbol("is_space")
    miss = _report(clean_fn.address + 5)
    score = classify_reports(injected, [hit, miss], instrumented)
    assert score.true_positives >= 1
    assert score.false_positives == 1
    assert score.ground_truth == injected.ground_truth_count


def test_classify_reports_ignores_massage_when_requested(injected_jsmn):
    injected, instrumented = injected_jsmn
    gadget_function = injected.gadgets[0].function
    shadow = instrumented.symbol(gadget_function + "$spec")
    massage_only = [_report(shadow.address + 5, attacker=AttackerClass.MASSAGE)]
    score = classify_reports(injected, massage_only, instrumented,
                             require_user_attacker=True)
    assert score.true_positives == 0
    score2 = classify_reports(injected, massage_only, instrumented,
                              require_user_attacker=False)
    assert score2.true_positives >= 1


def test_classify_reports_empty_is_all_false_negatives(injected_jsmn):
    injected, instrumented = injected_jsmn
    score = classify_reports(injected, [], instrumented)
    assert score.true_positives == 0
    assert score.false_negatives == injected.ground_truth_count
    assert score.precision == 1.0
