"""Pin the public surface of ``repro.api``.

The CI ``api-surface`` job runs this module; a drifted ``__all__`` —
something added, removed or renamed — must fail here first, so surface
changes are always deliberate and reviewed.  Update ``EXPECTED_SURFACE``
together with ``docs/api.md`` when the facade intentionally grows.
"""

import repro.api

EXPECTED_SURFACE = sorted([
    # pipeline builder
    "BENCH_TOOLS",
    "Pipeline",
    "PipelineError",
    "Session",
    "pipeline",
    # run artifact
    "RESULT_KIND",
    "SCHEMA_VERSION",
    "ResultSchemaError",
    "RunResult",
    "StageRecord",
    # plugin registries
    "ENGINE_REGISTRY",
    "MODEL_REGISTRY",
    "PASS_REGISTRY",
    "SCHEDULER_REGISTRY",
    "DuplicatePluginError",
    "PluginError",
    "PluginRegistry",
    "UnknownPluginError",
    "engine_names",
    "model_names",
    "register_engine",
    "register_model",
    "register_pass",
    "register_scheduler",
    "register_target",
    "scheduler_names",
    "strategy_names",
    "target_names",
    "target_registry",
    "target_listing",
    # building blocks a plugin author needs
    "AttackPoint",
    "CampaignSpec",
    "GadgetReport",
    "HardeningResult",
    "SpeculationModel",
    "TargetProgram",
    # telemetry / observability
    "MetricsRegistry",
    "Telemetry",
    "TraceWriter",
    "aggregate_trace",
    "read_trace",
    # campaign observatory
    "RunDirectory",
    "RunRegistry",
    "diff_bench",
    "render_prometheus",
    "serve_metrics",
])


def test_public_surface_matches_snapshot():
    assert sorted(repro.api.__all__) == EXPECTED_SURFACE


def test_every_exported_name_resolves():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None, name


def test_schema_version_is_pinned():
    # Bumping the artifact schema is a compatibility event: update the
    # loader's accepted range and docs/api.md alongside this constant.
    assert repro.api.SCHEMA_VERSION == 1
    assert repro.api.RESULT_KIND == "repro.api/run-result"
