"""The facade must be a re-plumbing, not a re-implementation.

Every Pipeline stage is compared against the classic subsystem entry
point it wraps: identical campaign summaries, identical hardening
results, identical experiment rows.  Combined with the golden-table
tests in ``tests/analysis``, this pins the bit-identical-routing
acceptance criterion.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.analysis.experiments import run_hardening_matrix
from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.fuzzing.fuzzer import CampaignResult
from repro.hardening.pipeline import detect_reports, run_hardening


def test_fuzz_stage_matches_direct_campaign():
    spec = CampaignSpec(targets=("gadgets",), tools=("teapot",),
                        variants=("vanilla",), iterations=40, rounds=1,
                        shards=1, seed=21, skip_uninjectable=False)
    direct = run_campaign(spec)
    facade = (api.pipeline(target="gadgets", seed=21)
              .fuzz(iterations=40).report())
    assert facade.summary.to_dict() == direct.to_dict()
    assert facade.stage("fuzz").payload["fingerprint"] == direct.fingerprint


def test_campaign_stage_matches_direct_campaign():
    spec = CampaignSpec(targets=("gadgets", "jsmn"), tools=("teapot",),
                        variants=("vanilla",), iterations=30, rounds=2,
                        shards=2, seed=8)
    direct = run_campaign(spec)
    facade = api.pipeline().campaign(spec=spec).report()
    assert facade.stage("campaign").payload["summary"] == direct.to_dict()


def test_hardening_chain_matches_run_hardening():
    reports = detect_reports("gadgets", iterations=120, seed=42)
    direct = run_hardening("gadgets", "fence", iterations=120, seed=42,
                           reports=reports)
    facade = (api.pipeline(target="gadgets", seed=42)
              .reports(reports).harden("fence").refuzz(iterations=120)
              .report().hardening_result)
    assert facade.to_dict() == direct.to_dict()


def test_hardening_matrix_rows_match_classic_composition():
    # run_hardening_matrix is routed through the facade; its rows must be
    # bit-identical with hand-composing the classic entry points.
    (row,) = run_hardening_matrix(targets=("gadgets",),
                                  strategies=("fence",),
                                  iterations=120, seed=42)
    reports = detect_reports("gadgets", iterations=120, seed=42)
    classic = run_hardening("gadgets", "fence", iterations=120, seed=42,
                            reports=reports)
    assert row.results["fence"].to_dict() == classic.to_dict()


def test_fuzz_stage_embeds_a_campaign_result():
    # The fuzz payload is a superset of CampaignResult.to_dict(): the
    # embedded record round-trips through the dataclass without glue.
    run = api.pipeline(target="gadgets", seed=21).fuzz(iterations=40).report()
    payload = run.stage("fuzz").payload
    rebuilt = CampaignResult.from_dict(payload)
    assert rebuilt.to_dict() == {
        key: payload[key] for key in rebuilt.to_dict()
    }
    assert rebuilt.executions == 40
    assert rebuilt.gadget_count() == payload["unique_gadgets"]


def test_engine_choice_is_result_invariant_through_the_facade():
    fast = (api.pipeline(target="gadgets", seed=13, engine="fast")
            .fuzz(iterations=40).report())
    legacy = (api.pipeline(target="gadgets", seed=13, engine="legacy")
              .fuzz(iterations=40).report())
    fast_payload = dict(fast.stage("fuzz").payload)
    legacy_payload = dict(legacy.stage("fuzz").payload)
    # The engine is recorded in the spec but never affects outcomes.
    assert fast_payload.pop("spec")["engine"] == "fast"
    assert legacy_payload.pop("spec")["engine"] == "legacy"
    assert fast_payload == legacy_payload
