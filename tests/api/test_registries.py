"""Plugin registries: duplicates, unknown names, third-party plugins."""

from __future__ import annotations

import pytest

import repro.api as api

#: A minimal mini-C workload a third-party plugin test can fuzz: one
#: bounds-checked table lookup, i.e. a classic Spectre-V1 shape.
_PLUGIN_SOURCE = r"""
int table[16];

int main() {
    byte buf[8];
    int n = read_input(buf, 8);
    if (n < 1) {
        return 0;
    }
    int index = buf[0];
    if (index < 16) {
        return table[index];
    }
    return 0;
}
"""


# ---------------------------------------------------------------------------
# Generic registry behaviour
# ---------------------------------------------------------------------------

def test_duplicate_registration_is_rejected():
    registry = api.PluginRegistry("thing")
    registry.register("one", object())
    with pytest.raises(api.DuplicatePluginError):
        registry.register("one", object())
    # ...unless an explicit replace is requested.
    marker = object()
    registry.register("one", marker, replace=True)
    assert registry.get("one") is marker


def test_unknown_name_error_lists_valid_options():
    registry = api.PluginRegistry("gizmo")
    registry.register("alpha", 1)
    registry.register("beta", 2)
    with pytest.raises(api.UnknownPluginError) as excinfo:
        registry.get("gamma")
    message = str(excinfo.value)
    assert "gizmo" in message and "'gamma'" in message
    assert "alpha" in message and "beta" in message


def test_unknown_plugin_error_is_both_keyerror_and_valueerror():
    # The registries replaced tables that raised KeyError (targets) or
    # ValueError (engines, strategies); both except-clauses must keep
    # working.
    registry = api.PluginRegistry("item")
    with pytest.raises(KeyError):
        registry.get("nope")
    with pytest.raises(ValueError):
        registry.get("nope")


def test_invalid_names_are_rejected():
    registry = api.PluginRegistry("part")
    with pytest.raises(api.PluginError):
        registry.register("", object())
    with pytest.raises(api.PluginError):
        registry.register(None, object())


def test_unregister_and_container_protocol():
    registry = api.PluginRegistry("widget")
    registry.register("w", 1)
    assert "w" in registry and len(registry) == 1
    assert list(registry) == ["w"]
    registry.unregister("w")
    assert "w" not in registry
    with pytest.raises(api.UnknownPluginError):
        registry.unregister("w")


# ---------------------------------------------------------------------------
# The concrete registries behind the facade
# ---------------------------------------------------------------------------

def test_builtin_registries_contain_the_expected_plugins():
    assert set(api.engine_names()) >= {"fast", "legacy"}
    assert set(api.strategy_names()) >= {"fence", "mask", "fence-all"}
    assert set(api.scheduler_names()) >= {"pool", "serial"}
    assert {"gadgets", "jsmn", "libyaml", "libhtp", "brotli",
            "openssl"} <= set(api.target_names())


def test_duplicate_builtin_names_are_rejected_everywhere():
    with pytest.raises(api.DuplicatePluginError):
        api.register_engine("fast", lambda: None)
    with pytest.raises(api.DuplicatePluginError):
        api.register_pass("fence", lambda sites: None)
    with pytest.raises(api.DuplicatePluginError):
        api.register_scheduler("pool", object)
    with pytest.raises(api.DuplicatePluginError):
        api.register_target(api.TargetProgram(
            name="jsmn", source="int main() { return 0; }", seeds=[b""]))


def test_unknown_names_fail_with_options_at_the_facade():
    with pytest.raises(api.UnknownPluginError) as excinfo:
        api.pipeline(target="no-such-target")
    assert "jsmn" in str(excinfo.value)
    with pytest.raises(api.PipelineError) as excinfo:
        api.pipeline(target="gadgets", engine="turbo")
    assert "fast" in str(excinfo.value)
    with pytest.raises(api.PipelineError) as excinfo:
        api.pipeline(target="gadgets").fuzz(10).harden("nonsense")
    assert "fence" in str(excinfo.value)


def test_register_target_rejects_non_targets():
    with pytest.raises(api.PluginError):
        api.register_target("not a target")


# ---------------------------------------------------------------------------
# Third-party plugins, end to end
# ---------------------------------------------------------------------------

@pytest.fixture
def plugin_target():
    """A third-party-style target registered from inside a test module."""

    @api.register_target
    def _plugin_workload():
        return api.TargetProgram(
            name="apitest-plugin",
            source=_PLUGIN_SOURCE,
            seeds=[b"\x04", b"\x20"],
            description="third-party registry test workload",
        )

    yield _plugin_workload
    api.target_registry().unregister("apitest-plugin")


def test_third_party_target_is_discoverable_end_to_end(plugin_target):
    # Discoverable through every facade enumeration...
    assert "apitest-plugin" in api.target_names()
    listing = {record["name"]: record for record in api.target_listing()}
    assert listing["apitest-plugin"]["runnable"] is True
    assert listing["apitest-plugin"]["injectable"] is False
    # ...and fuzzable through the pipeline builder like any built-in.
    run = (api.pipeline(target="apitest-plugin", seed=11)
           .fuzz(iterations=30)
           .report())
    payload = run.stage("fuzz").payload
    assert payload["executions"] == 30
    assert payload["spec"]["targets"] == ["apitest-plugin"]


def test_third_party_scheduler_runs_a_pipeline(plugin_target):
    calls = []

    from repro.campaign.scheduler import SerialCampaignScheduler

    @api.register_scheduler("apitest-sched")
    class _TracingScheduler(SerialCampaignScheduler):
        def run(self, resume=False):
            calls.append("run")
            return super().run(resume=resume)

    try:
        run = (api.pipeline(target="apitest-plugin", seed=11)
               .fuzz(iterations=30, scheduler="apitest-sched")
               .harden("fence")
               .refuzz()
               .report())
        baseline = (api.pipeline(target="apitest-plugin", seed=11)
                    .fuzz(iterations=30)
                    .report())
    finally:
        api.SCHEDULER_REGISTRY.unregister("apitest-sched")
    # The verification campaign reuses the detection stage's scheduler.
    assert calls == ["run", "run"]
    # A scheduler is pure execution strategy: results cannot change.
    assert run.stage("fuzz").payload == baseline.stage("fuzz").payload
