"""The Pipeline facade, driven through ``repro.api`` alone.

The acceptance test of the facade: a full ``fuzz → harden → refuzz``
chain on the Kocher-samples target must reproduce the hardening
subsystem's 4/4 site elimination using **no direct subsystem imports** —
``repro.api`` is the only repro module this file touches.
"""

from __future__ import annotations

import json

import pytest

import repro.api as api


@pytest.fixture(scope="module")
def gadgets_run():
    """The canonical detect→patch→verify chain, facade-only."""
    return (api.pipeline(target="gadgets", seed=1234)
            .engine("fast")
            .fuzz(iterations=400)
            .harden("fence")
            .refuzz()
            .report())


def test_facade_reproduces_full_elimination(gadgets_run):
    refuzz = gadgets_run.stage("refuzz").payload
    assert len(refuzz["sites_before"]) == 4, "the Kocher samples report 4 sites"
    assert len(refuzz["eliminated"]) == 4
    assert refuzz["residual"] == []
    assert refuzz["new_sites"] == []
    assert refuzz["all_eliminated"] is True


def test_facade_run_carries_live_objects(gadgets_run):
    hardening = gadgets_run.hardening_result
    assert hardening is not None
    assert hardening.all_eliminated
    assert hardening.verify_executions == 400
    assert hardening.baseline_executions == 400
    assert gadgets_run.summary is not None
    assert len(gadgets_run.gadget_reports()) == 4


def test_facade_masking_beats_fence_everything():
    reports = (api.pipeline(target="gadgets", seed=1234)
               .fuzz(iterations=400).report().gadget_reports())

    def harden_with(strategy):
        return (api.pipeline(target="gadgets", seed=1234)
                .reports(reports).harden(strategy).refuzz()
                .report().hardening_result)

    mask = harden_with("mask")
    baseline = harden_with("fence-all")
    assert mask.all_eliminated and baseline.all_eliminated
    assert mask.overhead < baseline.overhead


def test_runs_are_deterministic():
    def one_run():
        return (api.pipeline(target="gadgets", seed=99)
                .fuzz(iterations=60).report())
    assert one_run().to_dict() == one_run().to_dict()


def test_artifact_round_trips(gadgets_run, tmp_path):
    path = tmp_path / "run.json"
    gadgets_run.save(str(path))
    loaded = api.RunResult.load(str(path))
    assert loaded.to_dict() == gadgets_run.to_dict()
    assert loaded.schema_version == api.SCHEMA_VERSION
    # The JSON-borne reports rebuild into real GadgetReport objects.
    assert [r.to_dict() for r in loaded.gadget_reports()] == \
        [r.to_dict() for r in gadgets_run.gadget_reports()]


def test_artifact_rejects_foreign_and_future_files(tmp_path):
    with pytest.raises(api.ResultSchemaError):
        api.RunResult.from_dict({"kind": "something-else"})
    future = {"kind": api.RESULT_KIND,
              "schema_version": api.SCHEMA_VERSION + 1, "stages": []}
    with pytest.raises(api.ResultSchemaError):
        api.RunResult.from_dict(future)
    # ...and the loader surfaces file-shaped problems the same way.
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"kind": "nope"}))
    with pytest.raises(api.ResultSchemaError):
        api.RunResult.load(str(path))


def test_bench_stage_measures_overheads():
    run = (api.pipeline(target="jsmn")
           .bench(input_size=64, tools=("teapot",))
           .report())
    payload = run.stage("bench").payload
    assert payload["native_cycles"] > 0
    assert payload["tool_cycles"]["teapot"] > payload["native_cycles"]
    assert payload["normalized"]["teapot"] > 1.0


def test_campaign_stage_runs_a_matrix():
    run = (api.pipeline(seed=3)
           .campaign(targets=("gadgets",), iterations=20, rounds=2)
           .report())
    summary = run.stage("campaign").payload["summary"]
    (group,) = summary["groups"]
    assert group["target"] == "gadgets"
    assert group["executions"] == 20
    assert run.summary.row("gadgets", "teapot").executions == 20


# ---------------------------------------------------------------------------
# Builder validation
# ---------------------------------------------------------------------------

def test_stage_order_is_validated():
    with pytest.raises(api.PipelineError, match="fuzz\\(\\) or reports\\(\\)"):
        api.pipeline(target="gadgets").harden("fence")
    with pytest.raises(api.PipelineError, match="harden\\(\\)"):
        api.pipeline(target="gadgets").fuzz(10).refuzz()
    with pytest.raises(api.PipelineError, match="empty pipeline"):
        api.pipeline(target="gadgets").run()


def test_target_is_required_for_target_stages():
    with pytest.raises(api.PipelineError, match="requires a target"):
        api.pipeline().fuzz(10)
    with pytest.raises(api.PipelineError, match="requires a target"):
        api.pipeline().bench()


def test_bad_names_fail_at_build_time():
    with pytest.raises(api.PipelineError):
        api.pipeline(target="gadgets", variant="mystery")
    with pytest.raises(api.PipelineError):
        api.pipeline(target="gadgets", tool="angr")
    with pytest.raises(api.UnknownPluginError):
        api.pipeline(target="gadgets").fuzz(10, scheduler="cluster")
    with pytest.raises(api.PipelineError):
        api.pipeline(target="gadgets").bench(tools=("valgrind",))


def test_stage_lookup_reports_executed_stages():
    run = api.pipeline(target="gadgets", seed=5).fuzz(iterations=10).report()
    with pytest.raises(KeyError, match="refuzz"):
        run.stage("refuzz")
    assert run.has_stage("fuzz") and not run.has_stage("harden")
