"""The unified ``repro`` CLI (``python -m repro.api``)."""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.api.cli import main


def test_targets_json_is_machine_readable(capsys):
    assert main(["targets", "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    by_name = {record["name"]: record for record in records}
    assert set(by_name) == set(api.target_names())
    # Capability flags: every record is runnable; only targets with
    # attack points take the Table-3 'injected' variant.
    assert all(record["runnable"] for record in records)
    assert by_name["jsmn"]["injectable"] is True
    assert by_name["jsmn"]["attack_points"] == 3
    assert by_name["gadgets"]["injectable"] is False


def test_targets_human_listing(capsys):
    assert main(["targets"]) == 0
    out = capsys.readouterr().out
    for name in api.target_names():
        assert name in out
    assert "injectable" in out


def test_fuzz_writes_runresult_artifact(tmp_path, capsys):
    path = tmp_path / "run.json"
    code = main(["fuzz", "--target", "gadgets", "--iterations", "40",
                 "--seed", "7", "--quiet", "--json", str(path)])
    assert code == 0
    run = api.RunResult.load(str(path))
    assert run.context["target"] == "gadgets"
    assert run.stage("fuzz").payload["executions"] == 40
    assert "fuzz: 40 executions" in capsys.readouterr().out


def test_fuzz_json_stdout_keeps_machine_output_clean(capsys):
    code = main(["fuzz", "--target", "gadgets", "--iterations", "20",
                 "--seed", "7", "--quiet", "--json", "-"])
    assert code == 0
    captured = capsys.readouterr()
    record = json.loads(captured.out)
    assert record["kind"] == api.RESULT_KIND


def test_report_renders_an_artifact(tmp_path, capsys):
    path = tmp_path / "run.json"
    main(["fuzz", "--target", "gadgets", "--iterations", "40", "--seed", "7",
          "--quiet", "--json", str(path)])
    capsys.readouterr()
    assert main(["report", "--in", str(path), "--reports"]) == 0
    out = capsys.readouterr().out
    assert "fuzz: 40 executions" in out
    assert "pc=0x" in out


def test_report_rejects_foreign_files(tmp_path, capsys):
    path = tmp_path / "foreign.json"
    path.write_text(json.dumps({"kind": "other"}))
    assert main(["report", "--in", str(path)]) == 2
    assert "error" in capsys.readouterr().err


def test_bench_prints_normalized_overheads(capsys):
    code = main(["bench", "--target", "jsmn", "--input-size", "64",
                 "--tools", "teapot", "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "teapot:" in out and "x native" in out


def test_unknown_target_fails_cleanly(capsys):
    assert main(["fuzz", "--target", "nginx", "--quiet"]) == 2
    assert "available" in capsys.readouterr().err


def test_campaign_subcommand_forwards(capsys):
    code = main(["campaign", "--targets", "gadgets", "--iterations", "10",
                 "--rounds", "1", "--seed", "3", "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "gadgets" in out and "unique gadget sites" in out


def test_harden_subcommand_forwards(capsys):
    with pytest.raises(SystemExit):
        main(["harden", "--target", "not-a-target", "--quiet"])
    err = capsys.readouterr().err
    assert "repro harden" in err  # re-branded prog in the usage line


def test_deprecated_shims_warn_and_work(capsys):
    from repro.campaign.cli import deprecated_main as campaign_shim
    from repro.hardening.cli import deprecated_main as harden_shim

    assert campaign_shim(["--list-targets"]) == 0
    captured = capsys.readouterr()
    assert "deprecated" in captured.err
    assert "gadgets" in captured.out

    with pytest.raises(SystemExit):
        harden_shim(["--help"])
    captured = capsys.readouterr()
    assert "deprecated" in captured.err


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    out = capsys.readouterr().out
    for command in ("fuzz", "campaign", "harden", "report", "bench",
                    "targets"):
        assert command in out
