"""End-to-end tests of the mini-C compiler: compile then execute."""

import pytest

from repro.minic.codegen import CodegenError, CompilerOptions, SwitchLowering
from repro.minic.compiler import compile_source
from repro.runtime import Emulator


def _run(source, data=b"", options=None):
    binary = compile_source(source, options)
    result = Emulator(binary, max_steps=500000).run(data)
    assert result.status == "exit", (result.status, result.crash_reason)
    return result.exit_status


def test_arithmetic_and_precedence():
    assert _run("int main() { return 2 + 3 * 4 - 10 / 2; }") == 9
    assert _run("int main() { return (2 + 3) * 4; }") == 20
    assert _run("int main() { return 7 % 3 + (1 << 4) + (255 >> 4); }") == 32


def test_negative_return_value():
    assert _run("int main() { return 0 - 5; }") == -5


def test_unary_operators():
    assert _run("int main() { int x = 5; return -x + 10; }") == 5
    assert _run("int main() { return !0 + !7; }") == 1
    assert _run("int main() { return ~0 + 2; }") == 1


def test_logical_short_circuit():
    source = """
    int side_effects = 0;
    int bump() { side_effects = side_effects + 1; return 1; }
    int main() {
        if (0 && bump()) { }
        if (1 || bump()) { }
        return side_effects;
    }
    """
    assert _run(source) == 0


def test_comparison_values():
    assert _run("int main() { return (3 < 5) + (5 <= 5) + (7 > 9) + (2 != 2); }") == 2


def test_while_and_for_loops():
    assert _run("""
        int main() {
            int total = 0;
            int i = 0;
            while (i < 10) { total += i; i++; }
            for (int j = 0; j < 5; j++) { total += 100; }
            return total;
        }
    """) == 45 + 500


def test_break_continue():
    assert _run("""
        int main() {
            int total = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 3) { continue; }
                if (i == 6) { break; }
                total += i;
            }
            return total;
        }
    """) == 0 + 1 + 2 + 4 + 5


def test_nested_function_calls_preserve_registers():
    assert _run("""
        int add(int a, int b) { return a + b; }
        int main() { return add(add(1, 2), add(3, add(4, 5))); }
    """) == 15


def test_recursion():
    assert _run("""
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
    """) == 55


def test_more_than_five_arguments_use_stack():
    assert _run("""
        int sum7(int a, int b, int c, int d, int e, int f, int g) {
            return a + b * 10 + c * 100 + d + e + f + g;
        }
        int main() { return sum7(1, 2, 3, 4, 5, 6, 7); }
    """) == 1 + 20 + 300 + 4 + 5 + 6 + 7


def test_global_arrays_and_scalars():
    assert _run("""
        int counter = 7;
        byte lut[4] = {10, 20, 30, 40};
        int main() {
            counter = counter + lut[2];
            return counter;
        }
    """) == 37


def test_local_arrays_and_pointers():
    assert _run("""
        int main() {
            byte buf[8];
            int i;
            for (i = 0; i < 8; i++) { buf[i] = i * 2; }
            byte *p = buf;
            return p[3] + buf[7];
        }
    """) == 6 + 14


def test_int_array_indexing_uses_word_elements():
    assert _run("""
        int main() {
            int values[4];
            values[0] = 1000000;
            values[3] = 7;
            return values[0] + values[3];
        }
    """) == 1000007


def test_byte_comparisons_are_unsigned():
    # 200 as a byte must compare above 100 (unsigned), unlike signed chars.
    assert _run("""
        int main() {
            byte buf[2];
            read_input(buf, 2);
            if (buf[0] > 100) { return 1; }
            return 0;
        }
    """, bytes([200, 0])) == 1


def test_compound_assignment_operators():
    assert _run("""
        int main() {
            int x = 1;
            x += 5; x *= 3; x -= 2; x <<= 1; x |= 1; x &= 30; x ^= 2;
            return x;
        }
    """) == ((((1 + 5) * 3 - 2) << 1 | 1) & 30) ^ 2


def test_prefix_postfix_increment():
    assert _run("""
        int main() {
            int x = 5;
            int a = x++;
            int b = ++x;
            return a * 100 + b * 10 + x;
        }
    """) == 5 * 100 + 7 * 10 + 7


def test_switch_both_lowerings_agree():
    source = """
    int classify(int c) {
        int r;
        switch (c) {
            case 1: { r = 10; }
            case 2: { r = 20; }
            case 4: { r = 40; }
            default: { r = 99; }
        }
        return r;
    }
    int main() {
        byte buf[1];
        read_input(buf, 1);
        return classify(buf[0]);
    }
    """
    for value, expected in [(1, 10), (2, 20), (4, 40), (3, 99), (77, 99)]:
        chain = _run(source, bytes([value]),
                     CompilerOptions(switch_lowering=SwitchLowering.BRANCH_CHAIN))
        table = _run(source, bytes([value]),
                     CompilerOptions(switch_lowering=SwitchLowering.JUMP_TABLE))
        assert chain == table == expected


def test_sparse_switch_falls_back_to_chain():
    from repro.disasm import disassemble
    from repro.isa.instructions import Opcode
    source = """
    int f(int c) {
        switch (c) {
            case 0: return 1;
            case 1000: return 2;
            default: return 3;
        }
    }
    int main() { return f(0); }
    """
    binary = compile_source(source, CompilerOptions(switch_lowering=SwitchLowering.JUMP_TABLE))
    module = disassemble(binary)
    opcodes = {i.opcode for i in module.function("f").instructions()}
    assert Opcode.IJMP not in opcodes


def test_unknown_identifier_rejected():
    with pytest.raises(CodegenError):
        compile_source("int main() { return missing; }")


def test_unknown_call_target_treated_as_pointer_requires_definition():
    with pytest.raises(CodegenError):
        compile_source("int main() { return not_a_function(1); }")


def test_missing_entry_rejected():
    with pytest.raises(CodegenError):
        compile_source("int helper() { return 1; }")


def test_assign_to_array_rejected():
    with pytest.raises(CodegenError):
        compile_source("int main() { byte b[4]; b = 0; return 0; }")


def test_duplicate_local_rejected():
    with pytest.raises(CodegenError):
        compile_source("int main() { int x = 1; int x = 2; return x; }")
