"""Tests for the mini-C lexer and parser."""

import pytest

from repro.minic import astnodes as ast
from repro.minic.lexer import Lexer, LexerError, TokenKind
from repro.minic.parser import ParseError, parse_source


def _tokens(source):
    return Lexer(source).tokenize()


def test_lexer_basic_tokens():
    kinds = [t.kind for t in _tokens("int x = 42;")]
    assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.PUNCT,
                     TokenKind.NUMBER, TokenKind.PUNCT, TokenKind.EOF]


def test_lexer_hex_char_string():
    tokens = _tokens("0x1F 'a' '\\n' \"hi\\n\"")
    assert tokens[0].value == 0x1F
    assert tokens[1].value == ord("a")
    assert tokens[2].value == 10
    assert tokens[3].text == "hi\n"


def test_lexer_comments_skipped():
    tokens = _tokens("a // line comment\n/* block\ncomment */ b")
    assert [t.text for t in tokens[:-1]] == ["a", "b"]


def test_lexer_multichar_punctuation():
    texts = [t.text for t in _tokens("a <<= b >> 1 <= != &&")][:-1]
    assert "<<=" in texts and ">>" in texts and "<=" in texts and "&&" in texts


def test_lexer_trailing_whitespace_terminates():
    tokens = _tokens("x   \n\t ")
    assert tokens[-1].kind is TokenKind.EOF


def test_lexer_rejects_unknown_character():
    with pytest.raises(LexerError):
        _tokens("int a = `;")


def test_lexer_rejects_unterminated_string():
    with pytest.raises(LexerError):
        _tokens('"never ends')


def test_parse_function_and_globals():
    program = parse_source("""
        int counter = 5;
        byte table[4] = {1, 2, 3, 4};
        int add(int a, int b) { return a + b; }
    """)
    assert [g.name for g in program.globals] == ["counter", "table"]
    assert program.globals[0].init == 5
    assert program.globals[1].init == [1, 2, 3, 4]
    func = program.function("add")
    assert [p.name for p in func.params] == ["a", "b"]


def test_parse_control_flow_shapes():
    program = parse_source("""
        int f(int x) {
            int total = 0;
            if (x > 0) { total = 1; } else { total = 2; }
            while (x > 0) { x = x - 1; }
            for (int i = 0; i < 4; i++) { total += i; }
            switch (x) {
                case 0: return 0;
                default: return total;
            }
        }
    """)
    body = program.function("f").body.statements
    kinds = [type(stmt).__name__ for stmt in body]
    assert kinds == ["VarDecl", "If", "While", "For", "Switch"]


def test_parse_expression_precedence():
    program = parse_source("int f() { return 1 + 2 * 3; }")
    ret = program.function("f").body.statements[0]
    assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
    assert isinstance(ret.value.right, ast.Binary) and ret.value.right.op == "*"


def test_parse_call_index_postfix():
    program = parse_source("int f(byte *p) { return g(p[1])[2]; }")
    ret = program.function("f").body.statements[0]
    assert isinstance(ret.value, ast.Index)
    assert isinstance(ret.value.base, ast.Call)


def test_parse_pointer_and_address_of():
    program = parse_source("int f() { int x = 1; int *p = &x; return *p; }")
    statements = program.function("f").body.statements
    assert isinstance(statements[1].init, ast.Unary) and statements[1].init.op == "&"
    assert isinstance(statements[2].value, ast.Unary) and statements[2].value.op == "*"


def test_parse_error_reports_location():
    with pytest.raises(ParseError):
        parse_source("int f( { return 0; }")
    with pytest.raises(ParseError):
        parse_source("int f() { return 0 }")


def test_parse_non_constant_global_initialiser_rejected():
    with pytest.raises(ParseError):
        parse_source("int g = f();")


def test_parse_string_global():
    program = parse_source('byte msg[8] = "hi";')
    assert program.globals[0].init == b"hi"
