"""Tests for TELF serialisation."""

import pytest

from repro.loader import (
    TelfFormatError,
    dumps_binary,
    load_binary,
    loads_binary,
    save_binary,
)


def test_round_trip_preserves_everything(simple_binary):
    data = dumps_binary(simple_binary)
    parsed = loads_binary(data)
    assert parsed.entry == simple_binary.entry
    assert parsed.text.data == simple_binary.text.data
    assert parsed.imports == simple_binary.imports
    assert [s.name for s in parsed.symbols] == [s.name for s in simple_binary.symbols]
    assert [(r.address, r.symbol) for r in parsed.relocations] == \
        [(r.address, r.symbol) for r in simple_binary.relocations]


def test_round_trip_is_stable(simple_binary):
    once = dumps_binary(simple_binary)
    twice = dumps_binary(loads_binary(once))
    assert once == twice


def test_bad_magic_rejected(simple_binary):
    data = bytearray(dumps_binary(simple_binary))
    data[0:4] = b"NOPE"
    with pytest.raises(TelfFormatError):
        loads_binary(bytes(data))


def test_truncated_image_rejected(simple_binary):
    data = dumps_binary(simple_binary)
    with pytest.raises(TelfFormatError):
        loads_binary(data[: len(data) // 2])


def test_file_round_trip(tmp_path, simple_binary):
    path = tmp_path / "program.telf"
    save_binary(simple_binary, str(path))
    loaded = load_binary(str(path))
    assert loaded.text.data == simple_binary.text.data


def test_binary_queries(simple_binary):
    assert simple_binary.has_symbol("main")
    assert not simple_binary.has_symbol("nope")
    main = simple_binary.symbol("main")
    assert simple_binary.symbol_at(main.address).name == "main"
    assert simple_binary.function_at(main.address + 1).name == "main"
    assert simple_binary.entry_address() == main.address
    with pytest.raises(KeyError):
        simple_binary.symbol("missing")
    with pytest.raises(KeyError):
        simple_binary.import_index("printf")
