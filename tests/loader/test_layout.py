"""Tests for the virtual address-space layout (paper Tables 1 and 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.loader.layout import DEFAULT_LAYOUT, MemoryLayout


def test_default_layout_validates():
    DEFAULT_LAYOUT.validate()


def test_region_membership():
    layout = DEFAULT_LAYOUT
    assert layout.in_lowmem(layout.text_base)
    assert layout.in_lowmem(layout.heap_base)
    assert not layout.in_lowmem(layout.highmem_start)
    assert layout.in_highmem(layout.stack_top)
    assert layout.in_user_memory(layout.stack_top)
    assert not layout.in_user_memory(layout.lowtag_start)
    assert not layout.in_user_memory(layout.hightag_start)


def test_tag_shadow_flips_bit_45():
    layout = DEFAULT_LAYOUT
    assert layout.tag_shadow_address(0x1234) == 0x2000_0000_1234
    assert layout.tag_shadow_address(layout.highmem_start) == layout.hightag_start
    # The mapping is an involution.
    for addr in (0x0, 0x7FFF_0000, layout.stack_top):
        assert layout.tag_shadow_address(layout.tag_shadow_address(addr)) == addr


def test_asan_shadow_is_disjoint_from_user_memory():
    layout = DEFAULT_LAYOUT
    for addr in (0, layout.lowmem_end, layout.highmem_start, layout.highmem_end):
        shadow = layout.asan_shadow_address(addr)
        assert not layout.in_user_memory(shadow)


def test_overlapping_layout_rejected():
    bad = MemoryLayout(hightag_start=0x6000_0000_0000)
    with pytest.raises(ValueError):
        bad.validate()


def test_stack_bottom_below_top():
    layout = DEFAULT_LAYOUT
    assert layout.stack_bottom() < layout.stack_top
    assert layout.in_highmem(layout.stack_bottom())


@given(st.integers(min_value=0, max_value=DEFAULT_LAYOUT.lowmem_end))
def test_lowmem_tag_shadow_stays_in_lowtag(addr):
    """Property: every LowMem byte's tag shadow lands inside LowTag."""
    layout = DEFAULT_LAYOUT
    shadow = layout.tag_shadow_address(addr)
    assert layout.lowtag_start <= shadow <= layout.lowtag_end


@given(st.integers(min_value=DEFAULT_LAYOUT.highmem_start,
                   max_value=DEFAULT_LAYOUT.highmem_end))
def test_highmem_tag_shadow_stays_in_hightag(addr):
    """Property: every HighMem byte's tag shadow lands inside HighTag."""
    layout = DEFAULT_LAYOUT
    shadow = layout.tag_shadow_address(addr)
    assert layout.hightag_start <= shadow <= layout.hightag_end
