"""CampaignResult serialization: the to_dict/from_dict round-trip.

``CampaignResult`` historically lacked the stable serialization its
siblings (``Corpus``, ``GadgetReport``, ``ReportCollection``) had, which
forced bespoke glue anywhere a whole fuzzing outcome had to cross a
process or file boundary.  These tests pin the exact round-trip the
:class:`repro.api.RunResult` artifact relies on.
"""

from __future__ import annotations

import json

from repro.fuzzing.fuzzer import CampaignResult
from repro.sanitizers.reports import (
    AttackerClass,
    Channel,
    GadgetReport,
    ReportCollection,
)


def _sample_result() -> CampaignResult:
    reports = ReportCollection()
    reports.add(GadgetReport(tool="teapot", channel=Channel.CACHE,
                             attacker=AttackerClass.USER, pc=0x1000,
                             branch_addresses=(0x990, 0x9a0), depth=2,
                             description="bounds-check bypass"))
    reports.add(GadgetReport(tool="teapot", channel=Channel.MDS,
                             attacker=AttackerClass.MASSAGE, pc=0x2000,
                             branch_addresses=(0x990,), depth=1))
    # A duplicate site bumps total_raw without adding a unique report.
    reports.add(GadgetReport(tool="teapot", channel=Channel.CACHE,
                             attacker=AttackerClass.USER, pc=0x1000,
                             branch_addresses=(0x990,), depth=3))
    return CampaignResult(
        executions=120, total_cycles=98765, total_steps=43210,
        crashes=3, hangs=1, corpus_size=17, normal_coverage=240,
        speculative_coverage=88, reports=reports,
        spec_stats={"simulations_started": 52, "rollbacks": 12},
    )


def test_round_trip_is_exact():
    result = _sample_result()
    rebuilt = CampaignResult.from_dict(result.to_dict())
    assert rebuilt.to_dict() == result.to_dict()
    assert rebuilt.executions == result.executions
    assert rebuilt.gadget_count() == result.gadget_count() == 2
    assert rebuilt.reports.total_raw == result.reports.total_raw == 3
    assert rebuilt.count_by_category() == result.count_by_category()
    assert rebuilt.spec_stats == result.spec_stats


def test_serialized_form_is_json_clean_and_stable():
    record = _sample_result().to_dict()
    assert json.loads(json.dumps(record)) == record
    # Reports are sorted by site and spec_stats by key: stable output.
    pcs = [r["pc"] for r in record["reports"]]
    assert pcs == sorted(pcs)
    assert list(record["spec_stats"]) == sorted(record["spec_stats"])


def test_from_dict_tolerates_missing_optionals():
    rebuilt = CampaignResult.from_dict({"executions": 5})
    assert rebuilt.executions == 5
    assert rebuilt.gadget_count() == 0
    assert rebuilt.spec_stats == {}


def test_round_trip_then_merge_matches_direct_merge():
    # Serialization must not break the campaign merge algebra.
    a, b = _sample_result(), _sample_result()
    direct = _sample_result()
    direct.merge(_sample_result())
    rebuilt = CampaignResult.from_dict(a.to_dict())
    rebuilt.merge(CampaignResult.from_dict(b.to_dict()))
    assert rebuilt.to_dict() == direct.to_dict()
