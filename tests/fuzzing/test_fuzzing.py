"""Tests for the corpus, mutators, coverage maps and fuzzer loop."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.coverage.sancov import CoverageMap, CoverageRuntime
from repro.fuzzing import Corpus, Fuzzer, FuzzTarget, Mutator
from repro.minic.compiler import compile_source


# -- coverage ------------------------------------------------------------------

def test_coverage_map_dedup():
    cov = CoverageMap()
    assert cov.add(1)
    assert not cov.add(1)
    assert cov.add_many([1, 2, 3]) == 2
    assert len(cov) == 3
    assert 2 in cov


def test_coverage_runtime_lazy_speculative_flush():
    runtime = CoverageRuntime()
    runtime.trace_normal(1)
    runtime.note_speculative(10)
    runtime.note_speculative(11)
    # Notes are not visible until the flush at rollback time.
    assert runtime.new_coverage_signature() == (1, 0)
    assert runtime.flush_speculative() == 2
    assert runtime.new_coverage_signature() == (1, 2)
    assert runtime.lazy_flushes == 1


def test_coverage_runtime_reset_drops_pending_notes():
    runtime = CoverageRuntime()
    runtime.note_speculative(5)
    runtime.reset_execution_state()
    assert runtime.flush_speculative() == 0


# -- corpus -----------------------------------------------------------------------

def test_corpus_deduplicates_inputs():
    corpus = Corpus([b"a"])
    assert not corpus.add(b"a", 1, 1)
    assert corpus.add(b"b", 2, 2)
    assert len(corpus) == 2
    assert corpus.total_bytes() == 2


def test_corpus_select_round_robin():
    corpus = Corpus([b"a", b"b"])
    assert corpus.select(0).data == b"a"
    assert corpus.select(1).data == b"b"
    assert corpus.select(2).data == b"a"
    with pytest.raises(IndexError):
        Corpus([]).select(0)


# -- mutators --------------------------------------------------------------------

def test_mutator_is_deterministic_for_fixed_seed():
    a = Mutator(random.Random(7)).mutate(b"hello world")
    b = Mutator(random.Random(7)).mutate(b"hello world")
    assert a == b


def test_mutator_never_returns_empty_and_respects_max_size():
    mutator = Mutator(random.Random(3), max_size=32)
    data = b"x" * 32
    for _ in range(200):
        data = mutator.mutate(data)
        assert 1 <= len(data) <= 32


@given(st.binary(min_size=0, max_size=64), st.integers(0, 2 ** 31))
@settings(max_examples=100, deadline=None)
def test_mutator_output_properties(data, seed):
    """Property: mutation always yields a non-empty, bounded bytestring."""
    mutator = Mutator(random.Random(seed), max_size=128)
    out = mutator.mutate(data)
    assert isinstance(out, bytes)
    assert 1 <= len(out) <= 128


# -- fuzzer ------------------------------------------------------------------------

FUZZ_SOURCE = r"""
int limit = 8;
int main() {
    byte buf[32];
    int n = read_input(buf, 32);
    byte *arr = malloc(8);
    byte *probe = malloc(512);
    int total = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (buf[i] < limit) {
            total = total + probe[arr[buf[i]]];
        } else {
            total = total + 1;
        }
    }
    free(arr);
    free(probe);
    return total;
}
"""


@pytest.fixture(scope="module")
def fuzz_runtime():
    binary = compile_source(FUZZ_SOURCE)
    instrumented = TeapotRewriter().instrument(binary)
    return TeapotRuntime(instrumented)


def test_campaign_is_deterministic(fuzz_runtime):
    def campaign():
        fuzzer = Fuzzer(FuzzTarget(fuzz_runtime), seeds=[b"\x01\x02\x03"], seed=42)
        return fuzzer.run_campaign(20)

    first = campaign()
    second = campaign()
    assert first.executions == second.executions == 20
    assert first.corpus_size == second.corpus_size
    # Gadget sites are cumulative across the shared runtime but the counts of
    # the two identical campaigns must agree.
    assert first.gadget_count() == second.gadget_count()


def test_campaign_grows_coverage_and_finds_gadgets(fuzz_runtime):
    fuzzer = Fuzzer(FuzzTarget(fuzz_runtime),
                    seeds=[b"\x01\x02\x03", b"\xff\x20\x05\x09"], seed=7)
    result = fuzzer.run_campaign(30)
    assert result.executions == 30
    assert result.normal_coverage > 0
    assert result.speculative_coverage > 0
    assert result.corpus_size >= 2
    assert result.gadget_count() >= 1
    categories = result.count_by_category()
    assert any(key.startswith("User-") for key in categories)


def test_campaign_counts_crashes():
    source = r"""
    int main() {
        byte buf[4];
        int n = read_input(buf, 4);
        if (n > 2) {
            byte *p = 0;
            return p[5];
        }
        return 0;
    }
    """
    binary = compile_source(source)
    from repro.runtime import Emulator
    fuzzer = Fuzzer(FuzzTarget(Emulator(binary)), seeds=[b"abc"], seed=1)
    result = fuzzer.run_campaign(5)
    assert result.crashes >= 1
