"""Tests for the corpus, mutators, coverage maps and fuzzer loop."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.coverage.sancov import CoverageMap, CoverageRuntime
from repro.fuzzing import Corpus, Fuzzer, FuzzTarget, Mutator
from repro.minic.compiler import compile_source


# -- coverage ------------------------------------------------------------------

def test_coverage_map_dedup():
    cov = CoverageMap()
    assert cov.add(1)
    assert not cov.add(1)
    assert cov.add_many([1, 2, 3]) == 2
    assert len(cov) == 3
    assert 2 in cov


def test_coverage_runtime_lazy_speculative_flush():
    runtime = CoverageRuntime()
    runtime.trace_normal(1)
    runtime.note_speculative(10)
    runtime.note_speculative(11)
    # Notes are not visible until the flush at rollback time.
    assert runtime.new_coverage_signature() == (1, 0)
    assert runtime.flush_speculative() == 2
    assert runtime.new_coverage_signature() == (1, 2)
    assert runtime.lazy_flushes == 1


def test_coverage_runtime_reset_drops_pending_notes():
    runtime = CoverageRuntime()
    runtime.note_speculative(5)
    runtime.reset_execution_state()
    assert runtime.flush_speculative() == 0


# -- corpus -----------------------------------------------------------------------

def test_corpus_deduplicates_inputs():
    corpus = Corpus([b"a"])
    assert not corpus.add(b"a", 1, 1)
    assert corpus.add(b"b", 2, 2)
    assert len(corpus) == 2
    assert corpus.total_bytes() == 2


def test_corpus_records_keep_reason():
    corpus = Corpus([b"seed"])
    corpus.add(b"n", 3, 0, reason="normal")
    corpus.add(b"s", 3, 1, reason="speculative")
    corpus.add(b"c", 3, 1, reason="crash")
    assert [e.reason for e in corpus.entries] == [
        "seed", "normal", "speculative", "crash"
    ]


def test_corpus_merge_and_bytes_round_trip():
    left = Corpus([b"a", b"b"])
    right = Corpus([b"b"])
    right.add(b"c", 5, 2, reason="speculative")

    added = left.merge(right)
    assert added == 1
    assert left.to_bytes_list() == [b"a", b"b", b"c"]
    # Merged entries keep their coverage but are tagged as sync'd.
    merged_entry = left.entries[-1]
    assert merged_entry.coverage_signature == (5, 2)
    assert merged_entry.reason == "merge"

    # to_bytes_list round-trips through the constructor.
    rebuilt = Corpus(left.to_bytes_list())
    assert rebuilt.to_bytes_list() == left.to_bytes_list()


def test_corpus_shards_round_robin_and_nonempty():
    corpus = Corpus([b"a", b"b", b"c"])
    shards = corpus.shards(2)
    assert shards == [[b"a", b"c"], [b"b"]]
    # Every shard gets at least one input even when shards > entries.
    shards = corpus.shards(5)
    assert all(shard for shard in shards)
    assert shards[0] == [b"a"]
    assert shards[4] == [b"a"]
    with pytest.raises(ValueError):
        corpus.shards(0)


def test_corpus_dict_round_trip():
    corpus = Corpus([b"a"])
    corpus.add(b"b", 4, 7, reason="both")
    rebuilt = Corpus.from_dicts(corpus.to_dicts())
    assert rebuilt.to_bytes_list() == corpus.to_bytes_list()
    assert rebuilt.entries[1].coverage_signature == (4, 7)
    assert rebuilt.entries[1].reason == "both"
    # The rebuilt corpus still deduplicates against its own entries.
    assert not rebuilt.add(b"b", 0, 0)


def test_corpus_select_round_robin():
    corpus = Corpus([b"a", b"b"])
    assert corpus.select(0).data == b"a"
    assert corpus.select(1).data == b"b"
    assert corpus.select(2).data == b"a"
    with pytest.raises(IndexError):
        Corpus([]).select(0)


# -- mutators --------------------------------------------------------------------

def test_mutator_is_deterministic_for_fixed_seed():
    a = Mutator(random.Random(7)).mutate(b"hello world")
    b = Mutator(random.Random(7)).mutate(b"hello world")
    assert a == b


def test_mutator_never_returns_empty_and_respects_max_size():
    mutator = Mutator(random.Random(3), max_size=32)
    data = b"x" * 32
    for _ in range(200):
        data = mutator.mutate(data)
        assert 1 <= len(data) <= 32


@given(st.binary(min_size=0, max_size=64), st.integers(0, 2 ** 31))
@settings(max_examples=100, deadline=None)
def test_mutator_output_properties(data, seed):
    """Property: mutation always yields a non-empty, bounded bytestring."""
    mutator = Mutator(random.Random(seed), max_size=128)
    out = mutator.mutate(data)
    assert isinstance(out, bytes)
    assert 1 <= len(out) <= 128


# -- fuzzer ------------------------------------------------------------------------

FUZZ_SOURCE = r"""
int limit = 8;
int main() {
    byte buf[32];
    int n = read_input(buf, 32);
    byte *arr = malloc(8);
    byte *probe = malloc(512);
    int total = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (buf[i] < limit) {
            total = total + probe[arr[buf[i]]];
        } else {
            total = total + 1;
        }
    }
    free(arr);
    free(probe);
    return total;
}
"""


@pytest.fixture(scope="module")
def fuzz_runtime():
    binary = compile_source(FUZZ_SOURCE)
    instrumented = TeapotRewriter().instrument(binary)
    return TeapotRuntime(instrumented)


def test_campaign_is_deterministic(fuzz_runtime):
    def campaign():
        fuzzer = Fuzzer(FuzzTarget(fuzz_runtime), seeds=[b"\x01\x02\x03"], seed=42)
        return fuzzer.run_campaign(20)

    first = campaign()
    second = campaign()
    assert first.executions == second.executions == 20
    assert first.corpus_size == second.corpus_size
    # Gadget sites are cumulative across the shared runtime but the counts of
    # the two identical campaigns must agree.
    assert first.gadget_count() == second.gadget_count()


def test_campaign_grows_coverage_and_finds_gadgets(fuzz_runtime):
    fuzzer = Fuzzer(FuzzTarget(fuzz_runtime),
                    seeds=[b"\x01\x02\x03", b"\xff\x20\x05\x09"], seed=7)
    result = fuzzer.run_campaign(30)
    assert result.executions == 30
    assert result.normal_coverage > 0
    assert result.speculative_coverage > 0
    assert result.corpus_size >= 2
    assert result.gadget_count() >= 1
    categories = result.count_by_category()
    assert any(key.startswith("User-") for key in categories)


class _StubRuntime:
    """Deterministic fake runtime: every run reports the same spec stats."""

    def __init__(self):
        from repro.runtime.emulator import ExecutionResult
        self._result_cls = ExecutionResult

    def run(self, data):
        return self._result_cls(
            status="exit", steps=10, cycles=100,
            spec_stats={"simulations_started": 2, "rollbacks": 1},
        )


def test_campaign_accumulates_spec_stats():
    """Regression: per-execution spec_stats must sum, not overwrite."""
    fuzzer = Fuzzer(FuzzTarget(_StubRuntime()), seeds=[b"x"], seed=0)
    result = fuzzer.run_campaign(5)
    assert result.spec_stats == {"simulations_started": 10, "rollbacks": 5}


def test_run_chunk_resumes_identically():
    """Two chunks of 10 replay exactly like one chunk of 20."""
    # A fresh runtime per campaign: the coverage maps (the fuzzer's feedback
    # signal) must start empty for the two runs to be comparable.
    instrumented = TeapotRewriter().instrument(compile_source(FUZZ_SOURCE))

    def fresh():
        return Fuzzer(FuzzTarget(TeapotRuntime(instrumented)),
                      seeds=[b"\x01\x02\x03"], seed=9)

    whole = fresh().run_campaign(20)
    split_fuzzer = fresh()
    accumulated = split_fuzzer.run_chunk(10)
    split_fuzzer.run_chunk(10, into=accumulated)

    assert accumulated.executions == whole.executions == 20
    assert accumulated.total_steps == whole.total_steps
    assert accumulated.corpus_size == whole.corpus_size
    assert accumulated.spec_stats == whole.spec_stats
    assert accumulated.gadget_count() == whole.gadget_count()


def test_fuzzer_tags_corpus_entries_with_keep_reason():
    # The gadget-samples driver dispatches on the first input byte, so
    # mutations keep discovering new branch sites (and new speculative
    # coverage inside the gadgets) for a while.
    from repro.targets import get_target
    from repro.targets.injection import compile_vanilla

    target = get_target("gadgets")
    runtime = TeapotRuntime(TeapotRewriter().instrument(compile_vanilla(target)))
    fuzzer = Fuzzer(FuzzTarget(runtime), seeds=[target.seeds[0]], seed=7)
    fuzzer.run_campaign(40)
    reasons = {entry.reason for entry in fuzzer.corpus.entries}
    assert reasons <= {"seed", "normal", "speculative", "both", "crash"}
    # The seed keeps its tag; at least one entry was kept per coverage axis.
    assert fuzzer.corpus.entries[0].reason == "seed"
    assert reasons & {"normal", "both"}
    assert reasons & {"speculative", "both"}


def test_campaign_result_merge():
    from repro.fuzzing.fuzzer import CampaignResult
    from repro.sanitizers.reports import AttackerClass, Channel, GadgetReport

    def report(pc):
        return GadgetReport(tool="teapot", channel=Channel.CACHE,
                            attacker=AttackerClass.USER, pc=pc,
                            branch_addresses=(), depth=1)

    left = CampaignResult(executions=5, crashes=1, normal_coverage=10,
                          spec_stats={"rollbacks": 2})
    left.reports.extend([report(1), report(2)])
    right = CampaignResult(executions=3, hangs=1, normal_coverage=12,
                           spec_stats={"rollbacks": 1, "simulations_started": 4})
    right.reports.extend([report(2), report(3)])

    left.merge(right)
    assert left.executions == 8
    assert left.crashes == 1 and left.hangs == 1
    assert left.normal_coverage == 12
    assert left.spec_stats == {"rollbacks": 3, "simulations_started": 4}
    assert left.gadget_count() == 3


def test_campaign_counts_crashes():
    source = r"""
    int main() {
        byte buf[4];
        int n = read_input(buf, 4);
        if (n > 2) {
            byte *p = 0;
            return p[5];
        }
        return 0;
    }
    """
    binary = compile_source(source)
    from repro.runtime import Emulator
    fuzzer = Fuzzer(FuzzTarget(Emulator(binary)), seeds=[b"abc"], seed=1)
    result = fuzzer.run_campaign(5)
    assert result.crashes >= 1
