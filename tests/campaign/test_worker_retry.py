"""Per-job timeouts and bounded retries in the campaign worker path."""

from __future__ import annotations

import time

import pytest

import repro.campaign.worker as worker_module
from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.worker import JobTimeoutError, WorkerResult, execute_task


def _spec(**overrides):
    params = dict(targets=("gadgets",), tools=("teapot",),
                  variants=("vanilla",), iterations=20, rounds=1, shards=1,
                  seed=3)
    params.update(overrides)
    return CampaignSpec(**params)


def _job(**overrides):
    params = dict(target="gadgets", tool="teapot", iterations=5, seed=1)
    params.update(overrides)
    return JobSpec(**params)


def _ok_result(job):
    return WorkerResult(job_id=job.job_id, target=job.target, tool=job.tool,
                        variant=job.variant, shard=job.shard,
                        round_index=job.round_index, executions=5)


def test_retry_recovers_from_transient_failure(monkeypatch):
    calls = []

    def flaky(job, seeds=None):
        calls.append(1)
        if len(calls) == 1:
            raise RuntimeError("transient")
        return _ok_result(job)

    monkeypatch.setattr(worker_module, "run_job", flaky)
    monkeypatch.setattr(time, "sleep", lambda s: None)
    result = execute_task((_job(max_attempts=3, retry_backoff_s=0.01), None))
    assert result.error == ""
    assert result.executions == 5
    assert len(calls) == 2


def test_retry_budget_is_bounded_and_reported(monkeypatch):
    calls = []

    def always_fails(job, seeds=None):
        calls.append(1)
        raise RuntimeError("persistent")

    monkeypatch.setattr(worker_module, "run_job", always_fails)
    monkeypatch.setattr(time, "sleep", lambda s: None)
    result = execute_task((_job(max_attempts=3, retry_backoff_s=0.01), None))
    assert len(calls) == 3
    assert result.error == "RuntimeError: persistent (after 3 attempts)"
    assert "persistent" in result.traceback


def test_retry_backoff_is_exponential(monkeypatch):
    sleeps = []

    def always_fails(job, seeds=None):
        raise RuntimeError("nope")

    monkeypatch.setattr(worker_module, "run_job", always_fails)
    monkeypatch.setattr(time, "sleep", sleeps.append)
    execute_task((_job(max_attempts=4, retry_backoff_s=0.5), None))
    assert sleeps == [0.5, 1.0, 2.0]  # backoff * 2**(attempt-1)


def test_timeout_abandons_a_stuck_job(monkeypatch):
    real_sleep = time.sleep

    def hangs(job, seeds=None):
        real_sleep(30)

    monkeypatch.setattr(worker_module, "run_job", hangs)
    result = execute_task((_job(timeout_s=0.1), None))
    assert result.error.startswith(JobTimeoutError.__name__)
    assert "0.1s wall-clock budget" in result.error


def test_deadline_runner_passes_results_and_errors_through():
    job = _job(timeout_s=5.0)
    ran = worker_module._run_job_deadline(job, None)
    assert ran.executions == 5
    assert ran.error == ""

    def boom(job, seeds=None):
        raise ValueError("from thread")

    import unittest.mock
    with unittest.mock.patch.object(worker_module, "run_job", boom):
        with pytest.raises(ValueError, match="from thread"):
            worker_module._run_job_deadline(job, None)


def test_spec_threads_robustness_knobs_into_jobs():
    spec = _spec(job_timeout_s=2.5, job_max_attempts=3,
                 job_retry_backoff_s=0.25)
    job = spec.jobs_for_round(0)[0]
    assert job.timeout_s == 2.5
    assert job.max_attempts == 3
    assert job.retry_backoff_s == 0.25


def test_robustness_knobs_do_not_change_fingerprint_or_old_checkpoints():
    plain = _spec()
    tuned = _spec(job_timeout_s=9.0, job_max_attempts=4,
                  job_retry_backoff_s=1.5)
    assert plain.fingerprint() == tuned.fingerprint()
    # Default knobs stay out of the serialized form entirely, so
    # pre-existing checkpoints remain byte-identical.
    record = plain.to_dict()
    assert "job_timeout_s" not in record
    assert "job_max_attempts" not in record
    assert "job_retry_backoff_s" not in record
    assert CampaignSpec.from_dict(tuned.to_dict()) == tuned


def test_job_spec_round_trips_with_and_without_knobs():
    plain = _job()
    record = plain.to_dict()
    assert "timeout_s" not in record
    assert "max_attempts" not in record
    assert JobSpec.from_dict(record) == plain
    tuned = _job(timeout_s=1.0, max_attempts=2, retry_backoff_s=0.1)
    assert JobSpec.from_dict(tuned.to_dict()) == tuned


def test_spec_validates_robustness_knobs():
    with pytest.raises(ValueError, match="job_timeout_s"):
        _spec(job_timeout_s=-1.0)
    with pytest.raises(ValueError, match="job_max_attempts"):
        _spec(job_max_attempts=0)
    with pytest.raises(ValueError, match="job_retry_backoff_s"):
        _spec(job_retry_backoff_s=-0.5)
