"""Worker telemetry across the fork boundary: counts, spool, bit-identity."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import GroupStats
from repro.campaign.worker import WorkerResult, execute_task
from repro.campaign.spec import JobSpec
from repro.telemetry import MetricsSpool, Telemetry
from repro.telemetry import spool as telemetry_spool
from repro.telemetry.context import session as telemetry_session


def small_spec(**overrides):
    params = dict(targets=("gadgets",), tools=("teapot",),
                  iterations=30, rounds=2, shards=2, seed=13, workers=1)
    params.update(overrides)
    return CampaignSpec(**params)


def test_worker_result_round_trips_telemetry_counts():
    result = WorkerResult(job_id="j", target="gadgets", tool="teapot",
                          variant="vanilla", shard=0, round_index=0,
                          telemetry_counts={"fuzz.executions": 15,
                                            "engine.jit.cache.memo_hits": 2})
    record = json.loads(json.dumps(result.to_dict()))
    back = WorkerResult.from_dict(record)
    assert back.telemetry_counts == result.telemetry_counts
    # Pre-PR-8 records (no telemetry_counts key) deserialize empty.
    del record["telemetry_counts"]
    assert WorkerResult.from_dict(record).telemetry_counts == {}


def test_group_stats_checkpoint_omits_empty_telemetry_counts():
    stats = GroupStats()
    assert "telemetry_counts" not in stats.to_dict()
    stats.telemetry_counts["fuzz.executions"] = 30
    record = stats.to_dict()
    assert record["telemetry_counts"] == {"fuzz.executions": 30}
    assert GroupStats.from_dict(record).telemetry_counts == {
        "fuzz.executions": 30}


def test_simulated_forked_worker_spools_job_counts(tmp_path, monkeypatch):
    # execute_task in a "forked child" (pid differs from the enabler's)
    # must run the job under a fresh registry bundle, return the per-job
    # counter deltas and append them to the spool.
    spool_path = str(tmp_path / "spool.jsonl")
    telemetry_spool.enable(spool_path)
    monkeypatch.setattr(telemetry_spool, "_PARENT_PID", os.getpid() + 1)
    try:
        job = JobSpec(target="gadgets", tool="teapot", variant="vanilla",
                      shard=0, round_index=0, iterations=10, seed=13)
        result = execute_task((job, None))
    finally:
        telemetry_spool.disable()
    assert result.error == ""
    assert result.telemetry_counts["fuzz.executions"] == 10
    assert result.telemetry_counts["engine.executions"] == 10
    records, _ = telemetry_spool.read_records(spool_path)
    assert len(records) == 1
    assert records[0]["job_id"] == job.job_id
    assert records[0]["counts"] == result.telemetry_counts


def test_serial_campaign_counts_stay_in_parent_registry(tmp_path):
    # workers=1 runs jobs in-process: the parent registry counts live and
    # WorkerResult.telemetry_counts stays empty (no double counting).
    telemetry = Telemetry()
    telemetry.spool = MetricsSpool(str(tmp_path / "spool.jsonl"))
    with telemetry_session(telemetry):
        summary = run_campaign(small_spec())
    assert telemetry.registry.counter("fuzz.executions").value == 30
    assert telemetry.registry.counter("campaign.executions").value == 30
    assert summary.groups[0].telemetry_counts == {}
    assert os.path.getsize(telemetry.spool.path) == 0


def test_pool_campaign_merges_worker_counters_into_parent(tmp_path):
    telemetry = Telemetry()
    telemetry.spool = MetricsSpool(str(tmp_path / "spool.jsonl"))
    with telemetry_session(telemetry):
        summary = run_campaign(small_spec(workers=2))
    registry = telemetry.registry
    # Worker-side engine/fuzz counters surfaced into the campaign totals.
    assert registry.counter("fuzz.executions").value == 30
    assert registry.counter("engine.executions").value == 30
    assert registry.counter("engine.simulations").value > 0
    assert registry.counter("campaign.executions").value == 30
    # The merged per-group counts rode home in the summary too.
    group = summary.groups[0]
    assert group.telemetry_counts["fuzz.executions"] == 30
    # Every worker job left a spool record, all consumed by round merges.
    records, _ = telemetry_spool.read_records(telemetry.spool.path)
    assert len(records) == 4  # 2 shards x 2 rounds
    assert telemetry.spool.unconsumed() == {}


def test_pool_campaign_results_identical_with_and_without_telemetry(tmp_path):
    plain = run_campaign(small_spec(workers=2))
    telemetry = Telemetry()
    telemetry.spool = MetricsSpool(str(tmp_path / "spool.jsonl"))
    with telemetry_session(telemetry):
        observed = run_campaign(small_spec(workers=2))
    # Observation-only: the summary artifact is bit-identical, and the
    # runtime-only telemetry_counts never leak into the serialized form.
    assert observed.to_dict() == plain.to_dict()
    assert "telemetry_counts" not in json.dumps(observed.to_dict())
