"""Tests for the cross-worker report store and checkpoint state."""

import json

import pytest

from repro.campaign.store import (
    CampaignState,
    GroupStats,
    ReportStore,
    group_key_str,
    parse_group_key,
)
from repro.fuzzing.corpus import Corpus
from repro.sanitizers.reports import AttackerClass, Channel, GadgetReport

KEY = ("jsmn", "teapot", "vanilla")


def report_dicts(*pcs):
    return [
        GadgetReport(tool="teapot", channel=Channel.CACHE,
                     attacker=AttackerClass.USER, pc=pc,
                     branch_addresses=(), depth=1).to_dict()
        for pc in pcs
    ]


def test_group_key_round_trip():
    assert parse_group_key(group_key_str(KEY)) == KEY


def test_store_dedups_across_workers():
    store = ReportStore()
    assert store.add_serialized(KEY, report_dicts(0x100, 0x104)) == 2
    # A second worker found one overlapping and one new site.
    assert store.add_serialized(KEY, report_dicts(0x104, 0x108)) == 1
    assert store.unique_count(KEY) == 3
    assert store.total_unique() == 3
    # Raw occurrences (including worker-local duplicates) are preserved.
    assert store.add_serialized(KEY, report_dicts(0x100), raw_count=5) == 0
    assert store.collection(KEY).total_raw == 9


def test_add_serialized_is_idempotent():
    """Feeding the same worker payload twice must not inflate uniques.

    The service queue's exactly-once completion leans on this: a
    re-delivered result merges to the same unique-site totals.
    """
    store = ReportStore()
    payload = report_dicts(0x100, 0x104, 0x108)
    assert store.add_serialized(KEY, payload, raw_count=3) == 3
    assert store.add_serialized(KEY, payload, raw_count=3) == 0
    assert store.unique_count(KEY) == 3
    assert store.collection(KEY).count_by_variant() == \
        ReportStore.from_dict(store.to_dict()).collection(KEY).count_by_variant()


def test_cross_order_merge_same_uniques():
    """Site dedup is order-independent: shuffled payloads, same totals."""
    payloads = [report_dicts(0x100, 0x104), report_dicts(0x104, 0x108),
                report_dicts(0x108, 0x10c), report_dicts(0x100)]
    forward = ReportStore()
    for payload in payloads:
        forward.add_serialized(KEY, payload)
    shuffled = ReportStore()
    for payload in reversed(payloads):
        shuffled.add_serialized(KEY, payload)
    assert forward.total_unique() == shuffled.total_unique() == 4
    assert forward.collection(KEY).count_by_variant() == \
        shuffled.collection(KEY).count_by_variant()
    assert forward.collection(KEY).total_raw == \
        shuffled.collection(KEY).total_raw


def test_store_keeps_groups_separate():
    store = ReportStore()
    store.add_serialized(KEY, report_dicts(0x100))
    store.add_serialized(("jsmn", "specfuzz", "vanilla"), report_dicts(0x100))
    assert store.total_unique() == 2
    assert store.keys() == [("jsmn", "specfuzz", "vanilla"), KEY]


def test_store_dict_round_trip():
    store = ReportStore()
    store.add_serialized(KEY, report_dicts(0x100, 0x104), raw_count=7)
    rebuilt = ReportStore.from_dict(store.to_dict())
    assert rebuilt.unique_count(KEY) == 2
    assert rebuilt.collection(KEY).total_raw == 7
    assert rebuilt.to_dict() == store.to_dict()


def test_state_checkpoint_round_trip(tmp_path):
    state = CampaignState(fingerprint="abc123", spec_dict={"targets": ["jsmn"]},
                          completed_rounds=2)
    corpus = Corpus([b"seed"])
    corpus.add(b"found", 3, 1, reason="speculative")
    state.corpora[KEY] = corpus
    stats = state.group_stats(KEY)
    stats.executions = 40
    stats.spec_stats["rollbacks"] = 9
    state.store.add_serialized(KEY, report_dicts(0x100))

    path = str(tmp_path / "ckpt.json")
    state.save(path)
    # The checkpoint is plain JSON (documented format).
    with open(path) as handle:
        raw = json.load(handle)
    assert raw["version"] == 1
    assert raw["completed_rounds"] == 2

    loaded = CampaignState.load(path)
    assert loaded.fingerprint == "abc123"
    assert loaded.completed_rounds == 2
    assert loaded.corpora[KEY].to_bytes_list() == [b"seed", b"found"]
    assert loaded.corpora[KEY].entries[1].reason == "speculative"
    assert loaded.stats[KEY].executions == 40
    assert loaded.stats[KEY].spec_stats == {"rollbacks": 9}
    assert loaded.store.unique_count(KEY) == 1
    assert loaded.to_dict() == state.to_dict()


def test_state_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "fingerprint": "x", "spec": {}}))
    with pytest.raises(ValueError, match="version"):
        CampaignState.load(str(path))


def test_group_stats_round_trip():
    stats = GroupStats(executions=10, crashes=2, normal_coverage=5,
                       spec_stats={"a": 1})
    assert GroupStats.from_dict(stats.to_dict()) == stats
