"""Smoke tests for the ``python -m repro.campaign`` CLI."""

import json

import pytest

from repro.campaign.cli import main


def test_cli_list_targets(capsys):
    from repro.targets import injectable_targets, runnable_targets

    exit_code = main(["--list-targets"])
    assert exit_code == 0
    out = capsys.readouterr().out
    for name in runnable_targets():
        assert name in out
    # Injectable targets are flagged; pure drivers (gadgets) are not.
    for name in injectable_targets():
        assert f"{name}  (supports --variants injected)" in out
    assert "gadgets  (supports" not in out


def test_cli_runs_a_small_campaign(capsys):
    exit_code = main([
        "--targets", "gadgets", "--iterations", "20", "--rounds", "2",
        "--workers", "1", "--seed", "3", "--quiet",
    ])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "gadgets" in out
    assert "unique gadget sites" in out


def test_cli_writes_json_summary(tmp_path, capsys):
    json_path = tmp_path / "summary.json"
    exit_code = main([
        "--targets", "gadgets", "--iterations", "10", "--rounds", "1",
        "--seed", "3", "--quiet", "--json", str(json_path),
    ])
    assert exit_code == 0
    payload = json.loads(json_path.read_text())
    assert payload["rounds_completed"] == 1
    (group,) = payload["groups"]
    assert group["target"] == "gadgets"
    assert group["executions"] == 10


def test_cli_checkpoint_and_resume(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    args = ["--targets", "gadgets", "--iterations", "16", "--rounds", "2",
            "--seed", "5", "--quiet", "--checkpoint", str(ckpt)]
    assert main(args) == 0
    first = capsys.readouterr().out
    # Resuming a finished campaign re-prints the same summary without work.
    assert main(args + ["--resume"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_cli_resume_with_different_worker_count(tmp_path, capsys):
    """--shards defaults to the checkpoint's value on resume, so a campaign
    started with one worker count can be finished with another."""
    ckpt = tmp_path / "ckpt.json"
    base = ["--targets", "gadgets", "--iterations", "16", "--rounds", "2",
            "--seed", "5", "--quiet", "--checkpoint", str(ckpt)]
    assert main(base + ["--workers", "2"]) == 0
    first = capsys.readouterr().out
    assert main(base + ["--workers", "1", "--resume"]) == 0
    assert capsys.readouterr().out == first


def test_cli_resume_with_mismatched_spec_fails(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    base = ["--targets", "gadgets", "--rounds", "1", "--quiet",
            "--checkpoint", str(ckpt)]
    assert main(base + ["--iterations", "8"]) == 0
    assert main(base + ["--iterations", "12", "--resume"]) == 2
    assert "fingerprint" in capsys.readouterr().err


def test_cli_rejects_unknown_target(capsys):
    with pytest.raises(SystemExit):
        main(["--targets", "no-such-target"])
