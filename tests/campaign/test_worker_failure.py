"""Worker error capture: a raising job fails structurally, not fatally."""

from __future__ import annotations

import pytest

import repro.campaign.worker as worker_module
from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import execute_task
from repro.telemetry import Telemetry, read_trace
from repro.telemetry import context as telemetry_context


def _spec(**overrides):
    params = dict(targets=("gadgets",), tools=("teapot",),
                  variants=("vanilla",), iterations=20, rounds=1, shards=1,
                  seed=3)
    params.update(overrides)
    return CampaignSpec(**params)


def _raise_run_job(job, seeds=None):
    raise RuntimeError("injected worker failure")


def test_execute_task_converts_exceptions_to_error_results(monkeypatch):
    monkeypatch.setattr(worker_module, "run_job", _raise_run_job)
    job = _spec().jobs_for_round(0)[0]
    result = execute_task((job, None))
    assert result.error == "RuntimeError: injected worker failure"
    assert "injected worker failure" in result.traceback
    assert result.job_id == job.job_id
    assert result.executions == 0
    assert result.elapsed_s >= 0


def test_scheduler_counts_failed_jobs_in_summary(monkeypatch):
    monkeypatch.setattr(worker_module, "run_job", _raise_run_job)
    summary = run_campaign(_spec(), scheduler="serial")
    row = summary.row("gadgets", "teapot")
    assert row.failed_jobs == 1
    assert row.executions == 0
    assert summary.total_failed_jobs() == 1
    assert "1 job(s) FAILED" in summary.format_table()
    assert row.to_dict()["failed_jobs"] == 1


def test_failed_jobs_survive_checkpoint_round_trip(tmp_path, monkeypatch):
    from repro.campaign.store import CampaignState

    monkeypatch.setattr(worker_module, "run_job", _raise_run_job)
    checkpoint = tmp_path / "campaign.json"
    run_campaign(_spec(), checkpoint_path=str(checkpoint), scheduler="serial")
    state = CampaignState.load(str(checkpoint))
    assert state.group_stats(("gadgets", "teapot", "vanilla")).failed_jobs == 1


def test_failure_emits_job_failed_trace_event(tmp_path, monkeypatch):
    monkeypatch.setattr(worker_module, "run_job", _raise_run_job)
    trace_path = tmp_path / "trace.jsonl"
    telemetry = Telemetry.create(trace=str(trace_path))
    with telemetry_context.session(telemetry):
        run_campaign(_spec(), scheduler="serial")
    telemetry.close()
    records = read_trace(str(trace_path))
    failed = [r for r in records if r.get("type") == "job_failed"]
    assert len(failed) == 1
    assert failed[0]["error"] == "RuntimeError: injected worker failure"
    assert "injected worker failure" in failed[0]["traceback"]
    assert telemetry.registry.value("campaign.jobs_failed") == 1


def test_healthy_campaign_reports_zero_failures():
    summary = run_campaign(_spec(), scheduler="serial")
    assert summary.total_failed_jobs() == 0
    assert "FAILED" not in summary.format_table()
