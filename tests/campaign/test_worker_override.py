"""Binary overrides: substituting prebuilt binaries into campaign jobs."""

from __future__ import annotations

from repro.campaign.worker import (
    binary_override,
    clear_caches,
    compiled_binary,
    instrumented_binary,
)
from repro.disasm.disassembler import disassemble
from repro.isa.instructions import lfence
from repro.rewriting.reassemble import reassemble


def _tweaked_copy(binary):
    """A behaviourally equivalent but distinguishable rebuild."""
    module = disassemble(binary)
    module.function("main").blocks[0].instructions.insert(0, lfence())
    return reassemble(module)


def test_override_substitutes_and_restores():
    clear_caches()
    original = compiled_binary("gadgets", "vanilla")
    replacement = _tweaked_copy(original)
    with binary_override("gadgets", "vanilla", replacement):
        assert compiled_binary("gadgets", "vanilla") is replacement
    assert compiled_binary("gadgets", "vanilla") is original


def test_override_bypasses_the_instrumented_memo():
    clear_caches()
    baseline = instrumented_binary("gadgets", "teapot", "vanilla")
    replacement = _tweaked_copy(compiled_binary("gadgets", "vanilla"))
    with binary_override("gadgets", "vanilla", replacement):
        overridden = instrumented_binary("gadgets", "teapot", "vanilla")
        # The instrumented build must derive from the override, not from
        # the memoised registry build…
        assert overridden is not baseline
        assert overridden.text.data != baseline.text.data
    # …and the memo must still serve the original afterwards.
    assert instrumented_binary("gadgets", "teapot", "vanilla") is baseline


def test_overrides_nest():
    clear_caches()
    original = compiled_binary("gadgets", "vanilla")
    first = _tweaked_copy(original)
    second = _tweaked_copy(first)
    with binary_override("gadgets", "vanilla", first):
        with binary_override("gadgets", "vanilla", second):
            assert compiled_binary("gadgets", "vanilla") is second
        assert compiled_binary("gadgets", "vanilla") is first
    assert compiled_binary("gadgets", "vanilla") is original
