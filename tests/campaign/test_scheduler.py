"""End-to-end scheduler tests: determinism, corpus sync, checkpoint/resume.

All campaigns here fuzz the ``gadgets`` sample driver — it compiles in
milliseconds and every execution is a few hundred emulated instructions,
so whole multi-round matrices stay well under a second.
"""

import pytest

from repro.campaign.scheduler import CampaignScheduler, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignState


def small_spec(**overrides):
    params = dict(targets=("gadgets",), tools=("teapot",),
                  iterations=30, rounds=2, shards=2, seed=13, workers=1)
    params.update(overrides)
    return CampaignSpec(**params)


@pytest.fixture(scope="module")
def baseline_summary():
    return run_campaign(small_spec())


def test_campaign_finds_gadgets_and_counts_executions(baseline_summary):
    row = baseline_summary.row("gadgets", "teapot")
    assert row.executions == 30
    assert row.unique_gadgets >= 1
    assert row.raw_reports >= row.unique_gadgets
    assert row.corpus_size >= 4  # the four seeds survive the sync
    assert any(cat.startswith("User-") for cat in row.by_category)


def test_same_spec_replays_identically(baseline_summary):
    again = run_campaign(small_spec())
    assert again.to_dict() == baseline_summary.to_dict()


def test_worker_count_does_not_change_results(baseline_summary):
    parallel = run_campaign(small_spec(workers=3))
    assert parallel.to_dict() == baseline_summary.to_dict()


def test_shard_count_is_part_of_the_result():
    sharded = run_campaign(small_spec(shards=3))
    unsharded = run_campaign(small_spec(shards=1))
    assert sharded.fingerprint != unsharded.fingerprint


def test_multi_tool_matrix_keeps_groups_separate():
    summary = run_campaign(small_spec(tools=("teapot", "specfuzz"),
                                      iterations=20))
    assert len(summary.groups) == 2
    teapot = summary.row("gadgets", "teapot")
    specfuzz = summary.row("gadgets", "specfuzz")
    assert teapot.executions == specfuzz.executions == 20
    # SpecFuzz cannot classify attacker control; Teapot can.
    assert all(cat.startswith("Unknown-") for cat in specfuzz.by_category)
    assert all(not cat.startswith("Unknown-") for cat in teapot.by_category)


def test_checkpoint_resume_matches_uninterrupted_run(tmp_path, baseline_summary):
    spec = small_spec()
    ckpt = str(tmp_path / "campaign.json")

    # Run round 1, then abort before round 2 (a simulated kill).
    scheduler = CampaignScheduler(spec, checkpoint_path=ckpt)

    def abort_on_round_2(message):
        if message.startswith("round 2"):
            raise KeyboardInterrupt
    scheduler._progress = abort_on_round_2
    with pytest.raises(KeyboardInterrupt):
        scheduler.run()

    interrupted = CampaignState.load(ckpt)
    assert interrupted.completed_rounds == 1

    resumed = run_campaign(spec, checkpoint_path=ckpt, resume=True)
    assert resumed.to_dict() == baseline_summary.to_dict()

    # The final checkpoint records the completed campaign.
    final = CampaignState.load(ckpt)
    assert final.completed_rounds == spec.rounds


def test_resume_refuses_mismatched_spec(tmp_path):
    ckpt = str(tmp_path / "campaign.json")
    run_campaign(small_spec(rounds=1, iterations=8), checkpoint_path=ckpt)
    with pytest.raises(ValueError, match="fingerprint"):
        run_campaign(small_spec(rounds=1, iterations=12, seed=99),
                     checkpoint_path=ckpt, resume=True)


def test_resume_with_different_worker_count_is_allowed(tmp_path):
    spec = small_spec()
    ckpt = str(tmp_path / "campaign.json")
    scheduler = CampaignScheduler(spec, checkpoint_path=ckpt)

    def abort_on_round_2(message):
        if message.startswith("round 2"):
            raise KeyboardInterrupt
    scheduler._progress = abort_on_round_2
    with pytest.raises(KeyboardInterrupt):
        scheduler.run()

    resumed = run_campaign(spec.with_workers(3), checkpoint_path=ckpt,
                           resume=True)
    assert resumed.to_dict() == run_campaign(spec).to_dict()


def test_corpus_sync_redistributes_across_rounds():
    """Round 2 workers start from the merged round-1 corpus."""
    spec = small_spec(rounds=2, shards=2)
    scheduler = CampaignScheduler(spec)
    seen_seed_counts = []
    original = scheduler._seeds_for

    def spy(state, job):
        seeds = original(state, job)
        seen_seed_counts.append((job.round_index, len(seeds)))
        return seeds
    scheduler._seeds_for = spy
    scheduler.run()

    round0 = [count for round_index, count in seen_seed_counts if round_index == 0]
    round1 = [count for round_index, count in seen_seed_counts if round_index == 1]
    # Round 0 shards the 4 target seeds; round 1 shards the merged corpus,
    # which has grown past the seeds.
    assert sum(round0) == 4
    assert sum(round1) > sum(round0)


def test_summary_table_renders():
    summary = run_campaign(small_spec(iterations=10, rounds=1))
    table = summary.format_table()
    assert "gadgets" in table
    assert "teapot" in table
    assert "unique gadget sites" in table
