"""Tests for campaign specs: matrix expansion, seeding, serialization."""

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    JobSpec,
    derive_seed,
    split_evenly,
)


# -- helpers ----------------------------------------------------------------

def test_split_evenly():
    assert split_evenly(10, 4) == [3, 3, 2, 2]
    assert split_evenly(3, 5) == [1, 1, 1, 0, 0]
    assert split_evenly(0, 2) == [0, 0]
    with pytest.raises(ValueError):
        split_evenly(4, 0)


def test_derive_seed_is_stable_and_sensitive():
    a = derive_seed(0, "jsmn", "teapot", "vanilla", 0, 0)
    assert a == derive_seed(0, "jsmn", "teapot", "vanilla", 0, 0)
    assert a != derive_seed(1, "jsmn", "teapot", "vanilla", 0, 0)
    assert a != derive_seed(0, "jsmn", "teapot", "vanilla", 0, 1)
    assert a != derive_seed(0, "jsmn", "teapot", "vanilla", 1, 0)
    assert 0 <= a < 2 ** 63


# -- matrix expansion -------------------------------------------------------

def test_matrix_expansion_counts():
    spec = CampaignSpec(targets=("gadgets", "jsmn"), tools=("teapot", "specfuzz"),
                        iterations=40, rounds=2, shards=2, seed=1)
    jobs = spec.jobs_for_round(0)
    # 2 targets x 2 tools x 2 shards
    assert len(jobs) == 8
    assert all(job.iterations == 10 for job in jobs)
    assert len({job.seed for job in jobs}) == len(jobs)
    assert spec.round_iterations(0) + spec.round_iterations(1) == 40


def test_injected_variant_skipped_without_attack_points():
    # The 'gadgets' sample driver has no attack points, jsmn does.
    spec = CampaignSpec(targets=("gadgets", "jsmn"), variants=("injected",),
                        iterations=10, rounds=1)
    assert spec.groups() == [("jsmn", "teapot", "injected")]
    # The experiment harness keeps every requested program instead.
    spec = CampaignSpec(targets=("gadgets", "jsmn"), variants=("injected",),
                        iterations=10, rounds=1, skip_uninjectable=False)
    assert spec.groups() == [("gadgets", "teapot", "injected"),
                             ("jsmn", "teapot", "injected")]


def test_uneven_iterations_drop_empty_jobs():
    spec = CampaignSpec(targets=("gadgets",), iterations=3, rounds=2, shards=2)
    round0 = spec.jobs_for_round(0)
    round1 = spec.jobs_for_round(1)
    total = sum(job.iterations for job in round0 + round1)
    assert total == 3
    assert all(job.iterations > 0 for job in round0 + round1)


def test_spec_validation():
    with pytest.raises(ValueError):
        CampaignSpec(targets=("gadgets",), tools=("honggfuzz",))
    with pytest.raises(ValueError):
        CampaignSpec(targets=("gadgets",), variants=("debug",))
    with pytest.raises(ValueError):
        CampaignSpec(targets=("gadgets",), rounds=0)
    with pytest.raises(ValueError):
        CampaignSpec(targets=("gadgets",), derive_seeds=False, shards=2)


def test_legacy_seeding_uses_campaign_seed_directly():
    spec = CampaignSpec(targets=("gadgets",), iterations=10, rounds=1,
                        shards=1, seed=99, derive_seeds=False)
    assert [job.seed for job in spec.jobs_for_round(0)] == [99]


# -- serialization ----------------------------------------------------------

def test_spec_dict_round_trip():
    spec = CampaignSpec(targets=("jsmn", "gadgets"), tools=("teapot",),
                        variants=("vanilla", "injected"), iterations=120,
                        rounds=3, shards=4, seed=7, workers=4)
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


def test_fingerprint_ignores_workers_but_not_shards():
    spec = CampaignSpec(targets=("gadgets",), iterations=10, shards=2, workers=1)
    assert spec.fingerprint() == spec.with_workers(8).fingerprint()
    different = CampaignSpec(targets=("gadgets",), iterations=10, shards=3)
    assert spec.fingerprint() != different.fingerprint()


def test_job_id_and_group():
    job = JobSpec(target="jsmn", tool="teapot", variant="vanilla",
                  shard=1, shard_count=4, round_index=0, iterations=10)
    assert job.group == ("jsmn", "teapot", "vanilla")
    assert job.job_id == "jsmn/teapot/vanilla r0 s2/4"
