"""Tests for the workload programs, gadget injection and case studies."""

import pytest

from repro.runtime import Emulator
from repro.targets import (
    ALL_TARGETS,
    TABLE3_TARGETS,
    REGISTRY,
    compile_vanilla,
    get_target,
    inject_gadgets,
    strip_markers,
)
from repro.targets.case_studies import LZMA_CASE_STUDY, MASSAGE_CASE_STUDY
from repro.targets.gadget_samples import GADGET_TEMPLATES, gadget_globals, gadget_snippet


def test_registry_contains_all_paper_workloads():
    assert set(ALL_TARGETS) <= set(REGISTRY.names())
    assert set(TABLE3_TARGETS) < set(ALL_TARGETS)
    with pytest.raises(KeyError):
        REGISTRY.get("nginx")


@pytest.mark.parametrize("name", ALL_TARGETS)
def test_vanilla_targets_run_on_their_seeds(name):
    target = get_target(name)
    binary = compile_vanilla(target)
    emulator = Emulator(binary, max_steps=400_000)
    for seed in target.seeds:
        result = emulator.run(seed)
        assert result.ok, (name, seed, result.status, result.crash_reason)


@pytest.mark.parametrize("name", ALL_TARGETS)
def test_perf_inputs_scale_and_run(name):
    target = get_target(name)
    binary = compile_vanilla(target)
    emulator = Emulator(binary, max_steps=600_000)
    small = emulator.run(target.perf_input(64))
    large = emulator.run(target.perf_input(256))
    assert small.ok and large.ok
    assert large.arch_instructions > small.arch_instructions


@pytest.mark.parametrize("name", ALL_TARGETS)
def test_attack_point_markers_match_declared_points(name):
    target = get_target(name)
    for point in target.attack_points:
        assert target.marker_text(point.marker_id) in target.source
    assert strip_markers(target.source).find("@ATTACK_POINT") == -1


@pytest.mark.parametrize("name", TABLE3_TARGETS)
def test_injection_produces_ground_truth_and_runs(name):
    target = get_target(name)
    injected = inject_gadgets(target)
    assert injected.ground_truth_count == len(target.attack_points)
    assert injected.reachable_count <= injected.ground_truth_count
    emulator = Emulator(injected.binary, max_steps=400_000)
    result = emulator.run(target.seeds[0])
    assert result.ok, (name, result.status, result.crash_reason)
    # Each injected gadget contributes its per-instance globals.
    for gadget in injected.gadgets:
        assert injected.binary.has_symbol(f"atk_size_{gadget.marker_id}")


def test_libyaml_has_two_unreachable_gadgets():
    injected = inject_gadgets(get_target("libyaml"))
    unreachable = [g for g in injected.gadgets if not g.reachable]
    assert len(unreachable) == 2
    assert {g.function for g in unreachable} == {"scan_flow_mapping"}


def test_paper_ground_truth_counts():
    expected = {"jsmn": 3, "libyaml": 10, "libhtp": 7, "brotli": 13}
    for name, count in expected.items():
        assert len(get_target(name).attack_points) == count


def test_gadget_templates_are_self_contained():
    assert len(GADGET_TEMPLATES) == 4
    for variant in range(len(GADGET_TEMPLATES)):
        snippet = gadget_snippet(7, variant)
        assert "{n}" not in snippet
        assert "atk_idx_7" in snippet
    assert "atk_size_3" in gadget_globals(3)


def test_case_studies_compile_and_run():
    for case in (LZMA_CASE_STUDY, MASSAGE_CASE_STUDY):
        binary = case.compile()
        result = Emulator(binary, max_steps=300_000).run(case.seeds[0])
        assert result.ok, (case.name, result.status, result.crash_reason)


def test_injection_rejects_unknown_marker():
    from repro.targets.base import AttackPoint, TargetProgram
    bogus = TargetProgram(
        name="bogus",
        source="int main() { /*@ATTACK_POINT:9@*/ return 0; }",
        seeds=[b""],
        attack_points=[AttackPoint(1, "main")],
    )
    with pytest.raises(ValueError):
        inject_gadgets(bogus)
