"""Tests for Teapot's rewriting passes (static stage)."""

import pytest

from repro.core import TeapotConfig, TeapotRewriter, is_shadow_function, shadow_name
from repro.core.shadows import ShadowCopyPass
from repro.disasm import disassemble
from repro.isa.instructions import Opcode
from repro.rewriting import reassemble
from repro.rewriting.passes import PassManager, RewritePass
from repro.runtime import Emulator
from repro.runtime.emulator import SHADOW_METADATA_KEY


def test_shadow_copy_duplicates_functions(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    original = set(module.function_names())
    ShadowCopyPass().run(module)
    names = set(module.function_names())
    assert names == original | {shadow_name(n) for n in original}
    assert module.metadata[SHADOW_METADATA_KEY] == "1"
    for name in original:
        real = module.function(name)
        shadow = module.function(shadow_name(name))
        assert real.instruction_count() == shadow.instruction_count()


def test_shadow_copy_retargets_calls(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    ShadowCopyPass().run(module)
    shadow_main = module.function("main$spec")
    calls = [i for i in shadow_main.instructions() if i.opcode is Opcode.CALL]
    assert calls, "main$spec should still call victim"
    assert all(c.operands[0].name.endswith("$spec") for c in calls)
    # External calls are left alone.
    ecalls = [i for i in shadow_main.instructions() if i.opcode is Opcode.ECALL]
    assert ecalls


def test_shadow_copy_refuses_double_application(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    ShadowCopyPass().run(module)
    with pytest.raises(Exception):
        ShadowCopyPass().run(module)


def test_full_pipeline_statistics(spectre_victim_binary):
    rewriter = TeapotRewriter()
    instrumented = rewriter.instrument(spectre_victim_binary)
    stats = rewriter.last_stats
    assert stats["shadow-copy"]["functions_copied"] == 2
    assert stats["trampolines"]["checkpoints_inserted"] > 0
    assert stats["access-instrumentation"]["policy_checks"] > 0
    assert stats["restore-points"]["conditional_restores"] > 0
    assert stats["escape-markers"]["marked_blocks"] > 0
    assert instrumented.metadata["tool"] == "teapot"
    assert instrumented.metadata[SHADOW_METADATA_KEY] == "1"


def test_instrumentation_lives_only_in_shadow_copy(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    TeapotRewriter().instrument_module(module)
    shadow_only = {Opcode.ASAN_CHECK, Opcode.POLICY_LOAD, Opcode.POLICY_STORE,
                   Opcode.MEMLOG, Opcode.DIFT_PROP, Opcode.RESTORE_COND,
                   Opcode.RESTORE_ALWAYS}
    real_only = {Opcode.CHECKPOINT, Opcode.DIFT_BATCH, Opcode.MARKER_NOP,
                 Opcode.SPEC_REDIRECT, Opcode.COV_TRACE}
    for func in module.functions:
        opcodes = {i.opcode for i in func.instructions()}
        if is_shadow_function(func.name):
            assert not opcodes & {Opcode.DIFT_BATCH, Opcode.MARKER_NOP,
                                  Opcode.SPEC_REDIRECT}
        else:
            assert not opcodes & shadow_only, func.name


def test_no_guard_checks_in_teapot_output(spectre_victim_binary):
    """Speculation Shadows removes every per-site guard (the core claim)."""
    module = disassemble(spectre_victim_binary)
    TeapotRewriter().instrument_module(module)
    for func in module.functions:
        assert all(i.opcode is not Opcode.GUARD_CHECK for i in func.instructions())


def test_frame_relative_accesses_are_allowlisted(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    TeapotRewriter().instrument_module(module)
    for func in module.functions:
        if not is_shadow_function(func.name):
            continue
        instrs = list(func.instructions())
        for i, instr in enumerate(instrs):
            if instr.opcode in (Opcode.POLICY_LOAD, Opcode.POLICY_STORE):
                mem = instr.memory_operand()
                assert not mem.is_frame_relative_constant


def test_checkpoint_precedes_every_conditional_branch(spectre_victim_binary):
    module = disassemble(spectre_victim_binary)
    TeapotRewriter().instrument_module(module)
    for func in module.functions:
        if is_shadow_function(func.name):
            continue
        for block in func.blocks:
            instrs = block.instructions
            for i, instr in enumerate(instrs):
                if instr.opcode is Opcode.JCC:
                    assert instrs[i - 1].opcode is Opcode.CHECKPOINT


def test_nested_speculation_can_be_disabled(spectre_victim_binary):
    config = TeapotConfig().without_nesting()
    module = disassemble(spectre_victim_binary)
    TeapotRewriter(config).instrument_module(module)
    for func in module.functions:
        if is_shadow_function(func.name):
            checkpoints = [i for i in func.instructions()
                           if i.opcode is Opcode.CHECKPOINT]
            assert checkpoints == []


def test_instrumented_binary_reassembles_and_behaves(spectre_victim_binary, inbounds_input):
    instrumented = TeapotRewriter().instrument(spectre_victim_binary)
    native = Emulator(spectre_victim_binary).run(inbounds_input)
    # Run the instrumented binary *without* a speculation controller: the
    # Real Copy must behave exactly like the original program.
    plain = Emulator(instrumented).run(inbounds_input)
    assert plain.ok
    assert plain.exit_status == native.exit_status


def test_pass_manager_collects_stats():
    class CountingPass(RewritePass):
        name = "counting"

        def run(self, module):
            self.bump("ran")

    from repro.minic.compiler import compile_source
    module = disassemble(compile_source("int main() { return 0; }"))
    manager = PassManager().add(CountingPass())
    stats = manager.run(module)
    assert stats == {"counting": {"ran": 1}}
