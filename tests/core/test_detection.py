"""Runtime detection tests: Teapot over Spectre-V1 victims."""

import pytest

from repro.core import TeapotConfig, TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.runtime import Emulator
from repro.sanitizers.reports import AttackerClass, Channel


@pytest.fixture(scope="module")
def victim_runtime():
    from tests.conftest import SPECTRE_VICTIM_SOURCE
    from repro.minic.compiler import compile_source
    binary = compile_source(SPECTRE_VICTIM_SOURCE)
    instrumented = TeapotRewriter().instrument(binary)
    return TeapotRuntime(instrumented)


def test_oob_index_reports_user_gadget(victim_runtime, oob_input):
    result = victim_runtime.run(oob_input)
    assert result.ok
    categories = {r.category for r in result.reports}
    assert "User-MDS" in categories
    assert result.spec_stats["simulations_started"] > 0


def test_inbounds_index_reports_nothing_harmful(victim_runtime, inbounds_input):
    result = victim_runtime.run(inbounds_input)
    assert result.ok
    user_reports = [r for r in result.reports if r.attacker is AttackerClass.USER]
    assert user_reports == []


def test_reports_carry_branch_context(victim_runtime, oob_input):
    result = victim_runtime.run(oob_input)
    report = [r for r in result.reports if r.channel is Channel.MDS][0]
    assert report.depth >= 1
    assert len(report.branch_addresses) == report.depth
    assert report.tool == "teapot"


def test_rollback_restores_architectural_results(victim_runtime, oob_input, inbounds_input):
    # The architectural result must be identical with and without gadget
    # detection: speculation simulation may not leak into real state.
    plain = Emulator(victim_runtime.binary).run(inbounds_input)
    detected = victim_runtime.run(inbounds_input)
    assert plain.exit_status == detected.exit_status


def test_heap_redzone_overflow_detected():
    """A one-past-the-end speculative overflow into a redzone is caught."""
    from repro.minic.compiler import compile_source
    source = r"""
    int size = 16;
    int main() {
        byte buf[16];
        int n = read_input(buf, 16);
        byte *arr = malloc(16);
        byte *probe = malloc(512);
        int index = buf[0];
        int value = 0;
        if (index < size) {
            value = probe[arr[index]];
        }
        free(arr);
        free(probe);
        return value;
    }
    """
    binary = compile_source(source)
    runtime = TeapotRuntime(TeapotRewriter().instrument(binary))
    # index = 24: in the right redzone of arr (16-byte allocation).
    result = runtime.run(bytes([24] + [0] * 15))
    assert any(r.channel is Channel.MDS and r.attacker is AttackerClass.USER
               for r in result.reports)


def test_port_contention_gadget_detected():
    from repro.minic.compiler import compile_source
    source = r"""
    int limit = 8;
    int main() {
        byte buf[16];
        int n = read_input(buf, 16);
        byte *secrets = malloc(8);
        int index = buf[0] + buf[1] * 256;
        int decision = 0;
        if (index < limit) {
            int secret = secrets[index];
            if (secret > 10) {
                decision = 1;
            }
        }
        free(secrets);
        return decision;
    }
    """
    binary = compile_source(source)
    runtime = TeapotRuntime(TeapotRewriter().instrument(binary))
    # index = 16: lands in the heap redzone right after the 8-byte secrets
    # allocation, so the speculative load is sanitizer-visible and the loaded
    # "secret" then decides a branch (the port-contention transmitter).
    result = runtime.run(bytes([16, 0] + [0] * 14))
    channels = {r.channel for r in result.reports}
    assert Channel.PORT in channels


def test_massage_policy_produces_indirect_reports():
    """An untainted speculative OOB result used as a pointer is Massage-*."""
    from repro.minic.compiler import compile_source
    source = r"""
    int count = 2;
    int main() {
        byte buf[8];
        int n = read_input(buf, 8);
        int *lengths = malloc(32);
        byte *probe = malloc(256);
        lengths[0] = 1;
        int i = 0;
        int total = 0;
        while (i < n) {
            if (i < count) {
                int wild = lengths[i + 3];
                total = total + probe[wild];
            }
            i = i + 1;
        }
        free(lengths);
        free(probe);
        return total;
    }
    """
    # lengths holds 4 words; in the mispredicted `i < count` path with i = 2
    # the access lengths[5] lands in the allocation's redzone, its (untainted)
    # result becomes attacker-indirect data, and the following dereference
    # through it is a Massage-* gadget.
    binary = compile_source(source)
    config = TeapotConfig(massage_enabled=True)
    runtime = TeapotRuntime(TeapotRewriter(config).instrument(binary), config=config)
    result = runtime.run(bytes([1, 2, 3]))
    attackers = {r.attacker for r in result.reports}
    assert AttackerClass.MASSAGE in attackers


def test_massage_disabled_suppresses_indirect_reports():
    from repro.minic.compiler import compile_source
    from tests.conftest import SPECTRE_VICTIM_SOURCE
    binary = compile_source(SPECTRE_VICTIM_SOURCE)
    config = TeapotConfig(massage_enabled=False)
    runtime = TeapotRuntime(TeapotRewriter(config).instrument(binary), config=config)
    result = runtime.run((1 << 30).to_bytes(4, "little") + bytes(12))
    assert all(r.attacker is not AttackerClass.MASSAGE for r in result.reports)
