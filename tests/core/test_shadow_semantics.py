"""Semantic tests of Speculation Shadows: escapes, markers, budget, coverage."""

import pytest

from repro.core import TeapotConfig, TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.minic.compiler import compile_source
from repro.runtime import Emulator


def _runtime(source, config=None):
    config = config or TeapotConfig()
    binary = compile_source(source)
    instrumented = TeapotRewriter(config).instrument(binary)
    return TeapotRuntime(instrumented, config=config)


INDIRECT_CALL_SOURCE = r"""
int handler_a(int x) { return x + 1; }
int handler_b(int x) { return x + 2; }
int dispatch_table[2];

int main() {
    byte buf[8];
    int n = read_input(buf, 8);
    dispatch_table[0] = &handler_a;
    dispatch_table[1] = &handler_b;
    int which = 0;
    if (buf[0] > 10) {
        which = 1;
    }
    int fp = dispatch_table[which];
    return fp(buf[1]);
}
"""


def test_indirect_call_through_real_copy_pointer_is_contained():
    """Function pointers stored in globals point at Real-Copy code
    (paper Fig. 5b); simulation must not escape through them."""
    runtime = _runtime(INDIRECT_CALL_SOURCE)
    for first in (0, 50):
        result = runtime.run(bytes([first, 7]))
        assert result.ok
        expected = 7 + (2 if first > 10 else 1)
        assert result.exit_status == expected
        assert result.spec_stats["simulations_started"] > 0


def test_return_sites_redirect_back_into_shadow():
    source = r"""
    int helper(int x) {
        if (x > 100) { return 1; }
        return 0;
    }
    int main() {
        byte buf[4];
        read_input(buf, 4);
        int a = helper(buf[0]);
        int b = helper(buf[1]);
        return a * 10 + b;
    }
    """
    runtime = _runtime(source)
    result = runtime.run(bytes([200, 3]))
    assert result.ok and result.exit_status == 10
    # Returns inside simulation either stay contained (marker redirect) or
    # force a rollback; either way stats stay consistent and nothing crashes.
    stats = result.spec_stats
    assert stats["rollbacks"] >= stats["simulations_started"] > 0


def test_rob_budget_caps_simulated_instructions():
    source = r"""
    int main() {
        byte buf[4];
        int n = read_input(buf, 4);
        int total = 0;
        if (n < 3) {
            int i;
            for (i = 0; i < 100000; i++) {
                total = total + i;
            }
        }
        return 1;
    }
    """
    config = TeapotConfig(rob_budget=250, nested_speculation=False)
    runtime = _runtime(source, config)
    result = runtime.run(bytes([1, 2, 3, 4]))   # n = 4 -> loop is the wrong path
    assert result.ok
    stats = result.spec_stats
    assert stats["budget_rollbacks"] >= 1
    # Each episode simulates at most ~budget instructions.
    assert stats["simulated_instructions"] <= (
        (stats["simulations_started"] + stats["nested_simulations"]) * 300
    )


def test_external_calls_terminate_simulation():
    source = r"""
    int main() {
        byte buf[4];
        int n = read_input(buf, 4);
        if (n < 2) {
            byte *p = malloc(64);
            free(p);
        }
        return n;
    }
    """
    runtime = _runtime(source, TeapotConfig(nested_speculation=False))
    result = runtime.run(bytes([1, 2, 3]))   # n = 3: malloc is on the wrong path
    assert result.ok and result.exit_status == 3
    assert result.spec_stats["forced_rollbacks"] >= 1


def test_serializing_instruction_note():
    # lfence/cpuid are not emitted by the mini-C compiler; exercise the
    # runtime path directly through a hand-built binary.
    from repro.isa.assembler import AsmProgram, Assembler
    from repro.isa.builder import FunctionBuilder
    from repro.isa.operands import Imm, Reg
    from repro.isa.registers import Register
    from repro.core.teapot import TeapotRewriter

    main = FunctionBuilder("main")
    main.prologue(16)
    main.mov(Reg(Register.R1), Imm(1))
    main.cmp(Reg(Register.R1), Imm(0))
    done = main.fresh_label("done")
    main.je(done)   # not taken normally -> simulation goes to `done`
    main.mov(Reg(Register.R2), Imm(2))
    main.label(done)
    main.lfence()
    main.mov(Reg(Register.R0), Imm(0))
    main.epilogue()
    binary = Assembler().assemble(AsmProgram(functions=[main.build()]))
    runtime = TeapotRuntime(TeapotRewriter().instrument(binary))
    result = runtime.run(b"")
    assert result.ok
    assert result.spec_stats["forced_rollbacks"] >= 1


def test_coverage_tracks_normal_and_speculative_separately():
    source = r"""
    int main() {
        byte buf[8];
        int n = read_input(buf, 8);
        int total = 0;
        int i;
        for (i = 0; i < n; i++) {
            if (buf[i] > 100) {
                total = total + 2;
            } else {
                total = total + 1;
            }
        }
        return total;
    }
    """
    runtime = _runtime(source)
    runtime.run(bytes([1, 200, 3]))
    normal, speculative = runtime.coverage.new_coverage_signature()
    assert normal > 0
    assert speculative > 0
    # More diverse input increases normal coverage monotonically.
    runtime.run(bytes([255] * 6))
    normal2, speculative2 = runtime.coverage.new_coverage_signature()
    assert normal2 >= normal
    assert speculative2 >= speculative


def test_crash_during_simulation_never_surfaces():
    source = r"""
    int main() {
        byte buf[8];
        int n = read_input(buf, 8);
        byte *p = malloc(8);
        int value = 0;
        if (n > 100) {
            value = p[buf[0] * 1000000007];
        }
        free(p);
        return 5;
    }
    """
    runtime = _runtime(source)
    result = runtime.run(bytes([9, 9, 9]))
    assert result.ok and result.exit_status == 5
    assert result.spec_stats["exception_rollbacks"] >= 1
