"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.isa.assembler import AsmProgram, Assembler
from repro.isa.builder import FunctionBuilder
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register
from repro.loader.binary_format import DataObject
from repro.minic.compiler import compile_source


@pytest.fixture
def simple_binary():
    """A tiny hand-assembled binary: main() calls helper(5) and returns 8."""
    main = FunctionBuilder("main")
    main.prologue(16)
    main.mov(Reg(Register.R1), Imm(5))
    main.call("helper")
    main.epilogue()
    helper = FunctionBuilder("helper")
    helper.mov(Reg(Register.R0), Reg(Register.R1))
    helper.add(Reg(Register.R0), Imm(3))
    helper.ret()
    program = AsmProgram(functions=[main.build(), helper.build()])
    return Assembler().assemble(program)


#: The canonical Spectre-V1 victim used throughout the integration tests:
#: a bounds-checked, attacker-indexed double load over heap arrays.
SPECTRE_VICTIM_SOURCE = r"""
int limit = 16;

int victim(byte *arr1, byte *arr2, int index) {
    int value = 0;
    if (index < limit) {
        value = arr2[arr1[index] * 2];
    }
    return value;
}

int main() {
    byte buf[16];
    int n = read_input(buf, 16);
    if (n < 8) {
        return 0;
    }
    int index = buf[0] + buf[1] * 256 + buf[2] * 65536 + buf[3] * 16777216;
    byte *arr1 = malloc(16);
    byte *arr2 = malloc(512);
    int result = victim(arr1, arr2, index);
    free(arr1);
    free(arr2);
    return result;
}
"""


@pytest.fixture
def spectre_victim_binary():
    """The canonical Spectre-V1 victim compiled from mini-C."""
    return compile_source(SPECTRE_VICTIM_SOURCE)


@pytest.fixture
def oob_input():
    """An input driving the victim's index far out of bounds."""
    return (1 << 30).to_bytes(4, "little") + bytes(12)


@pytest.fixture
def inbounds_input():
    """An input keeping the victim's index in bounds."""
    return bytes([3, 0, 0, 0]) + bytes(12)
