"""Tests for the detection policies and report bookkeeping."""

import pytest

from repro.isa import instructions as ins
from repro.isa.operands import Mem, Reg
from repro.isa.registers import Register
from repro.loader.layout import DEFAULT_LAYOUT
from repro.runtime.machine import MachineState
from repro.sanitizers.asan import BinaryAsan
from repro.sanitizers.dift import BinaryDift, TAG_MASSAGE, TAG_SECRET_USER, TAG_USER
from repro.sanitizers.policy import KasperPolicy, SpecFuzzPolicy, SpecTaintPolicy
from repro.sanitizers.reports import AttackerClass, Channel, GadgetReport, ReportCollection

R = Register


class FakeContext:
    branch_addresses = (0x1000,)
    depth = 1


def _env(policy):
    machine = MachineState()
    machine.memory.map_region(0x1000, 0x1000)
    asan = BinaryAsan(machine.memory, DEFAULT_LAYOUT)
    dift = BinaryDift(machine.memory, DEFAULT_LAYOUT)
    policy.attach(asan, dift)
    return machine, asan, dift


def _load_instr(base=R.R1, index=R.R2):
    instr = ins.load(Reg(R.R0), Mem(base=base, index=index), size=1)
    instr.address = 0x4242
    return instr


def test_kasper_user_oob_load_reports_mds_and_promotes():
    policy = KasperPolicy()
    machine, asan, dift = _env(policy)
    dift.set_register_tag(R.R2, TAG_USER)
    machine.set_reg(R.R1, 0x1000)
    machine.set_reg(R.R2, 10 ** 9)     # wild index -> unmapped
    instr = _load_instr()
    promoted = policy.on_speculative_access(
        instr, instr.memory_operand(), 0x1000 + 10 ** 9, 1, False, machine, FakeContext()
    )
    assert promoted & TAG_SECRET_USER
    assert len(policy.reports) == 1
    report = policy.reports[0]
    assert report.channel is Channel.MDS
    assert report.attacker is AttackerClass.USER
    assert report.pc == 0x4242


def test_kasper_in_bounds_user_access_is_silent():
    policy = KasperPolicy()
    machine, asan, dift = _env(policy)
    dift.set_register_tag(R.R2, TAG_USER)
    promoted = policy.on_speculative_access(
        _load_instr(), Mem(base=R.R1, index=R.R2), 0x1100, 1, False, machine, FakeContext()
    )
    assert promoted == 0
    assert policy.reports == []


def test_kasper_secret_pointer_reports_cache():
    policy = KasperPolicy()
    machine, asan, dift = _env(policy)
    dift.set_register_tag(R.R1, TAG_SECRET_USER)
    policy.on_speculative_access(
        _load_instr(), Mem(base=R.R1, index=R.R2), 0x1100, 1, False, machine, FakeContext()
    )
    assert any(r.channel is Channel.CACHE for r in policy.reports)


def test_kasper_massage_pointer_promotes_and_reports():
    policy = KasperPolicy()
    machine, asan, dift = _env(policy)
    dift.set_register_tag(R.R1, TAG_MASSAGE)
    promoted = policy.on_speculative_access(
        _load_instr(), Mem(base=R.R1, index=R.R2), 0x1100, 1, False, machine, FakeContext()
    )
    assert promoted  # secret-from-massage
    assert any(r.attacker is AttackerClass.MASSAGE for r in policy.reports)


def test_kasper_untainted_oob_becomes_massage_when_enabled():
    policy = KasperPolicy(massage_enabled=True)
    machine, asan, dift = _env(policy)
    promoted = policy.on_speculative_access(
        _load_instr(), Mem(base=R.R1, index=R.R2), 0xDEAD_BEEF_0000, 1, False,
        machine, FakeContext()
    )
    assert promoted == TAG_MASSAGE
    assert policy.reports == []   # massaging itself is not yet a gadget


def test_kasper_massage_disabled_for_table3():
    policy = KasperPolicy(massage_enabled=False)
    machine, asan, dift = _env(policy)
    promoted = policy.on_speculative_access(
        _load_instr(), Mem(base=R.R1, index=R.R2), 0xDEAD_BEEF_0000, 1, False,
        machine, FakeContext()
    )
    assert promoted == 0


def test_kasper_secret_branch_reports_port():
    policy = KasperPolicy()
    machine, asan, dift = _env(policy)
    dift.flags_tag = TAG_SECRET_USER
    instr = ins.jcc(ins.ConditionCode.EQ, "x")
    instr.address = 0x99
    policy.on_speculative_branch(instr, machine, FakeContext())
    assert policy.reports[0].channel is Channel.PORT


def test_specfuzz_reports_every_oob_without_attribution():
    policy = SpecFuzzPolicy()
    machine, asan, dift = _env(policy)
    policy.on_speculative_access(
        _load_instr(), Mem(base=R.R1, index=R.R2), 0xDEAD_BEEF_0000, 1, False,
        machine, FakeContext()
    )
    assert len(policy.reports) == 1
    assert policy.reports[0].attacker is AttackerClass.UNKNOWN


def test_spectaint_assumes_user_access_loads_secret():
    policy = SpecTaintPolicy()
    machine, asan, dift = _env(policy)
    dift.set_register_tag(R.R2, TAG_USER)
    promoted = policy.on_speculative_access(
        _load_instr(), Mem(base=R.R1, index=R.R2), 0x1100, 1, False, machine, FakeContext()
    )
    assert promoted & TAG_SECRET_USER   # even though the access is in bounds


def test_drain_reports_clears():
    policy = SpecFuzzPolicy()
    machine, asan, dift = _env(policy)
    policy.on_speculative_access(
        _load_instr(), Mem(base=R.R1, index=R.R2), 0xDEAD_BEEF_0000, 1, False,
        machine, FakeContext()
    )
    drained = policy.drain_reports()
    assert len(drained) == 1
    assert policy.reports == []


# -- report collection -------------------------------------------------------

def _report(pc=1, channel=Channel.MDS, attacker=AttackerClass.USER):
    return GadgetReport(tool="t", channel=channel, attacker=attacker, pc=pc,
                        branch_addresses=(0x10,), depth=1)


def test_report_collection_dedup_by_site():
    collection = ReportCollection()
    assert collection.add(_report(pc=1))
    assert not collection.add(_report(pc=1))
    assert collection.add(_report(pc=2))
    assert collection.add(_report(pc=1, channel=Channel.CACHE))
    assert len(collection) == 3
    assert collection.total_raw == 4


def test_report_collection_category_counts():
    collection = ReportCollection()
    collection.extend([
        _report(pc=1),
        _report(pc=2, channel=Channel.CACHE),
        _report(pc=3, attacker=AttackerClass.MASSAGE, channel=Channel.PORT),
    ])
    categories = collection.count_by_category()
    assert categories["User-MDS"] == 1
    assert categories["User-Cache"] == 1
    assert categories["Massage-Port"] == 1
    assert collection.count(channel=Channel.CACHE) == 1
    assert collection.count(attacker=AttackerClass.USER) == 2
