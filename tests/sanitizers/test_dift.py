"""Tests for binary DIFT tag propagation."""

from repro.isa import instructions as ins
from repro.isa.instructions import ConditionCode, Opcode
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register
from repro.loader.layout import DEFAULT_LAYOUT
from repro.runtime.machine import MachineState
from repro.sanitizers.dift import (
    BinaryDift,
    TAG_MASSAGE,
    TAG_SECRET_USER,
    TAG_USER,
)

R = Register


def _setup():
    machine = MachineState()
    machine.memory.map_region(0x1000, 0x10000)
    dift = BinaryDift(machine.memory, DEFAULT_LAYOUT)
    return machine, dift


def test_memory_tagging_round_trip():
    machine, dift = _setup()
    dift.set_mem_tag(0x1000, 4, TAG_USER)
    assert dift.get_mem_tag(0x1000, 4) == TAG_USER
    assert dift.get_mem_tag(0x1004, 4) == 0
    dift.clear_mem_tags(0x1000, 4)
    assert dift.get_mem_tag(0x1000, 8) == 0


def test_mark_user_input_respects_sources_enabled():
    machine, dift = _setup()
    dift.sources_enabled = False
    dift.mark_user_input(0x1000, 8)
    assert dift.get_mem_tag(0x1000, 8) == 0
    dift.sources_enabled = True
    dift.mark_user_input(0x1000, 8)
    assert dift.get_mem_tag(0x1000, 8) == TAG_USER


def test_copy_mem_tags():
    machine, dift = _setup()
    dift.set_mem_tag(0x1000, 4, TAG_USER)
    dift.copy_mem_tags(0x2000, 0x1000, 8)
    assert dift.get_mem_tag(0x2000, 4) == TAG_USER
    assert dift.get_mem_tag(0x2004, 4) == 0


def test_load_propagates_memory_tag_to_register():
    machine, dift = _setup()
    dift.set_mem_tag(0x1100, 8, TAG_USER)
    machine.set_reg(R.R1, 0x1100)
    instr = ins.load(Reg(R.R2), Mem(base=R.R1))
    dift.propagate(instr, machine)
    assert dift.get_register_tag(R.R2) == TAG_USER


def test_store_propagates_register_tag_to_memory():
    machine, dift = _setup()
    dift.set_register_tag(R.R3, TAG_MASSAGE)
    machine.set_reg(R.R1, 0x1200)
    instr = ins.store(Mem(base=R.R1), Reg(R.R3), size=4)
    dift.propagate(instr, machine)
    assert dift.get_mem_tag(0x1200, 4) == TAG_MASSAGE


def test_alu_unions_tags_and_taints_flags():
    machine, dift = _setup()
    dift.set_register_tag(R.R1, TAG_USER)
    dift.set_register_tag(R.R2, TAG_MASSAGE)
    instr = ins.alu(Opcode.ADD, Reg(R.R1), Reg(R.R2))
    dift.propagate(instr, machine)
    assert dift.get_register_tag(R.R1) == TAG_USER | TAG_MASSAGE
    assert dift.flags_tag == TAG_USER | TAG_MASSAGE


def test_mov_immediate_clears_tag():
    machine, dift = _setup()
    dift.set_register_tag(R.R1, TAG_USER)
    dift.propagate(ins.mov(Reg(R.R1), Imm(0)), machine)
    assert dift.get_register_tag(R.R1) == 0


def test_xor_self_clears_tag():
    machine, dift = _setup()
    dift.set_register_tag(R.R1, TAG_USER | TAG_SECRET_USER)
    dift.propagate(ins.alu(Opcode.XOR, Reg(R.R1), Reg(R.R1)), machine)
    assert dift.get_register_tag(R.R1) == 0


def test_cmp_taints_flags_only():
    machine, dift = _setup()
    dift.set_register_tag(R.R5, TAG_SECRET_USER)
    dift.propagate(ins.cmp(Reg(R.R5), Imm(3)), machine)
    assert dift.flags_tag == TAG_SECRET_USER
    assert dift.get_register_tag(R.R5) == TAG_SECRET_USER


def test_lea_propagates_address_register_tags():
    machine, dift = _setup()
    dift.set_register_tag(R.R1, TAG_USER)
    instr = ins.lea(Reg(R.R4), Mem(base=R.R1, index=R.R2, scale=8))
    dift.propagate(instr, machine)
    assert dift.get_register_tag(R.R4) == TAG_USER


def test_push_pop_round_trip_tags():
    machine, dift = _setup()
    machine.memory.map_region(machine.layout.stack_bottom(),
                              machine.layout.stack_size + 256)
    machine.sp = machine.layout.stack_top
    dift.set_register_tag(R.R1, TAG_USER)
    dift.propagate(ins.push(Reg(R.R1)), machine)
    machine.push(123)
    dift.propagate(ins.pop(Reg(R.R7)), machine)
    assert dift.get_register_tag(R.R7) == TAG_USER


def test_address_tag_helper():
    machine, dift = _setup()
    dift.set_register_tag(R.R1, TAG_USER)
    mem = Mem(base=R.R2, index=R.R1, scale=1)
    assert dift.address_tag(mem, machine) == TAG_USER


def test_register_tag_snapshot_restore():
    machine, dift = _setup()
    dift.set_register_tag(R.R1, TAG_USER)
    snapshot = dift.snapshot_register_tags()
    dift.set_register_tag(R.R1, 0)
    dift.restore_register_tags(snapshot)
    assert dift.get_register_tag(R.R1) == TAG_USER


def test_taint_log_written_during_simulation():
    machine, dift = _setup()

    class FakeController:
        def __init__(self):
            self.in_simulation = True
            self.log = []

        def log_taint_write(self, addr, old):
            self.log.append((addr, old))

    controller = FakeController()
    dift.controller = controller
    dift.set_mem_tag(0x1000, 2, TAG_USER)
    assert len(controller.log) == 2
