"""Tests for gadget-report dedup, merge and serialization semantics."""

import pytest

from repro.sanitizers.reports import (
    AttackerClass,
    Channel,
    GadgetReport,
    ReportCollection,
)


def make_report(pc=0x100, channel=Channel.CACHE, attacker=AttackerClass.USER,
                tool="teapot", depth=1, description="", variant="pht"):
    return GadgetReport(
        tool=tool, channel=channel, attacker=attacker, pc=pc,
        branch_addresses=(0x40, 0x44), depth=depth, description=description,
        variant=variant,
    )


# -- dedup -----------------------------------------------------------------

def test_variant_is_part_of_the_site():
    """A PHT and an STL gadget at the same pc are different findings."""
    pht = make_report(pc=0x100)
    stl = make_report(pc=0x100, variant="stl")
    assert pht.site != stl.site

    collection = ReportCollection()
    assert collection.add(pht)
    assert collection.add(stl)           # not silently merged
    assert not collection.add(make_report(pc=0x100, variant="stl"))
    assert len(collection) == 2
    assert collection.count_by_variant() == {"pht": 1, "stl": 1}


def test_variant_survives_serialization_round_trip():
    report = make_report(variant="btb")
    rebuilt = GadgetReport.from_dict(report.to_dict())
    assert rebuilt == report
    assert rebuilt.variant == "btb"


def test_from_dict_defaults_missing_variant_to_pht():
    """Pre-variant records (old checkpoints, saved report files) load as
    conditional-branch findings."""
    record = make_report().to_dict()
    del record["variant"]
    rebuilt = GadgetReport.from_dict(record)
    assert rebuilt.variant == "pht"
    assert rebuilt == make_report()


def test_collection_dedups_by_site():
    collection = ReportCollection()
    assert collection.add(make_report())
    # Same site, different metadata: still a duplicate.
    assert not collection.add(make_report(depth=3, description="again"))
    assert len(collection) == 1
    assert collection.total_raw == 2


def test_distinct_sites_are_kept_separate():
    collection = ReportCollection()
    collection.add(make_report(pc=0x100))
    collection.add(make_report(pc=0x104))
    collection.add(make_report(pc=0x100, channel=Channel.MDS))
    collection.add(make_report(pc=0x100, attacker=AttackerClass.MASSAGE))
    assert len(collection) == 4


# -- merge ------------------------------------------------------------------

def test_merge_dedups_across_collections():
    left = ReportCollection()
    left.extend([make_report(pc=0x100), make_report(pc=0x104)])
    right = ReportCollection()
    right.extend([make_report(pc=0x104), make_report(pc=0x108)])

    new = left.merge(right)
    assert new == 1
    assert len(left) == 3
    # Raw totals sum so cross-worker dedup ratios stay meaningful.
    assert left.total_raw == 4


def test_merge_keeps_first_seen_report():
    left = ReportCollection()
    left.add(make_report(depth=1))
    right = ReportCollection()
    right.add(make_report(depth=9))
    left.merge(right)
    assert left.reports()[0].depth == 1


# -- serialization ----------------------------------------------------------

def test_report_dict_round_trip():
    report = make_report(description="oob load")
    rebuilt = GadgetReport.from_dict(report.to_dict())
    assert rebuilt == report
    assert rebuilt.site == report.site
    assert rebuilt.category == report.category


def test_collection_to_dicts_is_sorted_and_stable():
    collection = ReportCollection()
    collection.add(make_report(pc=0x200))
    collection.add(make_report(pc=0x100))
    collection.add(make_report(pc=0x100, channel=Channel.PORT))
    sites = [
        (d["channel"], d["attacker"], d["pc"]) for d in collection.to_dicts()
    ]
    assert sites == sorted(sites)

    # Insertion order must not affect the serialized form.
    other = ReportCollection()
    other.add(make_report(pc=0x100, channel=Channel.PORT))
    other.add(make_report(pc=0x100))
    other.add(make_report(pc=0x200))
    assert other.to_dicts() == collection.to_dicts()


def test_collection_from_dicts_round_trip():
    collection = ReportCollection()
    collection.add(make_report(pc=0x100))
    collection.add(make_report(pc=0x100))  # raw duplicate
    collection.add(make_report(pc=0x104, channel=Channel.MDS))

    rebuilt = ReportCollection.from_dicts(collection.to_dicts(),
                                          total_raw=collection.total_raw)
    assert len(rebuilt) == len(collection)
    assert rebuilt.total_raw == 3
    assert rebuilt.to_dicts() == collection.to_dicts()
    assert rebuilt.count_by_category() == collection.count_by_category()
