"""Tests for the binary AddressSanitizer."""

from hypothesis import given, settings, strategies as st

from repro.loader.layout import DEFAULT_LAYOUT
from repro.runtime.machine import Memory
from repro.sanitizers.asan import GRANULE, BinaryAsan


def _asan():
    memory = Memory()
    memory.map_region(0x1000, 0x10000)
    return BinaryAsan(memory, DEFAULT_LAYOUT)


def test_unpoisoned_memory_passes():
    asan = _asan()
    assert not asan.is_poisoned(0x1000, 64)
    assert asan.check_access(0x1000, 8)


def test_poison_unpoison_round_trip():
    asan = _asan()
    asan.poison_region(0x2000, 64)
    assert asan.is_poisoned(0x2000, 1)
    assert asan.is_poisoned(0x2000 + 63, 1)
    asan.unpoison_region(0x2000, 64)
    assert not asan.is_poisoned(0x2000, 64)


def test_partial_granule_poisoning():
    asan = _asan()
    # Unpoison 10 bytes: the second granule keeps only its first 2 bytes valid.
    asan.poison_region(0x3000, 32)
    asan.unpoison_region(0x3000, 10)
    assert not asan.is_poisoned(0x3000, 10)
    assert asan.is_poisoned(0x3000 + 10, 1)


def test_partial_granule_poison_start():
    asan = _asan()
    # Poisoning starting mid-granule keeps the prefix addressable.
    asan.poison_region(0x4004, 12)
    assert not asan.is_poisoned(0x4000, 4)
    assert asan.is_poisoned(0x4004, 1)
    assert asan.is_poisoned(0x4008, 8)


def test_unmapped_and_non_user_addresses_fail_check():
    asan = _asan()
    assert not asan.check_access(0x900000, 8)          # unmapped LowMem
    assert not asan.check_access(0x2000_0000_0000, 8)  # tag-shadow region
    assert asan.violations == 2


def test_return_slot_protection():
    asan = _asan()
    asan.poison_return_slot(0x1200)
    assert asan.is_poisoned(0x1200, 8)
    asan.unpoison_return_slot(0x1200)
    assert not asan.is_poisoned(0x1200, 8)


def test_return_slot_protection_disabled():
    memory = Memory()
    memory.map_region(0x1000, 0x1000)
    asan = BinaryAsan(memory, DEFAULT_LAYOUT, protect_stack=False)
    asan.poison_return_slot(0x1200)
    assert not asan.is_poisoned(0x1200, 8)


def test_zero_sized_operations_are_noops():
    asan = _asan()
    asan.poison_region(0x1000, 0)
    asan.unpoison_region(0x1000, 0)
    assert not asan.is_poisoned(0x1000, 0)


@given(st.integers(0, 2000), st.integers(1, 64), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_poisoned_range_is_detected_property(offset, size, access_size):
    """Property: any access overlapping a poisoned range fails the check."""
    asan = _asan()
    start = 0x8000 + offset
    asan.poison_region(start, size)
    # An access entirely inside the poisoned range must be flagged.
    assert asan.is_poisoned(start, min(access_size, size))
    # An 8-aligned access entirely before the poisoned granule must pass.
    before_granule = (start - GRANULE * 2) - ((start - GRANULE * 2) % GRANULE)
    assert not asan.is_poisoned(before_granule, 1)
