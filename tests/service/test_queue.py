"""Durable queue semantics: leases, visibility, idempotent completion."""

from __future__ import annotations

import json
import os
import time

from repro.campaign.spec import JobSpec
from repro.service.queue import JobQueue, job_fingerprint


def _job(**overrides):
    params = dict(target="gadgets", tool="teapot", iterations=5, seed=1)
    params.update(overrides)
    return JobSpec(**params)


def _queue(tmp_path, **kwargs):
    return JobQueue(str(tmp_path / "queue"), **kwargs)


def test_submit_is_idempotent(tmp_path):
    queue = _queue(tmp_path)
    first = queue.submit("c1", _job(), seeds=[b"ab", b"cd"])
    second = queue.submit("c1", _job(), seeds=[b"ab", b"cd"])
    assert first == second == job_fingerprint("c1", _job())
    assert queue.stats()["submitted"] == 1
    # A different campaign or job is a different record.
    assert queue.submit("c2", _job()) != first
    assert queue.submit("c1", _job(shard=1, shard_count=2)) != first
    assert queue.stats()["submitted"] == 3


def test_claim_execute_complete_round_trip(tmp_path):
    queue = _queue(tmp_path)
    queue.submit("c1", _job(), seeds=[b"\x01\x02"])
    lease = queue.claim("w0", visibility_timeout=30)
    assert lease is not None
    assert lease.attempt == 1
    assert lease.job_spec() == _job()
    assert lease.seeds() == [b"\x01\x02"]
    assert lease.campaign_id == "c1"
    # While leased, nobody else can claim it.
    assert queue.claim("w1", visibility_timeout=30) is None
    assert queue.complete(lease.fingerprint, lease.token,
                          {"job_id": "x", "executions": 5}) is True
    record = queue.result(lease.fingerprint)
    assert record["status"] == "completed"
    assert record["result"]["executions"] == 5
    assert queue.stats()["pending"] == 0
    # Done jobs are never re-offered.
    assert queue.claim("w1", visibility_timeout=30) is None


def test_completion_is_exactly_once(tmp_path):
    queue = _queue(tmp_path)
    queue.submit("c1", _job())
    lease = queue.claim("w0", visibility_timeout=30)
    assert queue.complete(lease.fingerprint, lease.token,
                          {"executions": 5}) is True
    # A late duplicate (stale worker waking up) is discarded.
    assert queue.complete(lease.fingerprint, lease.token,
                          {"executions": 99}) is False
    assert queue.result(lease.fingerprint)["result"]["executions"] == 5


def test_expired_lease_is_taken_over(tmp_path):
    queue = _queue(tmp_path)
    queue.submit("c1", _job())
    dead = queue.claim("w0", visibility_timeout=0.05)
    assert dead is not None
    time.sleep(0.1)
    takeover = queue.claim("w1", visibility_timeout=30)
    assert takeover is not None
    assert takeover.fingerprint == dead.fingerprint
    assert takeover.attempt == 2
    # The dead worker's credentials are void.
    assert queue.renew(dead.fingerprint, dead.token) is False
    # The new holder completes; the old result would have been identical
    # anyway (jobs are deterministic), but only one record lands.
    assert queue.complete(takeover.fingerprint, takeover.token,
                          {"executions": 5}) is True
    assert queue.complete(dead.fingerprint, dead.token,
                          {"executions": 5}) is False


def test_renew_keeps_a_lease_alive(tmp_path):
    queue = _queue(tmp_path)
    queue.submit("c1", _job())
    lease = queue.claim("w0", visibility_timeout=0.2)
    for _ in range(3):
        time.sleep(0.1)
        assert queue.renew(lease.fingerprint, lease.token,
                           visibility_timeout=0.2) is True
        # Renewed in time: nobody can steal it.
        assert queue.claim("w1", visibility_timeout=30) is None


def test_fail_requeues_with_cooldown(tmp_path):
    queue = _queue(tmp_path)
    queue.submit("c1", _job())
    lease = queue.claim("w0", visibility_timeout=30)
    assert queue.fail(lease.fingerprint, lease.token, "boom",
                      backoff_s=0.05) is True
    # Cooling down: not offered yet.
    assert queue.claim("w1", visibility_timeout=30) is None
    time.sleep(0.1)
    retry = queue.claim("w1", visibility_timeout=30)
    assert retry is not None
    assert retry.attempt == 2


def test_lease_attempts_are_bounded(tmp_path):
    queue = _queue(tmp_path, max_lease_attempts=2)
    queue.submit("c1", _job())
    for _ in range(2):
        lease = queue.claim("w0", visibility_timeout=0.01)
        assert lease is not None
        time.sleep(0.05)  # let it expire (simulated crash)
    # Third claim attempt exceeds the budget: terminal failure record.
    assert queue.claim("w0", visibility_timeout=0.01) is None
    record = queue.result(job_fingerprint("c1", _job()))
    assert record["status"] == "failed"
    assert "lease expired" in record["result"]["error"]
    assert record["result"]["job_id"] == _job().job_id


def test_cancel_marks_pending_jobs(tmp_path):
    queue = _queue(tmp_path)
    fp_done = queue.submit("c1", _job())
    queue.submit("c1", _job(shard=1, shard_count=2))
    queue.submit("other", _job(seed=9))
    lease = queue.claim("w0", visibility_timeout=30)
    queue.complete(lease.fingerprint, lease.token, {"executions": 1})
    assert queue.cancel("c1") == 1  # only the still-pending c1 job
    cancelled = queue.submit("c1", _job(shard=1, shard_count=2))
    assert queue.result(cancelled)["status"] == "cancelled"
    assert queue.result(fp_done)["status"] == "completed"
    assert queue.result(queue.submit("other", _job(seed=9))) is None


def test_queue_state_is_plain_json_on_disk(tmp_path):
    queue = _queue(tmp_path)
    fingerprint = queue.submit("c1", _job(), seeds=[b"hi"])
    path = os.path.join(queue.jobs_dir, fingerprint + ".json")
    with open(path) as handle:
        record = json.load(handle)
    assert record["kind"] == "repro.service/job"
    assert record["campaign_id"] == "c1"
    assert record["seeds"] == [b"hi".hex()]
    assert JobSpec.from_dict(record["job"]) == _job()


def test_queue_survives_a_restart(tmp_path):
    queue = _queue(tmp_path)
    queue.submit("c1", _job(), seeds=[b"x"])
    # A fresh instance over the same root sees the same work.
    reopened = _queue(tmp_path)
    lease = reopened.claim("w0", visibility_timeout=30)
    assert lease is not None
    assert lease.seeds() == [b"x"]
