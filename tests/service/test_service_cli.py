"""The serve/submit/status command surface (client side over a live API)."""

from __future__ import annotations

import json

import pytest

from repro.service.cli import main
from repro.service.core import FuzzService
from repro.service.httpapi import ServiceApiServer


@pytest.fixture()
def server(tmp_path):
    service = FuzzService(str(tmp_path / "svc"), workers=2,
                          visibility_timeout=30.0).start()
    api = ServiceApiServer(service).start()
    try:
        yield api
    finally:
        api.stop()
        service.stop()


def test_submit_wait_and_status_round_trip(server, capsys):
    code = main(["submit", "--url", server.url, "--targets", "gadgets",
                 "--iterations", "20", "--rounds", "1", "--seed", "13",
                 "--wait", "--poll", "0.05", "--json"])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["status"] == "completed"
    campaign_id = record["campaign_id"]

    assert main(["status", "--url", server.url]) == 0
    out = capsys.readouterr().out
    assert campaign_id in out and "completed" in out

    assert main(["status", "--url", server.url, campaign_id,
                 "--reports"]) == 0
    out = capsys.readouterr().out
    assert "unique site(s)" in out


def test_submit_from_spec_file(server, tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "targets": ["gadgets"], "tools": ["teapot"],
        "iterations": 10, "rounds": 1, "seed": 13,
    }))
    code = main(["submit", "--url", server.url, "--spec", str(spec_path),
                 "--wait", "--poll", "0.05"])
    assert code == 0
    assert "completed" in capsys.readouterr().out


def test_unreachable_service_is_a_clean_error(capsys):
    code = main(["status", "--url", "http://127.0.0.1:9"])
    assert code == 2
    assert "cannot reach" in capsys.readouterr().err


def test_invalid_spec_is_a_clean_error(server, capsys):
    code = main(["submit", "--url", server.url, "--targets", "doesnotexist",
                 "--iterations", "5"])
    assert code == 2
    err = capsys.readouterr().err
    assert "HTTP 400" in err


def test_repro_cli_routes_service_commands(capsys):
    from repro.api.cli import main as repro_main

    with pytest.raises(SystemExit):
        repro_main(["serve", "--help"])
    out = capsys.readouterr().out
    assert "usage: repro serve" in out
