"""The service observatory end-to-end: endpoints, traces, bit-identity.

One small campaign driven through the live HTTP API must leave behind
(a) a ``/metrics`` exposition carrying the ``service.queue.*`` gauges
and ``service.job.*`` latency histograms, (b) correct health/readiness
endpoints, (c) a ``trace.jsonl`` in the campaign's run directory from
which the full cross-process job lifecycle — submit, claim, execute,
complete, ingest — reconstructs with queue-wait attribution, and (d)
with observability disabled, a summary bit-identical to the observed
run's (observation never feeds back into execution).
"""

from __future__ import annotations

import io
import json
import os
import urllib.error
import urllib.request

import pytest

from repro.campaign.spec import CampaignSpec
from repro.service.core import FuzzService
from repro.service.httpapi import MAX_BODY_BYTES, ServiceApiServer
from repro.telemetry import aggregate_trace, read_trace
from repro.telemetry.logging import StructuredLogger
from repro.telemetry.tracing import derive_span_id

SPEC = dict(targets=("gadgets",), tools=("teapot",), iterations=30,
            rounds=2, shards=2, seed=7, spec_variants=("pht",))


def _get(url, expect=200):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        assert error.code == expect, f"{url}: {error.code}"
        return error.code, error.read().decode("utf-8")


def _post_raw(url, data, headers=None, expect=200):
    request = urllib.request.Request(
        url, data=data, headers=headers or {"Content-Type":
                                            "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        assert error.code == expect, f"{url}: {error.code}"
        return error.code, error.read().decode("utf-8")


@pytest.fixture()
def observed(tmp_path):
    log_buffer = io.StringIO()
    service = FuzzService(
        str(tmp_path / "svc"), workers=2, visibility_timeout=30.0,
        log=StructuredLogger(log_buffer, level="debug")).start()
    api = ServiceApiServer(service).start()
    try:
        yield service, api, log_buffer
    finally:
        api.stop()
        service.stop()


def test_observatory_end_to_end(observed):
    service, api, log_buffer = observed
    campaign_id = service.submit(CampaignSpec(**SPEC))
    summary = service.wait(campaign_id, timeout=120)
    assert summary is not None

    # -- health & readiness --------------------------------------------------
    code, body = _get(api.url + "/healthz")
    health = json.loads(body)
    assert code == 200 and health["status"] == "ok" and health["observe"]
    code, body = _get(api.url + "/readyz")
    assert code == 200 and json.loads(body)["ready"] is True

    # -- fleet ---------------------------------------------------------------
    code, body = _get(api.url + "/v1/fleet")
    fleet = json.loads(body)
    assert fleet["counts"]["workers"] == 2
    names = {row["name"] for row in fleet["workers"]}
    assert names == {"w0", "w1"}
    for row in fleet["workers"]:
        assert row["alive"] is True
        assert 0.0 <= row["utilization"] <= 1.0
        assert row["heartbeat_age_s"] >= 0.0

    # -- /metrics ------------------------------------------------------------
    code, exposition = _get(api.url + "/metrics")
    assert code == 200
    jobs_total = json.loads(_get(
        api.url + f"/v1/campaigns/{campaign_id}")[1])["jobs_total"]
    assert f"repro_service_queue_done {jobs_total}" in exposition
    assert "repro_service_queue_pending 0" in exposition
    assert (f"repro_service_queue_submitted_total {jobs_total}"
            in exposition)
    assert f"repro_service_job_exec_s_count {jobs_total}" in exposition
    assert f"repro_service_job_e2e_s_count {jobs_total}" in exposition
    assert 'repro_service_worker_utilization{worker="w0"}' in exposition

    # -- the distributed trace ----------------------------------------------
    status = service.status(campaign_id)
    trace_id = status["trace_id"]
    trace_path = os.path.join(service.registry.root, status["run_id"],
                              "trace.jsonl")
    records = read_trace(trace_path)
    lifecycles = [r for r in records if r.get("type") == "job_lifecycle"]
    assert len(lifecycles) == jobs_total
    for event in lifecycles:
        assert event["trace_id"] == trace_id
        # The complete journey, in causal order, with queue-wait broken
        # out from execution and ingest lag.
        assert (event["submitted_ts"] <= event["claimed_ts"]
                <= event["completed_ts"] <= event["ingested_ts"])
        assert event["queue_wait_s"] >= 0.0
        assert event["exec_s"] > 0.0
        assert event["ingest_lag_s"] >= 0.0

    aggregate = aggregate_trace(records)
    for phase in ("job/queue_wait", "job/execute", "job/ingest_lag"):
        stats = aggregate["span_paths"][phase]
        assert stats["count"] == jobs_total
        assert stats["p50_s"] <= stats["p90_s"] <= stats["max_s"]
    # Span ids are the deterministic derivation — and therefore unique
    # per (job, phase, attempt).
    execute_spans = [r for r in records if r.get("type") == "span_end"
                     and r.get("path") == "job/execute"]
    ids = [span["span_id"] for span in execute_spans]
    assert len(set(ids)) == len(ids) == jobs_total
    for span in execute_spans:
        assert span["span_id"] == derive_span_id(
            trace_id, span["fingerprint"], "execute", span["attempt"])

    # -- structured logs correlate with the trace ---------------------------
    logged = [json.loads(line)
              for line in log_buffer.getvalue().splitlines()]
    events = {record["event"] for record in logged}
    assert {"campaign_submitted", "campaign_started", "job_submitted",
            "job_claimed", "job_completed",
            "campaign_completed"} <= events
    correlated = [r for r in logged if r.get("trace_id") == trace_id]
    assert len(correlated) >= jobs_total  # one grep follows the campaign


def test_request_body_hardening(observed):
    _, api, _ = observed
    submit = api.url + "/v1/campaigns"
    # Oversized body → 413 with a JSON envelope, not a raw 500.
    code, body = _post_raw(submit, b"x" * (MAX_BODY_BYTES + 1), expect=413)
    assert code == 413 and "error" in json.loads(body)
    # Junk Content-Length → 400.
    code, body = _post_raw(submit, b"{}",
                           headers={"Content-Type": "application/json",
                                    "Content-Length": "banana"},
                           expect=400)
    assert code == 400 and "Content-Length" in json.loads(body)["error"]
    # Non-object JSON → 400 naming the offending type.
    code, body = _post_raw(submit, b"[1, 2, 3]", expect=400)
    assert code == 400 and "list" in json.loads(body)["error"]
    # Unparseable bytes → 400.
    code, body = _post_raw(submit, b"{nope", expect=400)
    assert code == 400 and "not JSON" in json.loads(body)["error"]
    # Empty body → 400.
    code, body = _post_raw(submit, b"", expect=400)
    assert code == 400


def test_disabled_observability_is_bit_identical(tmp_path):
    observed = FuzzService(str(tmp_path / "on"), workers=2,
                           observe=True).start()
    disabled = FuzzService(str(tmp_path / "off"), workers=2,
                           observe=False).start()
    try:
        spec = CampaignSpec(**SPEC)
        summary_on = observed.wait(observed.submit(spec), timeout=120)
        summary_off = disabled.wait(disabled.submit(spec), timeout=120)
        assert summary_on.to_dict() == summary_off.to_dict()
        # The unobserved queue writes v1-shaped records: no trace, no meta.
        jobs_dir = os.path.join(str(tmp_path / "off"), "queue", "jobs")
        for name in os.listdir(jobs_dir):
            with open(os.path.join(jobs_dir, name)) as handle:
                assert "trace" not in json.load(handle)
        done_dir = os.path.join(str(tmp_path / "off"), "queue", "done")
        for name in os.listdir(done_dir):
            with open(os.path.join(done_dir, name)) as handle:
                assert "meta" not in json.load(handle)
        # And /metrics over a disabled service is an empty exposition,
        # not an error (scrape targets stay stable).
        assert disabled.metrics_view().merged_counts() == {}
    finally:
        observed.stop()
        disabled.stop()


def test_readyz_is_503_before_start(tmp_path):
    service = FuzzService(str(tmp_path / "svc"), workers=1)
    api = ServiceApiServer(service).start()
    try:
        code, body = _get(api.url + "/readyz", expect=503)
        assert code == 503 and json.loads(body)["ready"] is False
    finally:
        api.stop()
        service.stop()
