"""The ``service`` scheduler plugin: bit-identical to the batch schedulers."""

from __future__ import annotations

import pytest

from repro.campaign.scheduler import CampaignScheduler, run_campaign
from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import CampaignState
from repro.campaign.worker import WorkerResult, run_job
from repro.plugins import scheduler_names
from repro.service.ingest import StreamingIngestor


def small_spec(**overrides):
    params = dict(targets=("gadgets",), tools=("teapot",),
                  iterations=30, rounds=2, shards=2, seed=13, workers=2)
    params.update(overrides)
    return CampaignSpec(**params)


@pytest.fixture(scope="module")
def serial_summary():
    return run_campaign(small_spec(), scheduler="serial")


def test_service_is_a_registered_scheduler():
    assert "service" in scheduler_names()


def test_service_scheduler_matches_serial(serial_summary):
    summary = run_campaign(small_spec(), scheduler="service")
    assert summary.to_dict() == serial_summary.to_dict()


def test_service_scheduler_multi_variant_matches_serial():
    spec = small_spec(spec_variants=("pht", "btb"), iterations=40)
    serial = run_campaign(spec, scheduler="serial")
    service = run_campaign(spec, scheduler="service")
    assert service.to_dict() == serial.to_dict()
    assert service.row("gadgets", "teapot").by_variant == \
        serial.row("gadgets", "teapot").by_variant


def test_service_resumes_a_batch_checkpoint(tmp_path, serial_summary):
    """Cross-scheduler resume: round 1 batch, round 2 via the service."""
    spec = small_spec()
    ckpt = str(tmp_path / "campaign.json")
    scheduler = CampaignScheduler(spec, checkpoint_path=ckpt)

    def abort_on_round_2(message):
        if message.startswith("round 2"):
            raise KeyboardInterrupt
    scheduler._progress = abort_on_round_2
    with pytest.raises(KeyboardInterrupt):
        scheduler.run()
    assert CampaignState.load(ckpt).completed_rounds == 1

    resumed = run_campaign(spec, checkpoint_path=ckpt, resume=True,
                           scheduler="service")
    assert resumed.to_dict() == serial_summary.to_dict()


def test_ingestor_buffers_out_of_order_results():
    """Arrival order never changes the merged state — only job order does."""
    spec = small_spec(rounds=1)
    jobs = spec.jobs_for_round(0)
    assert len(jobs) == 2
    results = [run_job(job) for job in jobs]

    def ingest(arrival_order):
        state = CampaignState(fingerprint=spec.fingerprint(),
                              spec_dict=spec.to_dict())
        ingestor = StreamingIngestor(state)
        ingestor.begin_round(jobs)
        merged_per_offer = [ingestor.offer(results[i])
                            for i in arrival_order]
        ingestor.finish_round()
        return state, merged_per_offer

    in_order, merged_a = ingest([0, 1])
    reversed_arrival, merged_b = ingest([1, 0])
    assert merged_a == [1, 1]   # each arrival merged immediately
    assert merged_b == [0, 2]   # held back, then the whole prefix at once
    assert in_order.to_dict() == reversed_arrival.to_dict()
    assert in_order.completed_rounds == 1


def test_ingestor_enforces_round_protocol():
    spec = small_spec(rounds=1)
    jobs = spec.jobs_for_round(0)
    state = CampaignState(fingerprint=spec.fingerprint(),
                          spec_dict=spec.to_dict())
    ingestor = StreamingIngestor(state)
    ingestor.begin_round(jobs)
    with pytest.raises(RuntimeError, match="unmerged"):
        ingestor.begin_round(jobs)
    with pytest.raises(RuntimeError, match="round incomplete"):
        ingestor.finish_round()


def test_ingestor_records_failed_jobs():
    spec = small_spec(rounds=1, shards=1)
    jobs = spec.jobs_for_round(0)
    state = CampaignState(fingerprint=spec.fingerprint(),
                          spec_dict=spec.to_dict())
    ingestor = StreamingIngestor(state)
    ingestor.begin_round(jobs)
    job = jobs[0]
    ingestor.offer(WorkerResult(
        job_id=job.job_id, target=job.target, tool=job.tool,
        variant=job.variant, shard=job.shard, round_index=job.round_index,
        error="RuntimeError: injected"))
    ingestor.finish_round()
    assert state.group_stats(job.group).failed_jobs == 1
    assert state.group_stats(job.group).executions == 0
