"""Worker fleet behavior: draining the queue, heartbeats, crash recovery."""

from __future__ import annotations

import threading
import time

from repro.campaign.spec import JobSpec
from repro.campaign.worker import WorkerResult
from repro.service.queue import JobQueue
from repro.service.worker import ServiceWorker, WorkerFleet
from repro.telemetry.export import wait_until


def _job(**overrides):
    params = dict(target="gadgets", tool="teapot", iterations=5, seed=1)
    params.update(overrides)
    return JobSpec(**params)


def _synthetic_result(lease):
    job = lease.job_spec()
    return WorkerResult(job_id=job.job_id, target=job.target, tool=job.tool,
                        variant=job.variant, shard=job.shard,
                        round_index=job.round_index, executions=job.iterations)


class _FakeWorker(ServiceWorker):
    """A worker that fabricates results instead of running the emulator."""

    def _execute(self, lease):
        return _synthetic_result(lease)


def test_fleet_drains_the_queue(tmp_path, monkeypatch):
    monkeypatch.setattr(ServiceWorker, "_execute", _FakeWorker._execute)
    queue = JobQueue(str(tmp_path / "queue"))
    fingerprints = [queue.submit("c1", _job(shard=i, shard_count=4))
                    for i in range(4)]
    fleet = WorkerFleet(queue, count=3, visibility_timeout=5.0)
    fleet.start()
    try:
        assert wait_until(lambda: queue.stats()["pending"] == 0, timeout=10)
        for fingerprint in fingerprints:
            record = queue.result(fingerprint)
            assert record["status"] == "completed"
            assert record["result"]["executions"] == 5
        counts = fleet.counts()
        assert counts["completed"] == 4
        assert counts["alive"] == 3
    finally:
        fleet.stop()
    assert fleet.counts()["alive"] == 0


def test_dead_workers_job_is_replayed_by_a_peer(tmp_path, monkeypatch):
    """A worker that goes silent loses its lease; a peer redoes the job."""
    died = threading.Event()

    def flaky_execute(self, lease):
        if self.worker_name == "w0" and not died.is_set():
            died.set()
            # Simulate a crash: stop heartbeating (drop the active lease)
            # and never produce a result for this claim.
            with self._lease_lock:
                self._active = None
            while not self.stop_event.is_set():
                time.sleep(0.01)
            raise RuntimeError("worker killed")
        return _synthetic_result(lease)

    monkeypatch.setattr(ServiceWorker, "_execute", flaky_execute)
    queue = JobQueue(str(tmp_path / "queue"))
    fingerprint = queue.submit("c1", _job())
    fleet = WorkerFleet(queue, count=2, visibility_timeout=0.2)
    fleet.start()
    try:
        assert wait_until(lambda: queue.result(fingerprint) is not None,
                          timeout=10)
        record = queue.result(fingerprint)
        assert record["status"] == "completed"
        assert record["result"]["executions"] == 5
        assert died.is_set()
    finally:
        fleet.stop()


def test_worker_level_crash_releases_the_job(tmp_path, monkeypatch):
    """An exception escaping _execute releases the lease via fail()."""
    crashes = []

    def crashing_execute(self, lease):
        if not crashes:
            crashes.append(1)
            raise MemoryError("fleet-level crash")
        return _synthetic_result(lease)

    monkeypatch.setattr(ServiceWorker, "_execute", crashing_execute)
    queue = JobQueue(str(tmp_path / "queue"))
    fingerprint = queue.submit("c1", _job())
    fleet = WorkerFleet(queue, count=1, visibility_timeout=5.0)
    fleet.start()
    try:
        assert wait_until(lambda: queue.result(fingerprint) is not None,
                          timeout=10)
        record = queue.result(fingerprint)
        assert record["status"] == "completed"
        assert crashes  # first attempt really did crash
    finally:
        fleet.stop()


def test_heartbeat_outlives_visibility_timeout(tmp_path, monkeypatch):
    """A slow-but-alive job keeps its lease across several timeouts."""
    takeovers = []

    def slow_execute(self, lease):
        if lease.attempt > 1:
            takeovers.append(lease.attempt)
        time.sleep(1.0)  # several times the 0.3s visibility timeout
        return _synthetic_result(lease)

    monkeypatch.setattr(ServiceWorker, "_execute", slow_execute)
    queue = JobQueue(str(tmp_path / "queue"))
    fingerprint = queue.submit("c1", _job())
    fleet = WorkerFleet(queue, count=2, visibility_timeout=0.3)
    fleet.start()
    try:
        assert wait_until(lambda: queue.result(fingerprint) is not None,
                          timeout=10)
        assert takeovers == []  # the heartbeat kept the lease alive
    finally:
        fleet.stop()
