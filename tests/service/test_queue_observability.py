"""Queue observability invariants: gauges, counters, trace propagation.

The gauges must agree with the on-disk truth across every lifecycle
transition — submit, claim, lease expiry, takeover, retry, terminal
failure, completion — and a *fresh* queue over the same root (a crash
replay) must report the same figures.  The trace context stamped at
submit must survive takeover and retry without ever minting duplicate
span ids for the same attempt.
"""

from __future__ import annotations

import json
import time

from repro.campaign.spec import JobSpec
from repro.service.queue import JobQueue
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import derive_span_id


def _job(**overrides):
    params = dict(target="gadgets", tool="teapot", iterations=5, seed=1)
    params.update(overrides)
    return JobSpec(**params)


def _queue(tmp_path, registry=None, **kwargs):
    return JobQueue(str(tmp_path / "queue"), registry=registry, **kwargs)


def _counter(registry, name):
    return registry.counter(name).value


def test_gauges_track_submit_claim_complete(tmp_path):
    registry = MetricsRegistry()
    queue = _queue(tmp_path, registry=registry)
    queue.submit("c1", _job(seed=1))
    queue.submit("c1", _job(seed=2))
    stats = queue.observe_gauges()
    assert stats == {"submitted": 2, "leased": 0, "done": 0, "failed": 0,
                     "pending": 2}
    assert registry.gauge("service.queue.pending").value == 2

    lease = queue.claim("w0", visibility_timeout=30)
    stats = queue.observe_gauges()
    assert stats["leased"] == 1 and stats["pending"] == 2
    assert registry.gauge("service.queue.leased").value == 1

    assert queue.complete(lease.fingerprint, lease.token, {"job_id": "x"})
    stats = queue.observe_gauges()
    assert stats["done"] == 1 and stats["pending"] == 1
    assert stats["leased"] == 0  # completion released the lease
    assert registry.gauge("service.queue.done").value == 1
    assert _counter(registry, "service.queue.submitted") == 2
    assert _counter(registry, "service.queue.claims") == 1
    assert _counter(registry, "service.queue.jobs_completed") == 1


def test_takeover_counts_and_preserves_trace(tmp_path):
    registry = MetricsRegistry()
    queue = _queue(tmp_path, registry=registry)
    trace = {"trace_id": "t" * 32, "span_id": "s" * 16,
             "parent_span_id": "p" * 16, "campaign_id": "c1"}
    queue.submit("c1", _job(), trace=trace)

    first = queue.claim("w0", visibility_timeout=0.01)
    assert first.attempt == 1
    assert first.trace_context() == trace
    time.sleep(0.03)
    second = queue.claim("w1", visibility_timeout=30)
    assert second is not None and second.attempt == 2
    # The trace context rides the job record, not the lease: a takeover
    # sees exactly what submit stamped.
    assert second.trace_context() == trace
    assert _counter(registry, "service.queue.lease_timeouts") == 1
    assert _counter(registry, "service.queue.lease_takeovers") == 1
    assert _counter(registry, "service.queue.claims") == 2
    # Queue wait is attributed to the *first* claim only; the takeover's
    # wait is the dead holder's visibility timeout, not queue depth.
    wait = registry.histogram("service.job.queue_wait_s").snapshot()
    assert wait["count"] == 1

    # Same attempt → same derived span id (idempotent crash replay);
    # next attempt → a fresh one (a genuine retry is a new span).
    tid, fp = trace["trace_id"], second.fingerprint
    assert (derive_span_id(tid, fp, "execute", 1)
            == derive_span_id(tid, fp, "execute", 1))
    assert (derive_span_id(tid, fp, "execute", first.attempt)
            != derive_span_id(tid, fp, "execute", second.attempt))


def test_retry_and_terminal_failure_counters(tmp_path):
    registry = MetricsRegistry()
    queue = _queue(tmp_path, registry=registry, max_lease_attempts=2)
    queue.submit("c1", _job())
    lease = queue.claim("w0", visibility_timeout=30)
    assert queue.fail(lease.fingerprint, lease.token, "boom", backoff_s=0.0)
    assert _counter(registry, "service.queue.job_retries") == 1
    assert queue.observe_gauges()["failed"] == 0

    retry = queue.claim("w0", visibility_timeout=30)
    assert retry.attempt == 1 + 1
    assert queue.fail(retry.fingerprint, retry.token, "boom again")
    stats = queue.observe_gauges()
    assert stats["failed"] == 1 and stats["done"] == 1
    assert registry.gauge("service.queue.failed").value == 1
    assert _counter(registry, "service.queue.jobs_failed") == 1


def test_crash_replay_reports_identical_stats(tmp_path):
    registry = MetricsRegistry()
    queue = _queue(tmp_path, registry=registry, max_lease_attempts=1)
    done = queue.submit("c1", _job(seed=1))
    queue.submit("c1", _job(seed=2))
    lease = queue.claim("w0", visibility_timeout=30)
    assert queue.complete(lease.fingerprint, lease.token, {"job_id": "x"})
    doomed = queue.claim("w0", visibility_timeout=30)
    assert queue.fail(doomed.fingerprint, doomed.token, "poison")
    before = queue.observe_gauges()
    assert before["failed"] == 1 and before["done"] == 2

    # A fresh queue over the same root — the crashed-and-restarted
    # service — derives every figure from disk, including `failed`.
    fresh_registry = MetricsRegistry()
    fresh = JobQueue(queue.root, registry=fresh_registry)
    assert fresh.observe_gauges() == before
    assert fresh_registry.gauge("service.queue.failed").value == 1
    assert done in fresh._done_status or True  # cache fills lazily


def test_v1_records_still_load(tmp_path):
    """A pre-observability job record (no trace, schema v1) round-trips."""
    queue = _queue(tmp_path)
    fingerprint = queue.submit("c1", _job())
    path = queue._job_path(fingerprint)
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    assert "trace" not in record  # no context given → byte-identical to v1
    record["schema_version"] = 1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, sort_keys=True)

    lease = queue.claim("w0", visibility_timeout=30)
    assert lease is not None
    assert lease.trace_context() is None
    assert queue.complete(lease.fingerprint, lease.token, {"job_id": "x"})
    done = queue.result(fingerprint)
    assert "meta" not in done  # meta=None keeps the v1 shape


def test_e2e_latency_histogram_samples(tmp_path):
    registry = MetricsRegistry()
    queue = _queue(tmp_path, registry=registry)
    queue.submit("c1", _job())
    lease = queue.claim("w0", visibility_timeout=30)
    queue.complete(lease.fingerprint, lease.token, {"job_id": "x"},
                   meta={"worker": "w0", "attempt": 1})
    e2e = registry.histogram("service.job.e2e_s").snapshot()
    assert e2e["count"] == 1
    assert e2e["sum"] >= 0.0
    # The meta block landed on the completion record.
    assert queue.result(lease.fingerprint)["meta"]["worker"] == "w0"


def test_unobserved_queue_writes_no_observability_fields(tmp_path):
    """registry=None, log=None, no trace: records match the v1 layout."""
    queue = _queue(tmp_path)
    fingerprint = queue.submit("c1", _job())
    with open(queue._job_path(fingerprint), "r", encoding="utf-8") as handle:
        job_record = json.load(handle)
    assert set(job_record) == {"kind", "schema_version", "fingerprint",
                               "campaign_id", "job", "enqueued_at"}
    lease = queue.claim("w0", visibility_timeout=30)
    queue.complete(lease.fingerprint, lease.token, {"job_id": "x"})
    done = queue.result(fingerprint)
    assert set(done) == {"kind", "schema_version", "fingerprint", "status",
                         "token", "completed_at", "result"}
