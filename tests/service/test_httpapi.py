"""HTTP API end-to-end: submit over the wire, drive to completion, crash."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.service.core import FuzzService
from repro.service.httpapi import ServiceApiServer
from repro.service.worker import ServiceWorker

SPEC = dict(targets=("gadgets",), tools=("teapot",), iterations=40,
            rounds=2, shards=2, seed=13, spec_variants=("pht", "btb"))


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def _post(url, payload=None):
    data = json.dumps(payload or {}).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _await_terminal(base, campaign_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = _get(f"{base}/v1/campaigns/{campaign_id}")
        if record["status"] in ("completed", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"campaign {campaign_id} never finished")


@pytest.fixture()
def server(tmp_path):
    service = FuzzService(str(tmp_path / "svc"), workers=2,
                          visibility_timeout=30.0).start()
    api = ServiceApiServer(service).start()
    try:
        yield api
    finally:
        api.stop()
        service.stop()


@pytest.fixture(scope="module")
def serial_summary():
    return run_campaign(CampaignSpec(**SPEC), scheduler="serial")


def test_http_submit_to_completion_matches_serial(server, serial_summary):
    spec_record = CampaignSpec(**SPEC).to_dict()
    code, accepted = _post(server.url + "/v1/campaigns",
                           {"spec": spec_record})
    assert code == 202
    campaign_id = accepted["campaign_id"]

    record = _await_terminal(server.url, campaign_id)
    assert record["status"] == "completed"
    assert record["rounds_completed"] == SPEC["rounds"]
    assert record["jobs_done"] == record["jobs_total"] > 0
    # The acceptance bar: deduped counts equal the serial scheduler's.
    assert record["summary"] == serial_summary.to_dict()

    reports = _get(f"{server.url}/v1/campaigns/{campaign_id}/reports")
    row = serial_summary.row("gadgets", "teapot")
    assert len(reports["groups"]["gadgets/teapot/vanilla"]) == \
        row.unique_gadgets

    listing = _get(server.url + "/v1/campaigns")
    assert [c["campaign_id"] for c in listing["campaigns"]] == [campaign_id]
    queue = _get(server.url + "/v1/queue")
    assert queue["pending"] == 0
    assert queue["fleet"]["workers"] == 2


def test_worker_killed_mid_round_still_completes(tmp_path, monkeypatch,
                                                 serial_summary):
    """Crash-safety: a worker dies mid-job, the lease expires, a peer
    replays the job, and the final counts are identical anyway."""
    deaths = []
    real_execute = ServiceWorker._execute

    def dying_execute(self, lease):
        if self.worker_name == "w0" and not deaths:
            deaths.append(lease.fingerprint)
            # Die silently: stop heartbeating and never report back.
            with self._lease_lock:
                self._active = None
            while not self.stop_event.is_set():
                time.sleep(0.01)
            raise RuntimeError("killed")
        return real_execute(self, lease)

    monkeypatch.setattr(ServiceWorker, "_execute", dying_execute)
    service = FuzzService(str(tmp_path / "svc"), workers=2,
                          visibility_timeout=0.5).start()
    api = ServiceApiServer(service).start()
    try:
        code, accepted = _post(api.url + "/v1/campaigns",
                               {"spec": CampaignSpec(**SPEC).to_dict()})
        assert code == 202
        record = _await_terminal(api.url, accepted["campaign_id"])
        assert record["status"] == "completed"
        assert deaths, "the crash never triggered"
        assert record["summary"] == serial_summary.to_dict()
    finally:
        api.stop()
        service.stop()


def test_cancel_over_http(server):
    spec_record = CampaignSpec(targets=("gadgets",), tools=("teapot",),
                               iterations=5000, rounds=50, shards=2,
                               seed=13).to_dict()
    _, accepted = _post(server.url + "/v1/campaigns", {"spec": spec_record})
    campaign_id = accepted["campaign_id"]
    _post(f"{server.url}/v1/campaigns/{campaign_id}/cancel")
    record = _await_terminal(server.url, campaign_id)
    assert record["status"] == "cancelled"
    assert "summary" not in record


def test_http_error_handling(server):
    # Bad body → 400 with a JSON error.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server.url + "/v1/campaigns", {"spec": {"nope": 1}})
    assert excinfo.value.code == 400
    assert "targets" in json.loads(excinfo.value.read())["error"]
    # Invalid spec values → 400, not a crash.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server.url + "/v1/campaigns",
              {"spec": {"targets": ["gadgets"], "tools": ["doesnotexist"]}})
    assert excinfo.value.code == 400
    # Unknown campaign → 404.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server.url + "/v1/campaigns/nope")
    assert excinfo.value.code == 404
    # Unknown route → 404.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server.url + "/v1/bogus")
    assert excinfo.value.code == 404
    # The help page is served.
    with urllib.request.urlopen(server.url + "/", timeout=10) as response:
        assert b"/v1/campaigns" in response.read()


def test_service_writes_an_observable_run_directory(server):
    """`repro runs`-compatible run directories appear under the service."""
    spec_record = CampaignSpec(targets=("gadgets",), tools=("teapot",),
                               iterations=10, rounds=1, seed=13).to_dict()
    _, accepted = _post(server.url + "/v1/campaigns", {"spec": spec_record})
    record = _await_terminal(server.url, accepted["campaign_id"])
    assert record["status"] == "completed"

    manifests = server.service.registry.list_manifests()
    assert len(manifests) == 1
    manifest = manifests[0]
    assert manifest["kind"] == "repro.telemetry/run"
    assert manifest["status"] == "completed"
    assert manifest["campaign_id"] == accepted["campaign_id"]
    assert manifest["unique_gadgets"] >= 1
    run = server.service.registry.get(record["run_id"])
    latest = run.latest_metrics()
    assert latest is not None
    assert latest["metrics"]["campaign.jobs_done"] == record["jobs_done"]
