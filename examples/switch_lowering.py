#!/usr/bin/env python3
"""Figure 2 scenario: compiler choices decide whether a gadget exists.

Compiles the same ``switch`` statement twice — once as a GCC-style
compare/branch chain and once as a Clang-style jump table — disassembles
both binaries to show the generated code, and instruments both with Teapot
to show that only the branch-chain lowering produces mispredictable
conditional branches (and hence potential Spectre-V1 gadgets).
"""

from repro import CompilerOptions, SwitchLowering, TeapotRewriter, TeapotRuntime, compile_source, disassemble
from repro.disasm import format_function

SOURCE = r"""
int handled = 0;

int dispatch(int value) {
    switch (value) {
        case 0: { handled = 1; }
        case 1: { handled = 2; }
        case 2: { handled = 3; }
        case 3: { handled = 4; }
        default: { handled = 0; }
    }
    return handled;
}

int main() {
    byte buf[8];
    int n = read_input(buf, 8);
    if (n < 1) {
        return 0;
    }
    return dispatch(buf[0]);
}
"""


def main() -> None:
    for lowering in (SwitchLowering.BRANCH_CHAIN, SwitchLowering.JUMP_TABLE):
        label = "GCC-style branch chain" if lowering is SwitchLowering.BRANCH_CHAIN \
            else "Clang-style jump table"
        print("=" * 72)
        print(f"{label} ({lowering.value})")
        print("=" * 72)
        binary = compile_source(SOURCE, CompilerOptions(switch_lowering=lowering))
        module = disassemble(binary)
        dispatch = module.function("dispatch")
        print(format_function(dispatch))
        branches = dispatch.conditional_branch_count()
        print(f"\nconditional branches in dispatch(): {branches}")

        runtime = TeapotRuntime(TeapotRewriter().instrument(binary))
        episodes = 0
        for value in range(6):
            result = runtime.run(bytes([value * 50 % 256]))
            episodes += result.spec_stats["simulations_started"]
        verdict = "Spectre-V1 exposed" if branches > 1 else "Spectre-V1 safe"
        print(f"speculation episodes across six inputs: {episodes}  ->  {verdict}\n")


if __name__ == "__main__":
    main()
