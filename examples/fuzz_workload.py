#!/usr/bin/env python3
"""Fuzz one of the paper's workload programs end to end.

Reproduces the Figure 3 workflow on a real workload: compile the libhtp
stand-in (an HTTP request parser), hand only the binary to Teapot, then run
a short coverage-guided fuzzing campaign and summarise the gadgets found by
attacker class and side channel (the Table 4 breakdown).

Usage:  python examples/fuzz_workload.py [target] [iterations]
        target defaults to "libhtp"; iterations defaults to 60.
"""

import sys

from repro import Fuzzer, FuzzTarget, TeapotRewriter, TeapotRuntime, compile_vanilla, get_target
from repro.baselines import SpecFuzzRewriter, SpecFuzzRuntime


def main() -> None:
    target_name = sys.argv[1] if len(sys.argv) > 1 else "libhtp"
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    target = get_target(target_name)

    print(f"target: {target_name} — {target.description}")
    binary = compile_vanilla(target)
    print(f"compiled COTS binary: {binary.text.size} bytes of code, "
          f"{len(binary.symbols)} symbols")

    print("\n--- Teapot ---")
    teapot_runtime = TeapotRuntime(TeapotRewriter().instrument(binary))
    fuzzer = Fuzzer(FuzzTarget(teapot_runtime), seeds=list(target.seeds), seed=2024)
    campaign = fuzzer.run_campaign(iterations)
    print(f"executions={campaign.executions}  corpus={campaign.corpus_size}  "
          f"normal coverage={campaign.normal_coverage}  "
          f"speculative coverage={campaign.speculative_coverage}")
    print(f"unique gadget sites: {campaign.gadget_count()}")
    for category, count in sorted(campaign.count_by_category().items()):
        print(f"  {category:16s} {count}")

    print("\n--- SpecFuzz baseline (ASan-only policy) ---")
    specfuzz_runtime = SpecFuzzRuntime(SpecFuzzRewriter().instrument(binary))
    sf_fuzzer = Fuzzer(FuzzTarget(specfuzz_runtime), seeds=list(target.seeds), seed=2024)
    sf_campaign = sf_fuzzer.run_campaign(iterations)
    print(f"unique gadget sites (all speculative OOB): {sf_campaign.gadget_count()}")
    print("\nNote how Teapot attributes each gadget to an attacker class and "
          "side channel, while SpecFuzz cannot tell attacker-controlled "
          "leaks from benign out-of-bounds noise.")


if __name__ == "__main__":
    main()
