#!/usr/bin/env python3
"""Close the detect → patch → verify loop on one workload.

Fuzzes the target once to collect gadget reports, then patches the
original binary with each mitigation strategy, re-fuzzes the hardened
build with the identical campaign to prove the reported sites are gone,
and prints the cycle overhead each strategy costs a deployed binary —
the trade-off the paper's ranked report output exists to enable.

Usage:  python examples/harden_target.py [target] [iterations]
        target defaults to 'gadgets' (the Kocher-sample driver);
        iterations to 400 executions per campaign.

Equivalent CLI:
        python -m repro.hardening --target gadgets --strategy all \
            --iterations 400
"""

import sys

from repro.hardening import STRATEGIES, detect_reports, run_hardening


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "gadgets"
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 400

    print(f"fuzzing {target} for {iterations} executions ...")
    reports = detect_reports(target, iterations=iterations, seed=1234)
    print(f"  {len(reports)} unique gadget sites reported\n")

    for strategy in STRATEGIES:
        result = run_hardening(
            target, strategy, iterations=iterations, seed=1234,
            reports=reports,
        )
        print(result.format_summary())
        verdict = ("all reported sites eliminated" if result.all_eliminated
                   else f"{len(result.residual)} residual site(s)!")
        print(f"  -> {verdict}\n")


if __name__ == "__main__":
    main()
