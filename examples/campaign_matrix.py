#!/usr/bin/env python3
"""Run a multi-target campaign matrix with checkpoint/resume.

The campaign subsystem is the scale-out layer over the single fuzzing
loop of ``examples/fuzz_workload.py``: it fans a (target × tool) matrix
out over worker processes, syncs the sharded corpora between rounds,
deduplicates gadget reports across workers, and checkpoints after every
round so a killed run resumes without losing work.

Usage:  python examples/campaign_matrix.py [iterations] [workers]
        iterations defaults to 60 per (target, tool) group; workers to 2.

Equivalent CLI:
        python -m repro.campaign --targets gadgets,jsmn --tools teapot,specfuzz \
            --iterations 60 --rounds 2 --shards 2 --workers 2 \
            --checkpoint /tmp/repro-campaign.json --resume
"""

import sys
import tempfile
from pathlib import Path

from repro.campaign import CampaignSpec, run_campaign


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    spec = CampaignSpec(
        targets=("gadgets", "jsmn"),
        tools=("teapot", "specfuzz"),
        iterations=iterations,
        rounds=2,
        shards=2,
        seed=2025,
        workers=workers,
    )
    checkpoint = Path(tempfile.gettempdir()) / "repro-campaign.json"
    print(f"campaign fingerprint: {spec.fingerprint()}")
    print(f"checkpoint: {checkpoint} (kill and re-run to resume)\n")

    try:
        summary = run_campaign(
            spec,
            checkpoint_path=str(checkpoint),
            resume=checkpoint.exists(),
            progress=lambda message: print(f"  [{message}]"),
        )
    except ValueError:
        # A stale checkpoint from a run with different arguments: start over.
        print("  [stale checkpoint for different arguments; starting fresh]")
        summary = run_campaign(
            spec,
            checkpoint_path=str(checkpoint),
            progress=lambda message: print(f"  [{message}]"),
        )

    print()
    print(summary.format_table())
    print("\nNote the per-group dedup: 'raw' counts every report occurrence "
          "across all workers and rounds, 'gadgets' the unique sites.")


if __name__ == "__main__":
    main()
