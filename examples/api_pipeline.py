#!/usr/bin/env python3
"""The unified facade: detect → patch → verify in one Pipeline chain.

Everything `examples/fuzz_workload.py` and `examples/harden_target.py`
do with subsystem imports, expressed through `repro.api` alone — plus a
third-party target plugged in through the registry, to show that new
workloads need zero core-code changes.

Usage:  python examples/api_pipeline.py [target] [iterations]
        target defaults to 'gadgets'; iterations to 400.

Equivalent CLI:
        repro fuzz --target gadgets --iterations 400 --json run.json
        repro harden --target gadgets --strategy all --iterations 400
"""

import sys

import repro.api as api

#: A brand-new workload: one Spectre-V1-shaped bounds-checked lookup.
_PLUGIN_SOURCE = r"""
int secrets[16];

int main() {
    byte buf[8];
    int n = read_input(buf, 8);
    if (n < 1) {
        return 0;
    }
    int index = buf[0];
    if (index < 16) {
        return secrets[index];
    }
    return 0;
}
"""


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "gadgets"
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 400

    # --- one chained run: fuzz, patch, re-fuzz, account -------------------
    run = (api.pipeline(target=target, seed=1234,
                        progress=lambda m: print(f"  {m}"))
           .fuzz(iterations=iterations)
           .harden("mask")
           .refuzz()
           .report())
    print()
    print(run.format_summary())
    hardening = run.hardening_result
    verdict = ("all reported sites eliminated" if hardening.all_eliminated
               else f"{len(hardening.residual)} residual site(s)!")
    print(f"  -> {verdict} at {hardening.overhead:.3f}x overhead\n")

    # --- the artifact round-trips as versioned JSON -----------------------
    rebuilt = api.RunResult.from_dict(run.to_dict())
    assert rebuilt.to_dict() == run.to_dict()
    print(f"RunResult artifact: schema v{run.schema_version}, "
          f"{len(run.stages)} stages, "
          f"{len(run.gadget_reports())} gadget reports\n")

    # --- plug in a third-party target and fuzz it the same way ------------
    api.register_target(api.TargetProgram(
        name="demo-lookup", source=_PLUGIN_SOURCE, seeds=[b"\x04"],
        description="example plugin workload"))
    plugin_run = api.pipeline(target="demo-lookup").fuzz(200).report()
    found = plugin_run.stage("fuzz").payload["unique_gadgets"]
    print(f"plugin target 'demo-lookup': {found} gadget site(s) found "
          f"in 200 executions")


if __name__ == "__main__":
    main()
