#!/usr/bin/env python3
"""Quickstart: detect the canonical Spectre-V1 gadget in a COTS binary.

Compiles a small victim program (Listing 1 of the paper) with the mini-C
toolchain, throws away the source, rewrites the binary with Teapot
(Speculation Shadows) and runs it over an out-of-bounds input to see the
gadget reports the Kasper policy produces.
"""

from repro import TeapotRewriter, TeapotRuntime, compile_source

VICTIM_SOURCE = r"""
int limit = 16;

int victim(byte *arr1, byte *arr2, int index) {
    int value = 0;
    if (index < limit) {                 // B1: the mispredicted bounds check
        value = arr2[arr1[index] * 2];   // L1 + L2: load secret, transmit it
    }
    return value;
}

int main() {
    byte buf[16];
    int n = read_input(buf, 16);
    if (n < 4) {
        return 0;
    }
    int index = buf[0] + buf[1] * 256 + buf[2] * 65536 + buf[3] * 16777216;
    byte *arr1 = malloc(16);
    byte *arr2 = malloc(512);
    int result = victim(arr1, arr2, index);
    free(arr1);
    free(arr2);
    return result;
}
"""


def main() -> None:
    print("[1/4] compiling the victim with the mini-C toolchain ...")
    binary = compile_source(VICTIM_SOURCE)
    print(f"      {binary.summary()}")

    print("[2/4] rewriting the binary with Teapot (Speculation Shadows) ...")
    rewriter = TeapotRewriter()
    instrumented = rewriter.instrument(binary)
    for pass_name, stats in rewriter.last_stats.items():
        print(f"      {pass_name:26s} {stats}")

    print("[3/4] running an out-of-bounds attacker input ...")
    runtime = TeapotRuntime(instrumented)
    attacker_index = (1 << 20).to_bytes(4, "little") + bytes(12)
    result = runtime.run(attacker_index)
    print(f"      program exited with status {result.exit_status}; "
          f"{result.spec_stats['simulations_started']} speculation episodes simulated")

    print("[4/4] gadget reports:")
    if not result.reports:
        print("      (none)")
    for report in result.reports:
        print(f"      {report.category:14s} transmit pc={report.pc:#x} "
              f"depth={report.depth}  {report.description}")


if __name__ == "__main__":
    main()
