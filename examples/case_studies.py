#!/usr/bin/env python3
"""Appendix A case studies: the LZMA offset gadget and the memory massage.

Builds the two standalone reproductions of the paper's Appendix A listings
(the User-Cache speculative read-offset manipulation found in LZMA, and the
Massage-Port memory-massage gadget found in libhtp), analyses them with
Teapot and prints what the Kasper policy reports.
"""

from repro import TeapotConfig, TeapotRewriter, TeapotRuntime
from repro.targets.case_studies import LZMA_CASE_STUDY, MASSAGE_CASE_STUDY


def analyse(case, inputs, config=None):
    print("=" * 72)
    print(f"{case.name}: {case.description}")
    print("=" * 72)
    config = config or TeapotConfig()
    binary = case.compile()
    runtime = TeapotRuntime(TeapotRewriter(config).instrument(binary), config=config)
    seen = {}
    for data in inputs:
        result = runtime.run(data)
        for report in result.reports:
            seen.setdefault(report.category, 0)
            seen[report.category] += 1
        stats = result.spec_stats
    print(f"speculation: {stats['simulations_started']} episodes, "
          f"{stats['nested_simulations']} nested, max depth {stats['max_depth_reached']}")
    if seen:
        for category, count in sorted(seen.items()):
            print(f"  reported {category:16s} x{count}")
    else:
        print("  no gadget reports for these inputs (the massage chain needs a "
              "longer fuzzing campaign; see EXPERIMENTS.md)")
    print()


def main() -> None:
    analyse(
        LZMA_CASE_STUDY,
        [bytes([0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 1]) + bytes(8),
         bytes([0x40, 0x10, 0x20, 0, 0, 0, 0, 1])],
    )
    analyse(
        MASSAGE_CASE_STUDY,
        [bytes([7, 1, 2, 3, 200, 250, 9, 9]), bytes(range(16))],
        TeapotConfig(eager_runs=8),
    )


if __name__ == "__main__":
    main()
