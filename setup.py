"""Packaging for the Teapot reproduction (works offline: no fetch needed)."""

from setuptools import find_packages, setup

setup(
    name="teapot-repro",
    version="0.2.0",
    description=(
        "Reproduction of 'Teapot: Efficiently Uncovering Spectre Gadgets "
        "in COTS Binaries' (CGO 2025) with campaign-scale fuzzing"
    ),
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.campaign.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Security",
        "Topic :: Software Development :: Testing",
    ],
)
