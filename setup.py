"""Packaging for the Teapot reproduction (works offline: no fetch needed)."""

from setuptools import find_packages, setup

setup(
    name="teapot-repro",
    version="0.3.0",
    description=(
        "Reproduction of 'Teapot: Efficiently Uncovering Spectre Gadgets "
        "in COTS Binaries' (CGO 2025) with campaign-scale fuzzing and "
        "report-guided hardening"
    ),
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.campaign.cli:main",
            "repro-harden=repro.hardening.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Security",
        "Topic :: Software Development :: Testing",
    ],
)
