"""Packaging for the Teapot reproduction (works offline: no fetch needed)."""

from setuptools import find_packages, setup

setup(
    name="teapot-repro",
    version="0.4.0",
    description=(
        "Reproduction of 'Teapot: Efficiently Uncovering Spectre Gadgets "
        "in COTS Binaries' (CGO 2025) with campaign-scale fuzzing, "
        "report-guided hardening, and a unified repro.api pipeline facade"
    ),
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro=repro.api.cli:main",
            # Deprecated shims; use `repro campaign` / `repro harden`.
            "repro-campaign=repro.campaign.cli:deprecated_main",
            "repro-harden=repro.hardening.cli:deprecated_main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Security",
        "Topic :: Software Development :: Testing",
    ],
)
