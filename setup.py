"""Setuptools shim so `pip install -e .` / `setup.py develop` work offline."""
from setuptools import setup

setup()
