"""Packaging for the Teapot reproduction (works offline: no fetch needed)."""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    """The package version, read textually from ``src/repro/_version.py``.

    Same string ``repro.__version__`` and ``repro --version`` report; read
    without importing so packaging never executes the library.
    """
    path = os.path.join(os.path.dirname(__file__), "src", "repro", "_version.py")
    with open(path, "r", encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M)
    if match is None:
        raise RuntimeError(f"no __version__ string in {path}")
    return match.group(1)


setup(
    name="teapot-repro",
    version=read_version(),
    description=(
        "Reproduction of 'Teapot: Efficiently Uncovering Spectre Gadgets "
        "in COTS Binaries' (CGO 2025) with campaign-scale fuzzing, "
        "report-guided hardening, and a unified repro.api pipeline facade"
    ),
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro=repro.api.cli:main",
            # Deprecated shims; use `repro campaign` / `repro harden`.
            "repro-campaign=repro.campaign.cli:deprecated_main",
            "repro-harden=repro.hardening.cli:deprecated_main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Security",
        "Topic :: Software Development :: Testing",
    ],
)
