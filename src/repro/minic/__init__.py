"""mini-C: a small C-like language compiled to TVM binaries.

The paper's workloads are real C libraries compiled with clang; Teapot never
sees their source.  This package plays the role of that C toolchain: the
five workload programs (:mod:`repro.targets`) are written in mini-C,
compiled to TELF binaries by this compiler, and only the resulting *binary*
is handed to Teapot and the baselines.

The language is deliberately small but expressive enough for parsers and
decompressors:

* 64-bit integers, byte pointers and fixed-size global/local byte and word
  arrays;
* functions with parameters and locals, ``if``/``else``, ``while``,
  ``for``, ``break``/``continue``, ``return``, ``switch``;
* the usual expression operators, array indexing and calls (to other
  mini-C functions or to the runtime externals such as ``read_input``,
  ``malloc`` and ``memcpy``);
* function pointers through ``&name`` and indirect calls, enough to
  exercise Teapot's control-flow-escape handling.

``switch`` statements can be lowered either as a **compare-and-branch
chain** (what GCC tends to emit, Spectre-V1 vulnerable) or as a **jump
table** (what Clang tends to emit, not vulnerable) — reproducing the
paper's Figure 2 argument about compiler-dependent gadget existence.
"""

from repro.minic.lexer import Lexer, LexerError, Token, TokenKind
from repro.minic import astnodes as nodes
from repro.minic.parser import ParseError, Parser, parse_source
from repro.minic.codegen import CodegenError, CodeGenerator, CompilerOptions, SwitchLowering
from repro.minic.compiler import compile_source, compile_to_module

__all__ = [
    "Lexer",
    "LexerError",
    "Token",
    "TokenKind",
    "nodes",
    "ParseError",
    "Parser",
    "parse_source",
    "CodegenError",
    "CodeGenerator",
    "CompilerOptions",
    "SwitchLowering",
    "compile_source",
    "compile_to_module",
]
