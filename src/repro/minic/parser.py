"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.minic import astnodes as ast
from repro.minic.lexer import Lexer, Token, TokenKind


class ParseError(ValueError):
    """Raised on syntactically invalid mini-C source."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} (line {token.line}, near {token.text!r})")
        self.token = token


def parse_source(source: str) -> ast.Program:
    """Parse mini-C source text into an AST."""
    return Parser(Lexer(source).tokenize()).parse_program()


class Parser:
    """Token-stream parser producing :mod:`repro.minic.astnodes` trees."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}", token)
        return self._advance()

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._advance()
            return True
        return False

    def _expect_keyword(self, text: str) -> Token:
        token = self._peek()
        if not token.is_keyword(text):
            raise ParseError(f"expected keyword {text!r}", token)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier", token)
        return self._advance()

    # -- grammar: top level ------------------------------------------------------
    def parse_program(self) -> ast.Program:
        """Parse a whole translation unit."""
        program = ast.Program()
        while self._peek().kind is not TokenKind.EOF:
            self._accept_keyword("global")
            ctype, name, line = self._parse_declarator()
            if self._peek().is_punct("("):
                program.functions.append(self._parse_function(ctype, name, line))
            else:
                program.globals.append(self._parse_global(ctype, name, line))
        return program

    def _parse_type(self) -> ast.CType:
        token = self._peek()
        if token.is_keyword("int"):
            base = "int"
        elif token.is_keyword("byte"):
            base = "byte"
        elif token.is_keyword("void"):
            base = "void"
        else:
            raise ParseError("expected a type", token)
        self._advance()
        pointer = self._accept_punct("*")
        return ast.CType(base, pointer=pointer)

    def _parse_declarator(self):
        """Parse ``type [*] name`` and an optional array suffix."""
        ctype = self._parse_type()
        name_token = self._expect_ident()
        if self._accept_punct("["):
            size_token = self._peek()
            if size_token.kind is not TokenKind.NUMBER:
                raise ParseError("expected array size", size_token)
            self._advance()
            self._expect_punct("]")
            ctype = ast.CType(ctype.base, pointer=ctype.pointer,
                              array_size=size_token.value)
        return ctype, name_token.text, name_token.line

    def _parse_function(self, return_type: ast.CType, name: str, line: int) -> ast.FunctionDecl:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._peek().is_punct(")"):
            while True:
                if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                    self._advance()
                    break
                ptype = self._parse_type()
                pname = self._expect_ident().text
                params.append(ast.Param(ptype, pname))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FunctionDecl(name=name, return_type=return_type,
                                params=params, body=body, line=line)

    def _parse_global(self, ctype: ast.CType, name: str, line: int) -> ast.GlobalDecl:
        init: Union[None, int, List[int], bytes] = None
        if self._accept_punct("="):
            token = self._peek()
            if token.is_punct("{"):
                init = self._parse_initializer_list()
            elif token.kind is TokenKind.STRING:
                self._advance()
                init = token.text.encode("latin-1")
            else:
                expr = self._parse_expression()
                init = self._fold_constant(expr)
        self._expect_punct(";")
        return ast.GlobalDecl(ctype=ctype, name=name, init=init, line=line)

    def _parse_initializer_list(self) -> List[int]:
        self._expect_punct("{")
        values: List[int] = []
        if not self._peek().is_punct("}"):
            while True:
                expr = self._parse_expression()
                values.append(self._fold_constant(expr))
                if not self._accept_punct(","):
                    break
        self._expect_punct("}")
        return values

    def _fold_constant(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._fold_constant(expr.operand)
        if isinstance(expr, ast.Binary):
            left = self._fold_constant(expr.left)
            right = self._fold_constant(expr.right)
            return _fold_binop(expr.op, left, right)
        raise ParseError("global initialisers must be constant expressions",
                         self._peek())

    # -- grammar: statements --------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        open_token = self._expect_punct("{")
        statements: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", open_token)
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(statements=statements, line=open_token.line)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(value=value, line=token.line)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue(line=token.line)
        if token.kind is TokenKind.KEYWORD and token.text in ("int", "byte"):
            return self._parse_var_decl()
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr=expr, line=token.line)

    def _parse_var_decl(self) -> ast.VarDecl:
        line = self._peek().line
        ctype, name, _ = self._parse_declarator()
        init = None
        if self._accept_punct("="):
            init = self._parse_expression()
        self._expect_punct(";")
        return ast.VarDecl(ctype=ctype, name=name, init=init, line=line)

    def _parse_if(self) -> ast.If:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self._parse_statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise, line=token.line)

    def _parse_while(self) -> ast.While:
        token = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(cond=cond, body=body, line=token.line)

    def _parse_for(self) -> ast.For:
        token = self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_punct(";"):
            if self._peek().kind is TokenKind.KEYWORD and self._peek().text in ("int", "byte"):
                init = self._parse_var_decl()
            else:
                expr = self._parse_expression()
                self._expect_punct(";")
                init = ast.ExprStmt(expr=expr, line=token.line)
        else:
            self._expect_punct(";")
        cond = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._peek().is_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body, line=token.line)

    def _parse_switch(self) -> ast.Switch:
        token = self._expect_keyword("switch")
        self._expect_punct("(")
        expr = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.SwitchCase] = []
        default: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._accept_keyword("case"):
                value_token = self._peek()
                value = self._fold_constant(self._parse_expression())
                self._expect_punct(":")
                body = self._parse_case_body()
                cases.append(ast.SwitchCase(value=value, body=body))
            elif self._accept_keyword("default"):
                self._expect_punct(":")
                default = self._parse_case_body()
            else:
                raise ParseError("expected 'case' or 'default'", self._peek())
        self._expect_punct("}")
        return ast.Switch(expr=expr, cases=cases, default=default, line=token.line)

    def _parse_case_body(self) -> List[ast.Stmt]:
        statements: List[ast.Stmt] = []
        while True:
            token = self._peek()
            if (token.is_keyword("case") or token.is_keyword("default")
                    or token.is_punct("}")):
                return statements
            if token.is_keyword("break"):
                self._advance()
                self._expect_punct(";")
                return statements
            statements.append(self._parse_statement())

    # -- grammar: expressions (precedence climbing) ------------------------------------
    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    _ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_logical_or()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in self._ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(target=left, value=value, op=token.text, line=token.line)
        return left

    def _parse_logical_or(self) -> ast.Expr:
        left = self._parse_logical_and()
        while self._peek().is_punct("||"):
            token = self._advance()
            right = self._parse_logical_and()
            left = ast.Binary(op="||", left=left, right=right, line=token.line)
        return left

    def _parse_logical_and(self) -> ast.Expr:
        left = self._parse_bitor()
        while self._peek().is_punct("&&"):
            token = self._advance()
            right = self._parse_bitor()
            left = ast.Binary(op="&&", left=left, right=right, line=token.line)
        return left

    def _parse_bitor(self) -> ast.Expr:
        left = self._parse_bitxor()
        while self._peek().is_punct("|") and not self._peek().is_punct("||"):
            token = self._advance()
            right = self._parse_bitxor()
            left = ast.Binary(op="|", left=left, right=right, line=token.line)
        return left

    def _parse_bitxor(self) -> ast.Expr:
        left = self._parse_bitand()
        while self._peek().is_punct("^"):
            token = self._advance()
            right = self._parse_bitand()
            left = ast.Binary(op="^", left=left, right=right, line=token.line)
        return left

    def _parse_bitand(self) -> ast.Expr:
        left = self._parse_equality()
        while self._peek().is_punct("&") and not self._peek().is_punct("&&"):
            token = self._advance()
            right = self._parse_equality()
            left = ast.Binary(op="&", left=left, right=right, line=token.line)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._peek().text in ("==", "!=") and self._peek().kind is TokenKind.PUNCT:
            token = self._advance()
            right = self._parse_relational()
            left = ast.Binary(op=token.text, left=left, right=right, line=token.line)
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_shift()
        while (self._peek().kind is TokenKind.PUNCT
               and self._peek().text in ("<", ">", "<=", ">=")):
            token = self._advance()
            right = self._parse_shift()
            left = ast.Binary(op=token.text, left=left, right=right, line=token.line)
        return left

    def _parse_shift(self) -> ast.Expr:
        left = self._parse_additive()
        while (self._peek().kind is TokenKind.PUNCT
               and self._peek().text in ("<<", ">>")):
            token = self._advance()
            right = self._parse_additive()
            left = ast.Binary(op=token.text, left=left, right=right, line=token.line)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while (self._peek().kind is TokenKind.PUNCT
               and self._peek().text in ("+", "-")):
            token = self._advance()
            right = self._parse_multiplicative()
            left = ast.Binary(op=token.text, left=left, right=right, line=token.line)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while (self._peek().kind is TokenKind.PUNCT
               and self._peek().text in ("*", "/", "%")):
            token = self._advance()
            right = self._parse_unary()
            left = ast.Binary(op=token.text, left=left, right=right, line=token.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in ("-", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(callee=expr, args=args, line=token.line)
            elif token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(base=expr, index=index, line=token.line)
            elif token.is_punct("++") or token.is_punct("--"):
                self._advance()
                expr = ast.Unary(op=token.text, operand=expr, postfix=True,
                                 line=token.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Number(value=token.value, line=token.line)
        if token.kind is TokenKind.CHAR:
            self._advance()
            return ast.Number(value=token.value, line=token.line)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(value=token.text.encode("latin-1"), line=token.line)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.Ident(name=token.text, line=token.line)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError("expected an expression", token)


def _fold_binop(op: str, left: int, right: int) -> int:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return int(left / right)
    if op == "%":
        return left - int(left / right) * right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    raise ValueError(f"unsupported constant operator {op!r}")
