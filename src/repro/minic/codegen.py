"""Code generator: mini-C AST to TVM assembly.

The generator is deliberately simple (no SSA, no register allocation beyond
a small scratch pool, locals live in stack slots) but produces the code
*shapes* that matter for Spectre analysis: bounds checks become conditional
branches, table lookups become indexed loads, and ``switch`` statements can
be lowered either as GCC-style compare/branch chains or Clang-style jump
tables (paper Figure 2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.isa.assembler import AsmFunction, AsmProgram
from repro.isa.builder import FunctionBuilder
from repro.isa.instructions import alu as make_alu
from repro.isa.instructions import ConditionCode, Opcode
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import ARG_REGISTERS, RETURN_REGISTER, Register
from repro.loader.binary_format import DataObject
from repro.minic import astnodes as ast
from repro.runtime.externals import default_externals


class CodegenError(ValueError):
    """Raised when the AST cannot be lowered (unknown names, too-deep exprs)."""


class SwitchLowering(enum.Enum):
    """How ``switch`` statements are lowered (paper Figure 2)."""

    BRANCH_CHAIN = "branch_chain"   # GCC-style: cmp/je chain (Spectre-V1 prone)
    JUMP_TABLE = "jump_table"       # Clang-style: bounds check + indirect jump


@dataclass
class CompilerOptions:
    """Options controlling code generation."""

    switch_lowering: SwitchLowering = SwitchLowering.BRANCH_CHAIN
    entry: str = "main"
    #: maximum value span for which a jump table is emitted; sparser switches
    #: fall back to a branch chain (mirrors real compilers).
    jump_table_max_span: int = 64


#: Scratch registers available for expression evaluation.
SCRATCH = [Register.R6, Register.R7, Register.R8, Register.R9,
           Register.R10, Register.R11, Register.R12, Register.R13]

_RELATIONAL_CCS = {
    "==": ConditionCode.EQ,
    "!=": ConditionCode.NE,
    "<": ConditionCode.LT,
    "<=": ConditionCode.LE,
    ">": ConditionCode.GT,
    ">=": ConditionCode.GE,
}

_ALU_OPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
}


@dataclass
class LocalVar:
    """A local variable's stack slot."""

    name: str
    ctype: ast.CType
    offset: int  # negative offset from fp


class CodeGenerator:
    """Lowers a mini-C :class:`~repro.minic.astnodes.Program` to assembly."""

    def __init__(self, program: ast.Program,
                 options: Optional[CompilerOptions] = None) -> None:
        self.program = program
        self.options = options or CompilerOptions()
        self.asm = AsmProgram(entry=self.options.entry)
        self.externals = set(default_externals().names())
        self.defined_functions = {f.name for f in program.functions}
        self.global_types: Dict[str, ast.CType] = {}
        self._string_counter = itertools.count()
        # per-function state
        self.builder: Optional[FunctionBuilder] = None
        self.locals: Dict[str, LocalVar] = {}
        self.current_function: Optional[ast.FunctionDecl] = None
        self._in_use: List[Register] = []
        self._break_labels: List[str] = []
        self._continue_labels: List[str] = []
        self._return_label: str = ""

    # ------------------------------------------------------------------ driver
    def generate(self) -> AsmProgram:
        """Generate the whole program."""
        for decl in self.program.globals:
            self._emit_global(decl)
        for func in self.program.functions:
            self._emit_function(func)
        if not self.asm.has_function(self.options.entry):
            raise CodegenError(f"entry function {self.options.entry!r} is not defined")
        return self.asm

    # ------------------------------------------------------------------ globals
    def _emit_global(self, decl: ast.GlobalDecl) -> None:
        self.global_types[decl.name] = decl.ctype
        element = decl.ctype.element_size
        size = decl.ctype.storage_size
        data = bytearray(size)
        init = decl.init
        if isinstance(init, int):
            data[0:8] = (init & ((1 << 64) - 1)).to_bytes(8, "little")
        elif isinstance(init, bytes):
            data = bytearray(max(size, len(init) + 1))
            data[0:len(init)] = init
        elif isinstance(init, list):
            for i, value in enumerate(init):
                start = i * element
                data[start:start + element] = (
                    (value & ((1 << (8 * element)) - 1)).to_bytes(element, "little")
                )
        self.asm.add_data(DataObject(decl.name, bytes(data), ".data"))

    def _intern_string(self, value: bytes) -> str:
        name = f".Lstr{next(self._string_counter)}"
        self.asm.add_data(DataObject(name, value + b"\x00", ".rodata", align=1))
        return name

    # ------------------------------------------------------------------ functions
    def _emit_function(self, func: ast.FunctionDecl) -> None:
        self.builder = FunctionBuilder(func.name)
        self.current_function = func
        self.locals = {}
        self._in_use = []
        self._break_labels = []
        self._continue_labels = []
        self._return_label = self.builder.fresh_label("ret")

        frame_size = self._allocate_locals(func)
        self.builder.prologue(frame_size)
        for index, param in enumerate(func.params):
            slot = self.locals[param.name]
            if index < len(ARG_REGISTERS):
                self.builder.store(
                    Mem(base=Register.FP, disp=slot.offset), Reg(ARG_REGISTERS[index])
                )
            else:
                # Stack-passed argument: the caller pushed it just above the
                # return address ([fp] = saved fp, [fp+8] = return address).
                stack_offset = 16 + 8 * (index - len(ARG_REGISTERS))
                self.builder.load(
                    Reg(Register.R6), Mem(base=Register.FP, disp=stack_offset)
                )
                self.builder.store(
                    Mem(base=Register.FP, disp=slot.offset), Reg(Register.R6)
                )

        self._emit_block(func.body)

        # Implicit `return 0` for functions that fall off the end.
        self.builder.mov(Reg(RETURN_REGISTER), Imm(0))
        self.builder.label(self._return_label)
        self.builder.epilogue()
        self.asm.add_function(self.builder.build())

    def _allocate_locals(self, func: ast.FunctionDecl) -> int:
        offset = 0

        def allocate(name: str, ctype: ast.CType) -> None:
            nonlocal offset
            if name in self.locals:
                raise CodegenError(
                    f"duplicate local {name!r} in function {func.name!r} "
                    "(mini-C uses flat function scope)"
                )
            size = max(8, ctype.storage_size)
            size = (size + 7) // 8 * 8
            offset += size
            self.locals[name] = LocalVar(name, ctype, -offset)

        for param in func.params:
            allocate(param.name, param.ctype)

        def scan(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Block):
                for inner in stmt.statements:
                    scan(inner)
            elif isinstance(stmt, ast.VarDecl):
                allocate(stmt.name, stmt.ctype)
            elif isinstance(stmt, ast.If):
                scan(stmt.then)
                if stmt.otherwise is not None:
                    scan(stmt.otherwise)
            elif isinstance(stmt, ast.While):
                scan(stmt.body)
            elif isinstance(stmt, ast.For):
                if stmt.init is not None:
                    scan(stmt.init)
                scan(stmt.body)
            elif isinstance(stmt, ast.Switch):
                for case in stmt.cases:
                    for inner in case.body:
                        scan(inner)
                for inner in stmt.default:
                    scan(inner)

        scan(func.body)
        return (offset + 15) // 16 * 16

    # ------------------------------------------------------------------ register pool
    def _alloc_reg(self) -> Register:
        for reg in SCRATCH:
            if reg not in self._in_use:
                self._in_use.append(reg)
                return reg
        raise CodegenError(
            f"expression too deep in function {self.current_function.name!r} "
            "(scratch registers exhausted)"
        )

    def _free_reg(self, reg: Register) -> None:
        if reg in self._in_use:
            self._in_use.remove(reg)

    # ------------------------------------------------------------------ statements
    def _emit_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._emit_statement(stmt)

    def _emit_statement(self, stmt: ast.Stmt) -> None:
        b = self.builder
        if isinstance(stmt, ast.Block):
            self._emit_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                reg = self._emit_expression(stmt.init)
                slot = self.locals[stmt.name]
                b.store(Mem(base=Register.FP, disp=slot.offset), Reg(reg))
                self._free_reg(reg)
        elif isinstance(stmt, ast.ExprStmt):
            reg = self._emit_expression(stmt.expr)
            if reg is not None:
                self._free_reg(reg)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self._emit_expression(stmt.value)
                b.mov(Reg(RETURN_REGISTER), Reg(reg))
                self._free_reg(reg)
            else:
                b.mov(Reg(RETURN_REGISTER), Imm(0))
            b.jmp(self._return_label)
        elif isinstance(stmt, ast.If):
            self._emit_if(stmt)
        elif isinstance(stmt, ast.While):
            self._emit_while(stmt)
        elif isinstance(stmt, ast.For):
            self._emit_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._emit_switch(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._break_labels:
                raise CodegenError("'break' outside a loop or switch")
            b.jmp(self._break_labels[-1])
        elif isinstance(stmt, ast.Continue):
            if not self._continue_labels:
                raise CodegenError("'continue' outside a loop")
            b.jmp(self._continue_labels[-1])
        else:  # pragma: no cover - defensive
            raise CodegenError(f"unsupported statement {type(stmt).__name__}")

    def _emit_if(self, stmt: ast.If) -> None:
        b = self.builder
        else_label = b.fresh_label("else")
        end_label = b.fresh_label("endif")
        self._branch_if_false(stmt.cond, else_label)
        self._emit_statement(stmt.then)
        if stmt.otherwise is not None:
            b.jmp(end_label)
            b.label(else_label)
            self._emit_statement(stmt.otherwise)
            b.label(end_label)
        else:
            b.label(else_label)

    def _emit_while(self, stmt: ast.While) -> None:
        b = self.builder
        loop_label = b.fresh_label("loop")
        end_label = b.fresh_label("endloop")
        b.label(loop_label)
        self._branch_if_false(stmt.cond, end_label)
        self._break_labels.append(end_label)
        self._continue_labels.append(loop_label)
        self._emit_statement(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        b.jmp(loop_label)
        b.label(end_label)

    def _emit_for(self, stmt: ast.For) -> None:
        b = self.builder
        if stmt.init is not None:
            self._emit_statement(stmt.init)
        loop_label = b.fresh_label("forloop")
        step_label = b.fresh_label("forstep")
        end_label = b.fresh_label("endfor")
        b.label(loop_label)
        if stmt.cond is not None:
            self._branch_if_false(stmt.cond, end_label)
        self._break_labels.append(end_label)
        self._continue_labels.append(step_label)
        self._emit_statement(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        b.label(step_label)
        if stmt.step is not None:
            reg = self._emit_expression(stmt.step)
            if reg is not None:
                self._free_reg(reg)
        b.jmp(loop_label)
        b.label(end_label)

    # -- switch lowering (paper Figure 2) -------------------------------------------
    def _emit_switch(self, stmt: ast.Switch) -> None:
        values = [case.value for case in stmt.cases]
        use_table = (
            self.options.switch_lowering is SwitchLowering.JUMP_TABLE
            and len(values) >= 2
            and max(values) - min(values) < self.options.jump_table_max_span
        )
        if use_table:
            self._emit_switch_jump_table(stmt)
        else:
            self._emit_switch_branch_chain(stmt)

    def _emit_switch_branch_chain(self, stmt: ast.Switch) -> None:
        b = self.builder
        reg = self._emit_expression(stmt.expr)
        end_label = b.fresh_label("endswitch")
        default_label = b.fresh_label("swdefault")
        case_labels = [b.fresh_label("case") for _ in stmt.cases]
        for case, label in zip(stmt.cases, case_labels):
            b.cmp(Reg(reg), Imm(case.value))
            b.je(label)
        b.jmp(default_label)
        self._free_reg(reg)

        self._break_labels.append(end_label)
        for case, label in zip(stmt.cases, case_labels):
            b.label(label)
            for inner in case.body:
                self._emit_statement(inner)
            b.jmp(end_label)
        b.label(default_label)
        for inner in stmt.default:
            self._emit_statement(inner)
        self._break_labels.pop()
        b.label(end_label)

    def _emit_switch_jump_table(self, stmt: ast.Switch) -> None:
        b = self.builder
        reg = self._emit_expression(stmt.expr)
        end_label = b.fresh_label("endswitch")
        default_label = b.fresh_label("swdefault")
        case_labels = {case.value: b.fresh_label("case") for case in stmt.cases}

        low = min(case_labels)
        high = max(case_labels)
        span = high - low + 1
        table_name = f".Ljt_{self.current_function.name}_{next(self._string_counter)}"
        slots = []
        for i in range(span):
            target = case_labels.get(low + i, default_label)
            slots.append((i * 8, f"{self.current_function.name}::{target}", 0))
        self.asm.add_data(
            DataObject(table_name, bytes(span * 8), ".rodata", align=8,
                       pointer_slots=slots)
        )

        if low:
            b.sub(Reg(reg), Imm(low))
        b.cmp(Reg(reg), Imm(span))
        b.jae(default_label)
        b.ijmp(Mem(index=reg, scale=8, disp=Label(table_name)))
        self._free_reg(reg)

        self._break_labels.append(end_label)
        for case in stmt.cases:
            b.label(case_labels[case.value])
            for inner in case.body:
                self._emit_statement(inner)
            b.jmp(end_label)
        b.label(default_label)
        for inner in stmt.default:
            self._emit_statement(inner)
        self._break_labels.pop()
        b.label(end_label)

    # ------------------------------------------------------------------ conditions
    def _branch_if_false(self, cond: ast.Expr, target: str) -> None:
        """Emit a branch to ``target`` when ``cond`` is false.

        Relational operators and short-circuit connectives lower to direct
        conditional branches (the bounds-check shape that Spectre-V1 needs);
        everything else is evaluated to a value and compared with zero.
        """
        b = self.builder
        if isinstance(cond, ast.Binary) and cond.op in _RELATIONAL_CCS:
            left = self._emit_expression(cond.left)
            right_operand = self._as_simple_operand(cond.right)
            if right_operand is None:
                right = self._emit_expression(cond.right)
                b.cmp(Reg(left), Reg(right))
                self._free_reg(right)
            else:
                b.cmp(Reg(left), right_operand)
            self._free_reg(left)
            cc = _RELATIONAL_CCS[cond.op]
            if self._is_unsigned_compare(cond):
                cc = _UNSIGNED_CCS.get(cc, cc)
            b.jcc(cc.negate(), target)
            return
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            self._branch_if_false(cond.left, target)
            self._branch_if_false(cond.right, target)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            ok_label = b.fresh_label("or_ok")
            self._branch_if_true(cond.left, ok_label)
            self._branch_if_false(cond.right, target)
            b.label(ok_label)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._branch_if_true(cond.operand, target)
            return
        reg = self._emit_expression(cond)
        b.cmp(Reg(reg), Imm(0))
        b.je(target)
        self._free_reg(reg)

    def _branch_if_true(self, cond: ast.Expr, target: str) -> None:
        """Emit a branch to ``target`` when ``cond`` is true."""
        b = self.builder
        if isinstance(cond, ast.Binary) and cond.op in _RELATIONAL_CCS:
            left = self._emit_expression(cond.left)
            right_operand = self._as_simple_operand(cond.right)
            if right_operand is None:
                right = self._emit_expression(cond.right)
                b.cmp(Reg(left), Reg(right))
                self._free_reg(right)
            else:
                b.cmp(Reg(left), right_operand)
            self._free_reg(left)
            cc = _RELATIONAL_CCS[cond.op]
            if self._is_unsigned_compare(cond):
                cc = _UNSIGNED_CCS.get(cc, cc)
            b.jcc(cc, target)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            self._branch_if_true(cond.left, target)
            self._branch_if_true(cond.right, target)
            return
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            fail_label = b.fresh_label("and_fail")
            self._branch_if_false(cond.left, fail_label)
            self._branch_if_true(cond.right, target)
            b.label(fail_label)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._branch_if_false(cond.operand, target)
            return
        reg = self._emit_expression(cond)
        b.cmp(Reg(reg), Imm(0))
        b.jne(target)
        self._free_reg(reg)

    def _is_unsigned_compare(self, cond: ast.Binary) -> bool:
        """Byte-typed comparisons use unsigned condition codes (like C)."""
        return (
            self._expr_type(cond.left).base == "byte"
            and not self._expr_type(cond.left).pointer
            and self._expr_type(cond.left).array_size is None
        ) or (
            self._expr_type(cond.right).base == "byte"
            and not self._expr_type(cond.right).pointer
            and self._expr_type(cond.right).array_size is None
        )

    def _as_simple_operand(self, expr: ast.Expr):
        if isinstance(expr, ast.Number):
            return Imm(expr.value)
        return None

    # ------------------------------------------------------------------ expressions
    def _emit_expression(self, expr: ast.Expr) -> Optional[Register]:
        b = self.builder
        if isinstance(expr, ast.Number):
            reg = self._alloc_reg()
            b.mov(Reg(reg), Imm(expr.value))
            return reg
        if isinstance(expr, ast.StringLit):
            reg = self._alloc_reg()
            name = self._intern_string(expr.value)
            b.mov(Reg(reg), Label(name))
            return reg
        if isinstance(expr, ast.Ident):
            return self._emit_ident(expr)
        if isinstance(expr, ast.Index):
            mem, size = self._lvalue_index(expr)
            reg = self._alloc_reg()
            b.load(Reg(reg), mem, size=size)
            self._release_mem_registers(mem, keep=reg)
            return reg
        if isinstance(expr, ast.Unary):
            return self._emit_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._emit_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._emit_assign(expr)
        if isinstance(expr, ast.Call):
            return self._emit_call(expr)
        raise CodegenError(f"unsupported expression {type(expr).__name__}")

    def _emit_ident(self, expr: ast.Ident) -> Register:
        b = self.builder
        name = expr.name
        reg = self._alloc_reg()
        if name in self.locals:
            slot = self.locals[name]
            if slot.ctype.is_array:
                b.lea(Reg(reg), Mem(base=Register.FP, disp=slot.offset))
            else:
                b.load(Reg(reg), Mem(base=Register.FP, disp=slot.offset))
            return reg
        if name in self.global_types:
            ctype = self.global_types[name]
            if ctype.is_array:
                b.mov(Reg(reg), Label(name))
            else:
                b.load(Reg(reg), Mem(disp=Label(name)))
            return reg
        if name in self.defined_functions:
            b.mov(Reg(reg), Label(name))
            return reg
        raise CodegenError(f"unknown identifier {name!r}")

    def _emit_unary(self, expr: ast.Unary) -> Register:
        b = self.builder
        op = expr.op
        if op in ("++", "--"):
            return self._emit_incdec(expr)
        if op == "&":
            return self._emit_address_of(expr.operand)
        if op == "*":
            ptr = self._emit_expression(expr.operand)
            size = 1 if self._expr_type(expr.operand).base == "byte" else 8
            reg = self._alloc_reg()
            b.load(Reg(reg), Mem(base=ptr), size=size)
            self._free_reg(ptr)
            return reg
        reg = self._emit_expression(expr.operand)
        if op == "-":
            b.neg(Reg(reg))
        elif op == "~":
            b.not_(Reg(reg))
        elif op == "!":
            b.cmp(Reg(reg), Imm(0))
            b.mov(Reg(reg), Imm(1))
            skip = b.fresh_label("not")
            b.je(skip)
            b.mov(Reg(reg), Imm(0))
            b.label(skip)
        else:
            raise CodegenError(f"unsupported unary operator {op!r}")
        return reg

    def _emit_incdec(self, expr: ast.Unary) -> Register:
        b = self.builder
        mem, size = self._lvalue(expr.operand)
        value = self._alloc_reg()
        b.load(Reg(value), mem, size=size)
        result = self._alloc_reg()
        b.mov(Reg(result), Reg(value))
        if expr.op == "++":
            b.add(Reg(value), Imm(1))
        else:
            b.sub(Reg(value), Imm(1))
        b.store(mem, Reg(value), size=size)
        if not expr.postfix:
            b.mov(Reg(result), Reg(value))
        self._free_reg(value)
        self._release_mem_registers(mem, keep=result)
        return result

    def _emit_address_of(self, operand: ast.Expr) -> Register:
        b = self.builder
        if isinstance(operand, ast.Ident):
            name = operand.name
            reg = self._alloc_reg()
            if name in self.locals:
                b.lea(Reg(reg), Mem(base=Register.FP, disp=self.locals[name].offset))
                return reg
            if name in self.global_types:
                b.mov(Reg(reg), Label(name))
                return reg
            if name in self.defined_functions:
                b.mov(Reg(reg), Label(name))
                return reg
            raise CodegenError(f"cannot take the address of unknown name {name!r}")
        if isinstance(operand, ast.Index):
            mem, _ = self._lvalue_index(operand)
            reg = self._alloc_reg()
            b.lea(Reg(reg), mem)
            self._release_mem_registers(mem, keep=reg)
            return reg
        raise CodegenError("'&' requires a variable, function or array element")

    def _emit_binary(self, expr: ast.Binary) -> Register:
        b = self.builder
        op = expr.op
        if op in _RELATIONAL_CCS or op in ("&&", "||"):
            return self._emit_boolean_value(expr)
        if op not in _ALU_OPS:
            raise CodegenError(f"unsupported binary operator {op!r}")
        left = self._emit_expression(expr.left)
        simple = self._as_simple_operand(expr.right)
        if simple is not None:
            self.builder.emit(make_alu(_ALU_OPS[op], Reg(left), simple))
            return left
        right = self._emit_expression(expr.right)
        self.builder.emit(make_alu(_ALU_OPS[op], Reg(left), Reg(right)))
        self._free_reg(right)
        return left

    def _emit_boolean_value(self, expr: ast.Expr) -> Register:
        b = self.builder
        reg = self._alloc_reg()
        true_label = b.fresh_label("btrue")
        end_label = b.fresh_label("bend")
        self._branch_if_true(expr, true_label)
        b.mov(Reg(reg), Imm(0))
        b.jmp(end_label)
        b.label(true_label)
        b.mov(Reg(reg), Imm(1))
        b.label(end_label)
        return reg

    def _emit_assign(self, expr: ast.Assign) -> Register:
        b = self.builder
        mem, size = self._lvalue(expr.target)
        value = self._emit_expression(expr.value)
        if expr.op != "=":
            current = self._alloc_reg()
            b.load(Reg(current), mem, size=size)
            opcode = _ALU_OPS[expr.op[:-1]]
            b.emit(make_alu(opcode, Reg(current), Reg(value)))
            self._free_reg(value)
            value = current
        b.store(mem, Reg(value), size=size)
        self._release_mem_registers(mem, keep=value)
        return value

    def _emit_call(self, expr: ast.Call) -> Register:
        b = self.builder

        # Evaluate arguments into scratch registers first.
        arg_regs: List[Register] = []
        for arg in expr.args:
            arg_regs.append(self._emit_expression(arg))

        # Preserve any other live scratch registers across the call.
        saved = [r for r in self._in_use if r not in arg_regs]
        for reg in saved:
            b.push(Reg(reg))

        # Arguments beyond the register convention go on the stack, pushed
        # in reverse order so the first stack argument sits closest to the
        # callee's frame.
        register_args = arg_regs[:len(ARG_REGISTERS)]
        stack_args = arg_regs[len(ARG_REGISTERS):]
        for reg in reversed(stack_args):
            b.push(Reg(reg))
        for index, reg in enumerate(register_args):
            b.mov(Reg(ARG_REGISTERS[index]), Reg(reg))
        for reg in arg_regs:
            self._free_reg(reg)

        callee = expr.callee
        if isinstance(callee, ast.Ident) and callee.name in self.defined_functions:
            b.call(callee.name)
        elif isinstance(callee, ast.Ident) and callee.name in self.externals:
            b.ecall(callee.name)
        else:
            # Indirect call through a function-pointer expression.
            target = self._emit_expression(callee)
            b.icall(Reg(target))
            self._free_reg(target)

        if stack_args:
            b.add(Reg(Register.SP), Imm(8 * len(stack_args)))
        for reg in reversed(saved):
            b.pop(Reg(reg))

        result = self._alloc_reg()
        b.mov(Reg(result), Reg(RETURN_REGISTER))
        return result

    # ------------------------------------------------------------------ lvalues
    def _lvalue(self, expr: ast.Expr) -> Tuple[Mem, int]:
        """Lower an assignable expression to a memory operand and access size."""
        if isinstance(expr, ast.Ident):
            name = expr.name
            if name in self.locals:
                slot = self.locals[name]
                if slot.ctype.is_array:
                    raise CodegenError(f"cannot assign to array {name!r}")
                return Mem(base=Register.FP, disp=slot.offset), 8
            if name in self.global_types:
                ctype = self.global_types[name]
                if ctype.is_array:
                    raise CodegenError(f"cannot assign to array {name!r}")
                return Mem(disp=Label(name)), 8
            raise CodegenError(f"unknown identifier {name!r}")
        if isinstance(expr, ast.Index):
            return self._lvalue_index(expr)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            ptr = self._emit_expression(expr.operand)
            size = 1 if self._expr_type(expr.operand).base == "byte" else 8
            return Mem(base=ptr), size
        raise CodegenError(f"expression is not assignable: {type(expr).__name__}")

    def _lvalue_index(self, expr: ast.Index) -> Tuple[Mem, int]:
        b = self.builder
        base = expr.base
        base_type = self._expr_type(base)
        element_size = base_type.element_size

        index_reg = self._emit_expression(expr.index)
        scale = element_size if element_size in (1, 2, 4, 8) else 1

        if isinstance(base, ast.Ident) and base.name in self.global_types \
                and self.global_types[base.name].is_array:
            return Mem(index=index_reg, scale=scale, disp=Label(base.name)), element_size
        if isinstance(base, ast.Ident) and base.name in self.locals \
                and self.locals[base.name].ctype.is_array:
            addr = self._alloc_reg()
            b.lea(Reg(addr), Mem(base=Register.FP, disp=self.locals[base.name].offset))
            return Mem(base=addr, index=index_reg, scale=scale), element_size
        # Generic pointer expression.
        ptr = self._emit_expression(base)
        return Mem(base=ptr, index=index_reg, scale=scale), element_size

    def _release_mem_registers(self, mem: Mem, keep: Optional[Register] = None) -> None:
        """Free scratch registers used to form a memory operand."""
        for reg in mem.registers():
            if reg is Register.FP or reg is Register.SP:
                continue
            if keep is not None and reg == keep:
                continue
            self._free_reg(reg)

    # ------------------------------------------------------------------ types
    def _expr_type(self, expr: ast.Expr) -> ast.CType:
        if isinstance(expr, ast.Ident):
            if expr.name in self.locals:
                return self.locals[expr.name].ctype
            if expr.name in self.global_types:
                return self.global_types[expr.name]
            return ast.INT
        if isinstance(expr, ast.Index):
            base_type = self._expr_type(expr.base)
            return ast.CType(base_type.base)
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                return ast.CType(self._expr_type(expr.operand).base)
            if expr.op == "&":
                inner = self._expr_type(expr.operand)
                return ast.CType(inner.base, pointer=True)
            return self._expr_type(expr.operand) if expr.operand else ast.INT
        if isinstance(expr, ast.Binary):
            left = self._expr_type(expr.left)
            if left.pointer or left.is_array:
                return left
            return self._expr_type(expr.right)
        if isinstance(expr, ast.Assign):
            return self._expr_type(expr.target)
        if isinstance(expr, ast.Number):
            return ast.INT
        if isinstance(expr, ast.StringLit):
            return ast.CType("byte", pointer=True)
        return ast.INT


#: Unsigned equivalents of the signed relational condition codes.
_UNSIGNED_CCS = {
    ConditionCode.LT: ConditionCode.B,
    ConditionCode.LE: ConditionCode.BE,
    ConditionCode.GT: ConditionCode.A,
    ConditionCode.GE: ConditionCode.AE,
}
