"""Compiler driver: mini-C source to a TELF binary."""

from __future__ import annotations

from typing import Optional

from repro.isa.assembler import AsmProgram, Assembler
from repro.loader.binary_format import TelfBinary
from repro.loader.layout import MemoryLayout
from repro.minic.codegen import CodeGenerator, CompilerOptions
from repro.minic.parser import parse_source


def compile_to_module(source: str,
                      options: Optional[CompilerOptions] = None) -> AsmProgram:
    """Compile mini-C source to an assembly-level program (pre-layout)."""
    program = parse_source(source)
    generator = CodeGenerator(program, options)
    return generator.generate()


def compile_source(
    source: str,
    options: Optional[CompilerOptions] = None,
    layout: Optional[MemoryLayout] = None,
) -> TelfBinary:
    """Compile mini-C source all the way to a TELF binary image.

    This is the analogue of running the paper's clang toolchain: the result
    is the "COTS binary" the rest of the pipeline works with — Teapot and
    the baselines never see the source.
    """
    asm_program = compile_to_module(source, options)
    return Assembler(layout).assemble(asm_program)
