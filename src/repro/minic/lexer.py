"""Lexer for the mini-C language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class LexerError(ValueError):
    """Raised on malformed source text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    """Token categories."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "int", "byte", "void", "if", "else", "while", "for", "return",
    "break", "continue", "switch", "case", "default", "global",
}

#: Multi-character punctuation, longest first so maximal munch works.
PUNCTUATION = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ":", "?",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    value: int = 0
    line: int = 0
    column: int = 0

    def is_punct(self, text: str) -> bool:
        """Whether this token is the given punctuation."""
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        """Whether this token is the given keyword."""
        return self.kind is TokenKind.KEYWORD and self.text == text


class Lexer:
    """Converts mini-C source text into a token list."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        """Tokenize the whole input (ending with an EOF token)."""
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internals ------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._peek() and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if not self._peek():
                    raise LexerError("unterminated block comment", self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, "", line=line, column=column)
        if ch.isalpha() or ch == "_":
            return self._lex_ident(line, column)
        if ch.isdigit():
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        for punct in PUNCTUATION:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line=line, column=column)
        raise LexerError(f"unexpected character {ch!r}", line, column)

    def _lex_ident(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line=line, column=column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            text = self.source[start:self.pos]
            value = int(text)
        return Token(TokenKind.NUMBER, text, value=value, line=line, column=column)

    _ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise LexerError("unterminated string literal", line, column)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                if esc not in self._ESCAPES:
                    raise LexerError(f"unknown escape \\{esc}", self.line, self.column)
                chars.append(chr(self._ESCAPES[esc]))
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        return Token(TokenKind.STRING, "".join(chars), line=line, column=column)

    def _lex_char(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            esc = self._peek()
            if esc not in self._ESCAPES:
                raise LexerError(f"unknown escape \\{esc}", self.line, self.column)
            value = self._ESCAPES[esc]
            self._advance()
        else:
            if not ch:
                raise LexerError("unterminated character literal", line, column)
            value = ord(ch)
            self._advance()
        if self._peek() != "'":
            raise LexerError("unterminated character literal", line, column)
        self._advance()
        return Token(TokenKind.CHAR, chr(value), value=value, line=line, column=column)
