"""Abstract syntax tree node definitions for mini-C."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CType:
    """A mini-C type: ``int``/``byte``/``void``, optionally pointer or array."""

    base: str                      # "int" | "byte" | "void"
    pointer: bool = False
    array_size: Optional[int] = None

    @property
    def is_array(self) -> bool:
        """Whether this is a fixed-size array type."""
        return self.array_size is not None

    @property
    def element_size(self) -> int:
        """Size in bytes of one element (for arrays, pointers and scalars)."""
        return 1 if self.base == "byte" else 8

    @property
    def storage_size(self) -> int:
        """Bytes of storage a variable of this type occupies."""
        if self.is_array:
            return self.element_size * self.array_size
        return 8  # scalars and pointers occupy a full word slot

    def __str__(self) -> str:
        text = self.base
        if self.pointer:
            text += "*"
        if self.is_array:
            text += f"[{self.array_size}]"
        return text


INT = CType("int")
BYTE = CType("byte")
VOID = CType("void")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    """Base class for expressions."""

    line: int = 0


@dataclass
class Number(Expr):
    """Integer literal."""

    value: int = 0


@dataclass
class StringLit(Expr):
    """String literal (evaluates to the address of a NUL-terminated rodata blob)."""

    value: bytes = b""


@dataclass
class Ident(Expr):
    """Variable or function reference."""

    name: str = ""


@dataclass
class Unary(Expr):
    """Unary operation: ``- ! ~ * &`` plus prefix/postfix ``++``/``--``."""

    op: str = ""
    operand: Optional[Expr] = None
    postfix: bool = False


@dataclass
class Binary(Expr):
    """Binary operation."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """Assignment (possibly compound: ``+=``, ``<<=``, ...)."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: str = "="


@dataclass
class Call(Expr):
    """Function call; ``callee`` may be a function name or a pointer variable."""

    callee: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array/pointer indexing: ``base[index]``."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    """Base class for statements."""

    line: int = 0


@dataclass
class Block(Stmt):
    """A brace-delimited statement list."""

    statements: List[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects."""

    expr: Optional[Expr] = None


@dataclass
class VarDecl(Stmt):
    """A local variable declaration with optional initialiser."""

    ctype: CType = INT
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class If(Stmt):
    """``if``/``else``."""

    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """``while`` loop."""

    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    """``for`` loop."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    """``return`` with optional value."""

    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """``break``."""


@dataclass
class Continue(Stmt):
    """``continue``."""


@dataclass
class SwitchCase:
    """One ``case`` arm of a switch."""

    value: int
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    """``switch`` statement (no fall-through: each arm ends implicitly)."""

    expr: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)
    default: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

@dataclass
class Param:
    """A function parameter."""

    ctype: CType
    name: str


@dataclass
class FunctionDecl:
    """A function definition."""

    name: str
    return_type: CType
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None
    line: int = 0


@dataclass
class GlobalDecl:
    """A global variable or array definition."""

    ctype: CType
    name: str
    #: scalar initialiser, list of element values, or bytes for byte arrays.
    init: Union[None, int, List[int], bytes] = None
    line: int = 0


@dataclass
class Program:
    """A whole translation unit."""

    functions: List[FunctionDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)

    def function(self, name: str) -> FunctionDecl:
        """Look up a function by name.

        Raises:
            KeyError: if the function is not defined.
        """
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")
