"""Streaming result ingestion: merge worker results as they complete.

The batch schedulers merge a whole round at once (``pool.map`` hands
results back in job order).  The service gets completions in *arrival*
order — whichever worker finishes first — but
:meth:`repro.fuzzing.corpus.Corpus.merge` is coverage-novelty greedy and
therefore order-dependent, so merging out of order would change corpus
contents and downstream seeds.  The :class:`StreamingIngestor` restores
determinism with an ordered-prefix buffer: results are held per job and
folded into the campaign state with
:func:`repro.campaign.scheduler.merge_worker_result` the moment the
*next job in round order* is available.  The merged prefix grows as
completions trickle in, and the final state is bit-identical to a
serial run's.

Round boundaries trigger the same durability work the batch scheduler
does between rounds: ``completed_rounds`` advances, the checkpoint file
is rewritten atomically, and a metrics snapshot lands in the campaign's
run directory so ``repro runs show`` / ``repro monitor`` observe the
live service.

The ingestor is also where a job's *distributed* lifecycle lands in the
campaign trace: ``offer`` accepts the completion record's observability
block (submit/claim/complete timestamps, worker, attempt, the trace
context stamped at submit) and, at the moment the result merges, writes
three cross-process spans — ``job/queue_wait``, ``job/execute`` and
``job/ingest_lag`` — plus one ``job_lifecycle`` event into the run
directory's ``trace.jsonl``.  Span ids derive deterministically from
(trace id, fingerprint, phase, attempt), so a crash-replayed attempt
reconstructs the same ids while a genuine retry gets fresh ones, and
``repro stats`` aggregates the phases into queue-wait vs execution vs
ingest-lag percentiles.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.campaign.scheduler import ProgressFn, merge_worker_result
from repro.campaign.spec import JobSpec
from repro.campaign.store import CampaignState
from repro.campaign.worker import WorkerResult
from repro.telemetry.tracing import derive_span_id


class StreamingIngestor:
    """Order-preserving incremental merge into one campaign's state."""

    def __init__(
        self,
        state: CampaignState,
        telemetry=None,
        progress: Optional[ProgressFn] = None,
        checkpoint_path: Optional[str] = None,
        run_dir=None,
    ) -> None:
        self.state = state
        self.telemetry = telemetry
        self.progress = progress
        self.checkpoint_path = checkpoint_path
        self.run_dir = run_dir
        #: job ids of the active round, in deterministic round order.
        self._order: List[str] = []
        #: index into :attr:`_order` of the next job to merge.
        self._next = 0
        self._buffer: Dict[str, WorkerResult] = {}
        #: per-job lifecycle blocks awaiting their merge (trace emission).
        self._lifecycles: Dict[str, Dict[str, object]] = {}
        #: results merged since construction (across rounds).
        self.merged = 0
        #: unique gadget sites discovered since construction.
        self.new_sites = 0

    # -- round protocol ------------------------------------------------------
    def begin_round(self, jobs: List[JobSpec]) -> None:
        """Arm the ingestor with one round's jobs (defines merge order)."""
        if not self.round_complete:
            raise RuntimeError("previous round still has unmerged jobs")
        self._order = [job.job_id for job in jobs]
        self._next = 0
        self._buffer.clear()
        self._lifecycles.clear()

    @property
    def round_complete(self) -> bool:
        return self._next >= len(self._order)

    def offer(self, result: WorkerResult,
              lifecycle: Optional[Dict[str, object]] = None) -> int:
        """Buffer one completion; merge every newly-contiguous prefix job.

        Returns the number of results merged by this call (0 when the
        result arrived ahead of an unfinished predecessor).  ``lifecycle``
        is the completion record's observability block (timestamps,
        worker, attempt, trace context); when the job's turn to merge
        comes, it becomes cross-process spans in the campaign trace.
        """
        self._buffer[result.job_id] = result
        if lifecycle is not None:
            self._lifecycles[result.job_id] = lifecycle
        merged = 0
        while (self._next < len(self._order)
               and self._order[self._next] in self._buffer):
            job_id = self._order[self._next]
            ready = self._buffer.pop(job_id)
            site_count = merge_worker_result(self.state, ready,
                                             telemetry=self.telemetry,
                                             progress=self.progress)
            self._emit_lifecycle(ready, self._lifecycles.pop(job_id, None))
            self.new_sites += site_count
            self.merged += 1
            self._next += 1
            merged += 1
        if merged and self.run_dir is not None and self.telemetry is not None:
            # Live observability: refresh metrics/latest.json as the
            # merged prefix grows, not just at round boundaries.
            self.run_dir.write_metrics_snapshot(self.telemetry)
        return merged

    def _emit_lifecycle(self, result: WorkerResult,
                        lifecycle: Optional[Dict[str, object]]) -> None:
        """Reconstruct one job's submit→claim→execute→complete→ingest
        journey as spans + one ``job_lifecycle`` event in the trace."""
        if lifecycle is None or self.telemetry is None:
            return
        trace = getattr(self.telemetry, "trace", None)
        if trace is None:
            return
        context = lifecycle.get("trace")
        context = context if isinstance(context, dict) else {}
        trace_id = str(context.get("trace_id", "") or "")
        attempt = int(lifecycle.get("attempt", 1) or 1)
        fingerprint = str(lifecycle.get("fingerprint", "") or "")

        def _ts(name: str) -> Optional[float]:
            value = lifecycle.get(name)
            return float(value) if isinstance(value, (int, float)) else None

        enqueued, claimed = _ts("enqueued_at"), _ts("claimed_at")
        completed = _ts("completed_at")
        exec_s = _ts("exec_elapsed_s")
        ingested = time.time()
        common: Dict[str, object] = {
            "job_id": result.job_id,
            "fingerprint": fingerprint,
            "attempt": attempt,
            "worker": lifecycle.get("worker"),
        }
        if trace_id:
            common["trace_id"] = trace_id
            common["parent_span_id"] = context.get("span_id")

        def _span(phase: str, name: str, elapsed: Optional[float]) -> None:
            if elapsed is None:
                return
            fields = dict(common)
            if trace_id:
                fields["span_id"] = derive_span_id(trace_id, fingerprint,
                                                   phase, attempt)
            trace.merge_span(name, f"job/{name}", elapsed, **fields)

        if enqueued is not None and claimed is not None:
            _span("queue_wait", "queue_wait", claimed - enqueued)
        _span("execute", "execute", exec_s)
        if completed is not None:
            _span("ingest_lag", "ingest_lag", ingested - completed)
        trace.event(
            "job_lifecycle",
            submitted_ts=enqueued, claimed_ts=claimed,
            completed_ts=completed, ingested_ts=round(ingested, 6),
            queue_wait_s=(round(max(0.0, claimed - enqueued), 6)
                          if enqueued is not None and claimed is not None
                          else None),
            exec_s=exec_s,
            ingest_lag_s=(round(max(0.0, ingested - completed), 6)
                          if completed is not None else None),
            **common)

    def finish_round(self) -> None:
        """Round barrier: advance counters, checkpoint, snapshot."""
        if not self.round_complete:
            raise RuntimeError(
                f"round incomplete: merged {self._next} of "
                f"{len(self._order)} jobs")
        self.state.completed_rounds += 1
        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.gauge("campaign.rounds_completed").set(
                self.state.completed_rounds)
            if self.telemetry.heartbeat is not None:
                self.telemetry.heartbeat.maybe_beat(force=True)
        if self.checkpoint_path:
            self.state.save(self.checkpoint_path)
            if self.telemetry is not None:
                self.telemetry.registry.counter(
                    "campaign.checkpoint_writes").inc()
        if self.run_dir is not None and self.telemetry is not None:
            self.run_dir.write_metrics_snapshot(self.telemetry)
