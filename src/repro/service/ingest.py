"""Streaming result ingestion: merge worker results as they complete.

The batch schedulers merge a whole round at once (``pool.map`` hands
results back in job order).  The service gets completions in *arrival*
order — whichever worker finishes first — but
:meth:`repro.fuzzing.corpus.Corpus.merge` is coverage-novelty greedy and
therefore order-dependent, so merging out of order would change corpus
contents and downstream seeds.  The :class:`StreamingIngestor` restores
determinism with an ordered-prefix buffer: results are held per job and
folded into the campaign state with
:func:`repro.campaign.scheduler.merge_worker_result` the moment the
*next job in round order* is available.  The merged prefix grows as
completions trickle in, and the final state is bit-identical to a
serial run's.

Round boundaries trigger the same durability work the batch scheduler
does between rounds: ``completed_rounds`` advances, the checkpoint file
is rewritten atomically, and a metrics snapshot lands in the campaign's
run directory so ``repro runs show`` / ``repro monitor`` observe the
live service.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.campaign.scheduler import ProgressFn, merge_worker_result
from repro.campaign.spec import JobSpec
from repro.campaign.store import CampaignState
from repro.campaign.worker import WorkerResult


class StreamingIngestor:
    """Order-preserving incremental merge into one campaign's state."""

    def __init__(
        self,
        state: CampaignState,
        telemetry=None,
        progress: Optional[ProgressFn] = None,
        checkpoint_path: Optional[str] = None,
        run_dir=None,
    ) -> None:
        self.state = state
        self.telemetry = telemetry
        self.progress = progress
        self.checkpoint_path = checkpoint_path
        self.run_dir = run_dir
        #: job ids of the active round, in deterministic round order.
        self._order: List[str] = []
        #: index into :attr:`_order` of the next job to merge.
        self._next = 0
        self._buffer: Dict[str, WorkerResult] = {}
        #: results merged since construction (across rounds).
        self.merged = 0
        #: unique gadget sites discovered since construction.
        self.new_sites = 0

    # -- round protocol ------------------------------------------------------
    def begin_round(self, jobs: List[JobSpec]) -> None:
        """Arm the ingestor with one round's jobs (defines merge order)."""
        if not self.round_complete:
            raise RuntimeError("previous round still has unmerged jobs")
        self._order = [job.job_id for job in jobs]
        self._next = 0
        self._buffer.clear()

    @property
    def round_complete(self) -> bool:
        return self._next >= len(self._order)

    def offer(self, result: WorkerResult) -> int:
        """Buffer one completion; merge every newly-contiguous prefix job.

        Returns the number of results merged by this call (0 when the
        result arrived ahead of an unfinished predecessor).
        """
        self._buffer[result.job_id] = result
        merged = 0
        while (self._next < len(self._order)
               and self._order[self._next] in self._buffer):
            ready = self._buffer.pop(self._order[self._next])
            site_count = merge_worker_result(self.state, ready,
                                             telemetry=self.telemetry,
                                             progress=self.progress)
            self.new_sites += site_count
            self.merged += 1
            self._next += 1
            merged += 1
        if merged and self.run_dir is not None and self.telemetry is not None:
            # Live observability: refresh metrics/latest.json as the
            # merged prefix grows, not just at round boundaries.
            self.run_dir.write_metrics_snapshot(self.telemetry)
        return merged

    def finish_round(self) -> None:
        """Round barrier: advance counters, checkpoint, snapshot."""
        if not self.round_complete:
            raise RuntimeError(
                f"round incomplete: merged {self._next} of "
                f"{len(self._order)} jobs")
        self.state.completed_rounds += 1
        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.gauge("campaign.rounds_completed").set(
                self.state.completed_rounds)
            if self.telemetry.heartbeat is not None:
                self.telemetry.heartbeat.maybe_beat(force=True)
        if self.checkpoint_path:
            self.state.save(self.checkpoint_path)
            if self.telemetry is not None:
                self.telemetry.registry.counter(
                    "campaign.checkpoint_writes").inc()
        if self.run_dir is not None and self.telemetry is not None:
            self.run_dir.write_metrics_snapshot(self.telemetry)
