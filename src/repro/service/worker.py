"""The worker fleet: threads pulling leased jobs off the durable queue.

Each :class:`ServiceWorker` loops claim → execute → complete against one
:class:`~repro.service.queue.JobQueue`.  Execution goes through the
ordinary :func:`repro.campaign.worker.execute_task` entry point, so the
per-job timeout/retry policy, telemetry capture and error boxing are
exactly the batch schedulers' (an exception becomes an error-carrying
:class:`~repro.campaign.worker.WorkerResult`, recorded as a failed job —
it never poisons the queue).

A shared :class:`WorkerFleet` heartbeat thread renews every in-flight
lease at a third of the visibility timeout, so leases only expire when a
worker has genuinely stopped making progress (crashed, killed, hung past
its job timeout).  When that happens the queue re-offers the job and
another worker replays it from its derived seed — results are
deterministic, so the retry merges identically.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.campaign.worker import WorkerResult, execute_task
from repro.service.queue import JobLease, JobQueue


class ServiceWorker(threading.Thread):
    """One queue consumer; a daemon thread with a cooperative stop flag."""

    def __init__(
        self,
        queue: JobQueue,
        name: str = "worker",
        visibility_timeout: float = 30.0,
        poll_interval: float = 0.05,
        stop_event: Optional[threading.Event] = None,
    ) -> None:
        super().__init__(name=f"repro-service-{name}", daemon=True)
        self.queue = queue
        self.worker_name = name
        self.visibility_timeout = visibility_timeout
        self.poll_interval = poll_interval
        self.stop_event = stop_event or threading.Event()
        #: jobs this worker completed (observability only).
        self.completed = 0
        self._lease_lock = threading.Lock()
        self._active: Optional[Tuple[str, str]] = None  # (fingerprint, token)

    # -- lifecycle -----------------------------------------------------------
    def run(self) -> None:
        while not self.stop_event.is_set():
            token = self.queue.change_token()
            lease = self.queue.claim(self.worker_name,
                                     self.visibility_timeout)
            if lease is None:
                # Wake on the next submit/release instead of burning the
                # full poll interval (which still bounds the wait — other
                # processes feeding the queue can't signal us).
                self.queue.wait_for_change(token, self.poll_interval)
                continue
            with self._lease_lock:
                self._active = (lease.fingerprint, lease.token)
            try:
                result = self._execute(lease)
                if self.queue.complete(lease.fingerprint, lease.token,
                                       result.to_dict()):
                    self.completed += 1
            except BaseException as error:  # noqa: BLE001 - keep consuming
                # execute_task boxes job errors; anything reaching here is
                # fleet-level (a test-injected crash, interpreter teardown).
                # Release the job for someone else and keep the loop alive.
                self.queue.fail(lease.fingerprint, lease.token,
                                f"{type(error).__name__}: {error}")
            finally:
                with self._lease_lock:
                    self._active = None

    def _execute(self, lease: JobLease) -> WorkerResult:
        """Run one leased job (overridable: crash tests substitute this)."""
        return execute_task((lease.job_spec(), lease.seeds()))

    # -- heartbeat support ----------------------------------------------------
    def active_lease(self) -> Optional[Tuple[str, str]]:
        with self._lease_lock:
            return self._active

    def stop(self) -> None:
        self.stop_event.set()


class WorkerFleet:
    """N workers plus the heartbeat that keeps their leases alive."""

    def __init__(self, queue: JobQueue, count: int = 2,
                 visibility_timeout: float = 30.0,
                 poll_interval: float = 0.05) -> None:
        self.queue = queue
        self.visibility_timeout = visibility_timeout
        self._stop = threading.Event()
        self.workers: List[ServiceWorker] = [
            ServiceWorker(queue, name=f"w{index}",
                          visibility_timeout=visibility_timeout,
                          poll_interval=poll_interval,
                          stop_event=self._stop)
            for index in range(max(1, count))
        ]
        self._heartbeat: Optional[threading.Thread] = None

    def start(self) -> "WorkerFleet":
        for worker in self.workers:
            worker.start()
        if self._heartbeat is None:
            self._heartbeat = threading.Thread(
                target=self._renew_loop, name="repro-service-heartbeat",
                daemon=True)
            self._heartbeat.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for worker in self.workers:
            worker.join(timeout=timeout)
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=timeout)
            self._heartbeat = None

    def _renew_loop(self) -> None:
        interval = max(0.05, self.visibility_timeout / 3.0)
        while not self._stop.wait(interval):
            for worker in self.workers:
                active = worker.active_lease()
                if active is None or not worker.is_alive():
                    # A dead worker's lease is deliberately left to
                    # expire: that is the crash-recovery path.
                    continue
                fingerprint, token = active
                self.queue.renew(fingerprint, token,
                                 self.visibility_timeout)

    def counts(self) -> Dict[str, int]:
        return {
            "workers": len(self.workers),
            "alive": sum(1 for worker in self.workers if worker.is_alive()),
            "busy": sum(1 for worker in self.workers
                        if worker.active_lease() is not None),
            "completed": sum(worker.completed for worker in self.workers),
        }
