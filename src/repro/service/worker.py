"""The worker fleet: threads pulling leased jobs off the durable queue.

Each :class:`ServiceWorker` loops claim → execute → complete against one
:class:`~repro.service.queue.JobQueue`.  Execution goes through the
ordinary :func:`repro.campaign.worker.execute_task` entry point, so the
per-job timeout/retry policy, telemetry capture and error boxing are
exactly the batch schedulers' (an exception becomes an error-carrying
:class:`~repro.campaign.worker.WorkerResult`, recorded as a failed job —
it never poisons the queue).

A shared :class:`WorkerFleet` heartbeat thread renews every in-flight
lease at a third of the visibility timeout, so leases only expire when a
worker has genuinely stopped making progress (crashed, killed, hung past
its job timeout).  When that happens the queue re-offers the job and
another worker replays it from its derived seed — results are
deterministic, so the retry merges identically.

Observability: each worker tracks its last-heartbeat instant, its
cumulative busy seconds and the job it currently holds; the fleet's
:meth:`WorkerFleet.describe` turns that into the ``/v1/fleet`` rows
(heartbeat age, utilization, current job).  With observability enabled
(``meta=True``, the service default) a completing worker attaches the
observability ``meta`` block — attempt, claim/execute timing, the
echoed trace context — that the ingestor merges into the campaign's
trace as cross-process lifecycle spans.  With it disabled the complete
call is byte-identical to schema v1.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.campaign.worker import WorkerResult, execute_task
from repro.service.queue import JobLease, JobQueue


class ServiceWorker(threading.Thread):
    """One queue consumer; a daemon thread with a cooperative stop flag."""

    def __init__(
        self,
        queue: JobQueue,
        name: str = "worker",
        visibility_timeout: float = 30.0,
        poll_interval: float = 0.05,
        stop_event: Optional[threading.Event] = None,
        registry=None,
        log=None,
        meta: bool = True,
    ) -> None:
        super().__init__(name=f"repro-service-{name}", daemon=True)
        self.queue = queue
        self.worker_name = name
        self.visibility_timeout = visibility_timeout
        self.poll_interval = poll_interval
        self.stop_event = stop_event or threading.Event()
        self.registry = registry
        self.log = log
        self.meta = meta
        #: jobs this worker completed (observability only).
        self.completed = 0
        #: wall-clock seconds spent executing jobs (observability only).
        self.busy_s = 0.0
        self.started_at: Optional[float] = None
        self.last_heartbeat: Optional[float] = None
        self._lease_lock = threading.Lock()
        self._active: Optional[Tuple[str, str]] = None  # (fingerprint, token)
        self._current: Optional[Dict[str, object]] = None

    # -- lifecycle -----------------------------------------------------------
    def run(self) -> None:
        self.started_at = self.last_heartbeat = time.time()
        while not self.stop_event.is_set():
            self.last_heartbeat = time.time()
            token = self.queue.change_token()
            lease = self.queue.claim(self.worker_name,
                                     self.visibility_timeout)
            if lease is None:
                # Wake on the next submit/release instead of burning the
                # full poll interval (which still bounds the wait — other
                # processes feeding the queue can't signal us).
                self.queue.wait_for_change(token, self.poll_interval)
                continue
            with self._lease_lock:
                self._active = (lease.fingerprint, lease.token)
                self._current = {
                    "fingerprint": lease.fingerprint,
                    "job_id": str(lease.record.get("job", {}).get(
                        "job_id", "")) or None,
                    "campaign_id": lease.campaign_id,
                    "attempt": lease.attempt,
                    "claimed_at": lease.claimed_at,
                }
            started = time.perf_counter()
            try:
                result = self._execute(lease)
                elapsed = time.perf_counter() - started
                meta = self._meta_block(lease, elapsed) if self.meta else None
                if self.queue.complete(lease.fingerprint, lease.token,
                                       result.to_dict(), meta=meta):
                    self.completed += 1
                    if self.registry is not None:
                        self.registry.counter(
                            "service.worker.jobs_completed").inc()
                        from repro.telemetry.metrics import LATENCY_BUCKETS_S
                        self.registry.histogram(
                            "service.job.exec_s",
                            buckets=LATENCY_BUCKETS_S).observe(elapsed)
            except BaseException as error:  # noqa: BLE001 - keep consuming
                # execute_task boxes job errors; anything reaching here is
                # fleet-level (a test-injected crash, interpreter teardown).
                # Release the job for someone else and keep the loop alive.
                elapsed = time.perf_counter() - started
                if self.log is not None:
                    self.log.error(
                        "worker_error", worker=self.worker_name,
                        fingerprint=lease.fingerprint,
                        error=f"{type(error).__name__}: {error}")
                self.queue.fail(lease.fingerprint, lease.token,
                                f"{type(error).__name__}: {error}")
            finally:
                self.busy_s += time.perf_counter() - started
                self.last_heartbeat = time.time()
                with self._lease_lock:
                    self._active = None
                    self._current = None

    def _execute(self, lease: JobLease) -> WorkerResult:
        """Run one leased job (overridable: crash tests substitute this)."""
        return execute_task((lease.job_spec(), lease.seeds()))

    def _meta_block(self, lease: JobLease,
                    exec_elapsed_s: float) -> Dict[str, object]:
        """The completion-record observability block (schema v2)."""
        meta: Dict[str, object] = {
            "worker": self.worker_name,
            "attempt": lease.attempt,
            "claimed_at": lease.claimed_at,
            "exec_elapsed_s": round(exec_elapsed_s, 6),
        }
        enqueued = lease.record.get("enqueued_at")
        if isinstance(enqueued, (int, float)):
            meta["enqueued_at"] = enqueued
        trace = lease.trace_context()
        if trace is not None:
            meta["trace"] = dict(trace)
        return meta

    # -- heartbeat support ----------------------------------------------------
    def active_lease(self) -> Optional[Tuple[str, str]]:
        with self._lease_lock:
            return self._active

    def current_job(self) -> Optional[Dict[str, object]]:
        """The job this worker holds right now (None when idle)."""
        with self._lease_lock:
            return dict(self._current) if self._current is not None else None

    def describe(self, now: Optional[float] = None) -> Dict[str, object]:
        """One ``/v1/fleet`` row: liveness, utilization, current job."""
        now = time.time() if now is None else now
        uptime = max(0.0, now - self.started_at) if self.started_at else 0.0
        record: Dict[str, object] = {
            "name": self.worker_name,
            "alive": self.is_alive(),
            "busy": self.active_lease() is not None,
            "completed": self.completed,
            "busy_s": round(self.busy_s, 3),
            "uptime_s": round(uptime, 3),
            "utilization": round(self.busy_s / uptime, 4) if uptime else 0.0,
            "heartbeat_age_s": (round(now - self.last_heartbeat, 3)
                                if self.last_heartbeat is not None else None),
            "current_job": self.current_job(),
        }
        return record

    def stop(self) -> None:
        self.stop_event.set()


class WorkerFleet:
    """N workers plus the heartbeat that keeps their leases alive."""

    def __init__(self, queue: JobQueue, count: int = 2,
                 visibility_timeout: float = 30.0,
                 poll_interval: float = 0.05,
                 registry=None, log=None, meta: bool = True) -> None:
        self.queue = queue
        self.visibility_timeout = visibility_timeout
        self.registry = registry
        self._stop = threading.Event()
        self.workers: List[ServiceWorker] = [
            ServiceWorker(queue, name=f"w{index}",
                          visibility_timeout=visibility_timeout,
                          poll_interval=poll_interval,
                          stop_event=self._stop,
                          registry=registry, log=log, meta=meta)
            for index in range(max(1, count))
        ]
        self._heartbeat: Optional[threading.Thread] = None

    def start(self) -> "WorkerFleet":
        for worker in self.workers:
            worker.start()
        if self._heartbeat is None:
            self._heartbeat = threading.Thread(
                target=self._renew_loop, name="repro-service-heartbeat",
                daemon=True)
            self._heartbeat.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for worker in self.workers:
            if worker.ident is not None:  # never-started fleets stop cleanly
                worker.join(timeout=timeout)
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=timeout)
            self._heartbeat = None

    def _renew_loop(self) -> None:
        interval = max(0.05, self.visibility_timeout / 3.0)
        while not self._stop.wait(interval):
            for worker in self.workers:
                active = worker.active_lease()
                if active is None or not worker.is_alive():
                    # A dead worker's lease is deliberately left to
                    # expire: that is the crash-recovery path.
                    continue
                fingerprint, token = active
                if self.queue.renew(fingerprint, token,
                                    self.visibility_timeout):
                    # A successful renew is proof of life for a worker
                    # stuck inside one long job (its loop isn't turning).
                    worker.last_heartbeat = time.time()

    def counts(self) -> Dict[str, int]:
        return {
            "workers": len(self.workers),
            "alive": sum(1 for worker in self.workers if worker.is_alive()),
            "busy": sum(1 for worker in self.workers
                        if worker.active_lease() is not None),
            "completed": sum(worker.completed for worker in self.workers),
        }

    def describe(self) -> List[Dict[str, object]]:
        """Per-worker status rows (the ``/v1/fleet`` body)."""
        now = time.time()
        return [worker.describe(now) for worker in self.workers]

    def observe_gauges(self) -> Dict[str, int]:
        """Refresh ``service.fleet.*`` gauges from the live counts."""
        counts = self.counts()
        if self.registry is not None:
            for name in ("workers", "alive", "busy"):
                self.registry.gauge(f"service.fleet.{name}").set(counts[name])
            for worker in self.workers:
                self.registry.gauge(
                    f"service.worker.utilization.{worker.worker_name}").set(
                        worker.describe().get("utilization", 0.0))
        return counts
