"""``repro serve`` / ``repro submit`` / ``repro status``.

The service's operator surface::

    repro serve --dir service/ --workers 4 --serve 8642
    repro submit --url http://127.0.0.1:8642 --targets gadgets \\
                 --spec-variants pht,btb --iterations 120 --wait
    repro status --url http://127.0.0.1:8642            # all campaigns
    repro status --url ... c0001-ab12cd34 --reports

``serve`` runs a :class:`~repro.service.core.FuzzService` plus its HTTP
API on the foreground thread until interrupted.  ``submit``/``status``
are plain :mod:`urllib` clients of that API — nothing here imports the
heavy campaign machinery, so the client commands work from any checkout
that can reach the server.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Sequence

DEFAULT_PORT = 8642
DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"


def _parse_csv(text: str) -> tuple:
    return tuple(item.strip() for item in text.split(",") if item.strip())


# ---------------------------------------------------------------------------
# HTTP client plumbing (stdlib only)
# ---------------------------------------------------------------------------

def _request(url: str, payload: Optional[Dict[str, object]] = None,
             method: Optional[str] = None) -> Dict[str, object]:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8", "replace")
        try:
            detail = json.loads(body).get("error", body)
        except ValueError:
            detail = body.strip()
        raise RuntimeError(f"HTTP {error.code} from {url}: {detail}")
    except urllib.error.URLError as error:
        raise RuntimeError(f"cannot reach {url}: {error.reason}")


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------

def _serve_parser(sub) -> None:
    serve = sub.add_parser(
        "serve", help="run the fuzzing service (queue + workers + HTTP API)")
    serve.add_argument("--dir", dest="root", default=".repro-service",
                       metavar="PATH",
                       help="service root (queue/, runs/, state/; "
                            "default: .repro-service)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads pulling queued jobs (default: 2)")
    serve.add_argument("--serve", dest="address", default=str(DEFAULT_PORT),
                       metavar="[HOST:]PORT",
                       help=f"HTTP bind address (default: {DEFAULT_PORT})")
    serve.add_argument("--visibility-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="lease duration; a worker silent this long "
                            "loses its job to someone else (default: 30)")
    serve.add_argument("--log-json", metavar="PATH", default=None,
                       help="append structured JSONL logs (trace-correlated "
                            "service events) to PATH ('-' for stderr)")
    serve.add_argument("--log-level", default="info",
                       choices=("debug", "info", "warning", "error"),
                       help="minimum structured-log severity "
                            "(default: info)")
    serve.add_argument("--no-observe", action="store_true",
                       help="disable the service observatory (no metrics, "
                            "no distributed job tracing)")


def _cmd_serve(args: argparse.Namespace) -> int:
    # Heavy imports live here so `repro submit/status` stay client-thin.
    from repro.service.core import FuzzService
    from repro.service.httpapi import ServiceApiServer
    from repro.telemetry.export import parse_address
    from repro.telemetry.logging import StructuredLogger

    host, port = parse_address(args.address, default_port=DEFAULT_PORT)
    log = None
    if args.log_json:
        sink = sys.stderr if args.log_json == "-" else args.log_json
        log = StructuredLogger(sink, level=args.log_level)
    service = FuzzService(args.root, workers=max(1, args.workers),
                          visibility_timeout=args.visibility_timeout,
                          observe=not args.no_observe, log=log)
    service.start()
    server = ServiceApiServer(service, host=host, port=port)
    print(f"[repro] fuzzing service on {server.url} "
          f"({len(service.fleet.workers)} workers, root {service.root})",
          file=sys.stderr)
    service.log.info("service_started", logger="service.cli", url=server.url,
                     workers=len(service.fleet.workers), root=service.root,
                     observe=service.observe)
    try:
        server.serve_forever()
    finally:
        service.stop()
        service.log.info("service_stopped", logger="service.cli")
        if log is not None:
            log.close()
    return 0


# ---------------------------------------------------------------------------
# repro submit
# ---------------------------------------------------------------------------

def _submit_parser(sub) -> None:
    submit = sub.add_parser(
        "submit", help="submit a campaign to a running service")
    submit.add_argument("--url", default=DEFAULT_URL,
                        help=f"service base URL (default: {DEFAULT_URL})")
    submit.add_argument("--spec", metavar="PATH",
                        help="JSON campaign-spec file "
                             "(CampaignSpec.to_dict shape); overrides the "
                             "matrix flags below")
    submit.add_argument("--targets", default="gadgets",
                        help="comma-separated targets (default: gadgets)")
    submit.add_argument("--tools", default="teapot",
                        help="comma-separated tools (default: teapot)")
    submit.add_argument("--variants", default="vanilla",
                        help="binary variants (default: vanilla)")
    submit.add_argument("--spec-variants", default="pht",
                        help="speculation variants (default: pht)")
    submit.add_argument("--iterations", type=int, default=200)
    submit.add_argument("--rounds", type=int, default=2)
    submit.add_argument("--shards", type=int, default=1)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--max-input-size", type=int, default=1024)
    submit.add_argument("--engine", default="fast")
    submit.add_argument("--job-timeout", type=float, default=0.0,
                        metavar="SECONDS", dest="job_timeout",
                        help="per-job wall-clock cap (0 = unlimited)")
    submit.add_argument("--job-retries", type=int, default=0,
                        dest="job_retries", metavar="N",
                        help="in-worker retries per job (default: 0)")
    submit.add_argument("--resume", action="store_true",
                        help="resume from the service-side checkpoint")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the campaign finishes")
    submit.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="poll interval with --wait (default: 0.5)")
    submit.add_argument("--json", action="store_true",
                        help="print the final status record as JSON")


def _spec_record(args: argparse.Namespace) -> Dict[str, object]:
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        if not isinstance(record, dict):
            raise RuntimeError(f"{args.spec} is not a JSON object")
        return record
    record: Dict[str, object] = {
        "targets": list(_parse_csv(args.targets)),
        "tools": list(_parse_csv(args.tools)),
        "variants": list(_parse_csv(args.variants)),
        "spec_variants": list(_parse_csv(args.spec_variants)),
        "iterations": args.iterations,
        "rounds": args.rounds,
        "shards": args.shards,
        "seed": args.seed,
        "max_input_size": args.max_input_size,
        "engine": args.engine,
    }
    if args.job_timeout > 0:
        record["job_timeout_s"] = args.job_timeout
    if args.job_retries > 0:
        record["job_max_attempts"] = 1 + args.job_retries
    return record


def _print_status(record: Dict[str, object], as_json: bool) -> None:
    if as_json:
        print(json.dumps(record, indent=1, sort_keys=True))
        return
    line = (f"campaign {record.get('campaign_id')}: "
            f"{record.get('status')} — "
            f"round {record.get('rounds_completed')}/{record.get('rounds')}, "
            f"jobs {record.get('jobs_done')}/{record.get('jobs_total')}")
    summary = record.get("summary")
    if isinstance(summary, dict):
        groups = summary.get("groups", [])
        gadgets = sum(int(g.get("unique_gadgets", 0)) for g in groups)
        executions = sum(int(g.get("executions", 0)) for g in groups)
        line += (f", {gadgets} unique gadgets "
                 f"over {executions} executions")
    if record.get("error"):
        line += f" ({record['error']})"
    print(line)


def _cmd_submit(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    payload: Dict[str, object] = {"spec": _spec_record(args)}
    if args.resume:
        payload["resume"] = True
    accepted = _request(base + "/v1/campaigns", payload=payload)
    campaign_id = accepted.get("campaign_id")
    if not args.wait:
        _print_status(_request(f"{base}/v1/campaigns/{campaign_id}"),
                      args.json)
        return 0
    while True:
        record = _request(f"{base}/v1/campaigns/{campaign_id}")
        if record.get("status") in ("completed", "failed", "cancelled"):
            _print_status(record, args.json)
            return 0 if record.get("status") == "completed" else 1
        time.sleep(args.poll)


# ---------------------------------------------------------------------------
# repro status
# ---------------------------------------------------------------------------

def _status_parser(sub) -> None:
    status = sub.add_parser(
        "status", help="query a running service's campaigns")
    status.add_argument("campaign_id", nargs="?", default=None,
                        help="one campaign (default: list all)")
    status.add_argument("--url", default=DEFAULT_URL,
                        help=f"service base URL (default: {DEFAULT_URL})")
    status.add_argument("--reports", action="store_true",
                        help="fetch the deduplicated gadget reports too "
                             "(requires a campaign id)")
    status.add_argument("--json", action="store_true")


def _cmd_status(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    if args.campaign_id is None:
        if args.reports:
            print("error: --reports requires a campaign id",
                  file=sys.stderr)
            return 2
        listing = _request(base + "/v1/campaigns")
        campaigns = listing.get("campaigns", [])
        if args.json:
            print(json.dumps(listing, indent=1, sort_keys=True))
        elif not campaigns:
            print("no campaigns submitted")
        else:
            for record in campaigns:
                _print_status(record, as_json=False)
        return 0
    record = _request(f"{base}/v1/campaigns/{args.campaign_id}")
    if args.reports:
        record["reports"] = _request(
            f"{base}/v1/campaigns/{args.campaign_id}/reports")["groups"]
    if args.json:
        print(json.dumps(record, indent=1, sort_keys=True))
    else:
        _print_status(record, as_json=False)
        if args.reports:
            for group, reports in sorted(record["reports"].items()):
                print(f"  {group}: {len(reports)} unique site(s)")
    return 0


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def build_parser(prog: str = "repro") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog, description="fuzzing-as-a-service commands")
    sub = parser.add_subparsers(dest="command", metavar="command",
                                required=True)
    _serve_parser(sub)
    _submit_parser(sub)
    _status_parser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None, prog: str = "repro") -> int:
    parser = build_parser(prog=prog)
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    handler = {"serve": _cmd_serve, "submit": _cmd_submit,
               "status": _cmd_status}[args.command]
    try:
        return handler(args)
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
