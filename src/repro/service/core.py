"""The fuzzing service façade: submit campaigns, drive them, watch them.

A :class:`FuzzService` owns one durable :class:`~repro.service.queue.
JobQueue`, one :class:`~repro.service.worker.WorkerFleet` and one
:class:`~repro.telemetry.runs.RunRegistry` under a single root
directory::

    service-root/
        queue/    # jobs / leases / done  (crash-safe work records)
        runs/     # one telemetry run directory per campaign
        state/    # per-campaign checkpoint files

``submit`` registers a campaign and returns immediately; a driver
thread expands the spec round by round, enqueues each round's jobs with
their corpus shards, and feeds completions to a
:class:`~repro.service.ingest.StreamingIngestor` (which merges them in
job order, so the final summary is bit-identical to the batch
schedulers').  Rounds are sequential by construction — round ``r+1``'s
seeds derive from the corpus merged out of round ``r`` — but every job
*within* a round runs concurrently across the fleet, and completions
merge as they arrive.

The service survives worker deaths (expired leases re-offer jobs) and
its own restarts (checkpoints resume a campaign mid-flight); the HTTP
layer in :mod:`repro.service.httpapi` is a thin veneer over the
``submit``/``status``/``reports``/``cancel`` methods here.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional

from repro._version import __version__
from repro.campaign.scheduler import ProgressFn, seeds_for_job
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignState, group_key_str
from repro.campaign.summary import CampaignSummary, summarize
from repro.campaign.worker import WorkerResult
from repro.service.ingest import StreamingIngestor
from repro.service.queue import JobQueue
from repro.service.worker import WorkerFleet
from repro.telemetry import Telemetry
from repro.telemetry.logging import StructuredLogger
from repro.telemetry.runs import RunRegistry
from repro.telemetry.tracing import derive_span_id, new_trace_id

#: Artifact tag of the ``GET /v1/campaigns/<id>`` status body.
STATUS_KIND = "repro.service/campaign-status"
STATUS_SCHEMA_VERSION = 1

_campaign_seq = itertools.count(1)


class UnknownCampaignError(KeyError):
    """Asked about a campaign id this service never saw."""

    def __str__(self) -> str:
        return self.args[0]


class _Campaign:
    """One submitted campaign's mutable service-side record."""

    def __init__(self, campaign_id: str, spec: CampaignSpec,
                 checkpoint_path: str, run_dir) -> None:
        self.campaign_id = campaign_id
        self.spec = spec
        self.checkpoint_path = checkpoint_path
        self.run_dir = run_dir
        #: distributed-trace id stamped into every queued job record.
        self.trace_id = new_trace_id()
        self.status = "queued"
        self.error = ""
        self.summary: Optional[CampaignSummary] = None
        self.created_at = time.time()
        self.finished_at: Optional[float] = None
        self.jobs_total = 0
        self.jobs_done = 0
        self.rounds_completed = 0
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()
        self.lock = threading.Lock()


class FuzzService:
    """Durable queue + worker fleet + per-campaign driver threads."""

    def __init__(
        self,
        root: str,
        workers: int = 2,
        visibility_timeout: float = 30.0,
        poll_interval: float = 0.02,
        observe: bool = True,
        log: Optional[StructuredLogger] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.started_at = time.time()
        #: ``observe=False`` turns the service observatory off: no
        #: service-level metrics registry, no trace context stamped into
        #: queue records, no lifecycle span merging — queue records stay
        #: byte-identical to schema v1 and the instrumentation cost
        #: drops to a handful of ``is not None`` checks.  Campaign
        #: summaries are bit-identical either way (observation only).
        self.observe = observe
        self.log = log if log is not None else StructuredLogger(None)
        #: service-level telemetry (queue depth, fleet, job latency) —
        #: distinct from the per-campaign driver bundles that write the
        #: run directories.
        self.telemetry: Optional[Telemetry] = Telemetry() if observe else None
        registry = self.telemetry.registry if self.telemetry else None
        self.queue = JobQueue(os.path.join(self.root, "queue"),
                              registry=registry,
                              log=self.log.bind(logger="service.queue"))
        self.registry = RunRegistry(os.path.join(self.root, "runs"))
        self.state_dir = os.path.join(self.root, "state")
        os.makedirs(self.state_dir, exist_ok=True)
        self.poll_interval = poll_interval
        self.fleet = WorkerFleet(self.queue, count=workers,
                                 visibility_timeout=visibility_timeout,
                                 poll_interval=poll_interval,
                                 registry=registry,
                                 log=self.log.bind(logger="service.worker"),
                                 meta=observe)
        self._campaigns: Dict[str, _Campaign] = {}
        self._drivers: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._started = False

    @property
    def uptime_s(self) -> float:
        return max(0.0, time.time() - self.started_at)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "FuzzService":
        if not self._started:
            self.fleet.start()
            self._started = True
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Cancel every live campaign and stop the fleet."""
        with self._lock:
            campaigns = list(self._campaigns.values())
            drivers = list(self._drivers.values())
        for campaign in campaigns:
            campaign.cancel_event.set()
        for driver in drivers:
            driver.join(timeout=timeout)
        self.fleet.stop(timeout=timeout)
        self._started = False

    # -- submission ----------------------------------------------------------
    def submit(self, spec: CampaignSpec, resume: bool = False,
               checkpoint_path: Optional[str] = None,
               progress: Optional[ProgressFn] = None) -> str:
        """Register a campaign and start driving it; returns its id."""
        fingerprint = spec.fingerprint()
        campaign_id = f"c{next(_campaign_seq):04d}-{fingerprint[:8]}"
        if checkpoint_path is None:
            checkpoint_path = os.path.join(self.state_dir,
                                           campaign_id + ".json")
        run_dir = self.registry.create_run(
            command="service",
            target=",".join(spec.targets),
            engine=spec.engine,
            variants=list(spec.spec_variants),
            config=spec.to_dict(),
            extra={"campaign_id": campaign_id},
        )
        campaign = _Campaign(campaign_id, spec, checkpoint_path, run_dir)
        self.log.info("campaign_submitted", logger="service.core",
                      campaign_id=campaign_id, trace_id=campaign.trace_id,
                      fingerprint=fingerprint, run_id=run_dir.run_id,
                      resume=resume or None)
        with self._lock:
            self._campaigns[campaign_id] = campaign
            driver = threading.Thread(
                target=self._drive, args=(campaign, resume, progress),
                name=f"repro-service-driver-{campaign_id}", daemon=True)
            self._drivers[campaign_id] = driver
        self.start()
        driver.start()
        return campaign_id

    # -- the driver ----------------------------------------------------------
    def _drive(self, campaign: _Campaign, resume: bool,
               progress: Optional[ProgressFn]) -> None:
        telemetry = Telemetry.create(trace=campaign.run_dir.trace_path)
        telemetry.run_dir = campaign.run_dir
        log = self.log.bind(logger="service.core",
                            campaign_id=campaign.campaign_id,
                            trace_id=campaign.trace_id)
        try:
            state = self._initial_state(campaign, resume)
            with campaign.lock:
                campaign.status = "running"
                campaign.rounds_completed = state.completed_rounds
            telemetry.event(
                "campaign_start",
                fingerprint=state.fingerprint,
                trace_id=campaign.trace_id,
                rounds=campaign.spec.rounds,
                completed_rounds=state.completed_rounds,
                workers=len(self.fleet.workers),
            )
            log.info("campaign_started", fingerprint=state.fingerprint,
                     rounds=campaign.spec.rounds,
                     resumed_rounds=state.completed_rounds,
                     run_id=campaign.run_dir.run_id)
            ingestor = StreamingIngestor(
                state, telemetry=telemetry, progress=progress,
                checkpoint_path=campaign.checkpoint_path,
                run_dir=campaign.run_dir)
            for round_index in range(state.completed_rounds,
                                     campaign.spec.rounds):
                if campaign.cancel_event.is_set():
                    raise _Cancelled()
                self._run_round(campaign, state, ingestor, round_index,
                                telemetry, progress)
                with campaign.lock:
                    campaign.rounds_completed = state.completed_rounds
            summary = summarize(state)
            with campaign.lock:
                campaign.summary = summary
                campaign.status = "completed"
                campaign.finished_at = time.time()
            campaign.run_dir.finalize(
                status="completed",
                unique_gadgets=summary.total_unique_gadgets(),
                executions=summary.total_executions(),
            )
            log.info("campaign_completed",
                     unique_gadgets=summary.total_unique_gadgets(),
                     executions=summary.total_executions())
        except _Cancelled:
            self.queue.cancel(campaign.campaign_id)
            with campaign.lock:
                campaign.status = "cancelled"
                campaign.finished_at = time.time()
            campaign.run_dir.finalize(status="cancelled")
            log.warning("campaign_cancelled")
        except Exception as error:  # noqa: BLE001 - surfaced via status
            with campaign.lock:
                campaign.status = "failed"
                campaign.error = f"{type(error).__name__}: {error}"
                campaign.finished_at = time.time()
            campaign.run_dir.finalize(status="failed", error=campaign.error)
            log.error("campaign_failed", error=campaign.error)
        finally:
            telemetry.close()
            campaign.done_event.set()

    def _initial_state(self, campaign: _Campaign,
                       resume: bool) -> CampaignState:
        fingerprint = campaign.spec.fingerprint()
        if resume:
            try:
                state = CampaignState.load(campaign.checkpoint_path)
            except FileNotFoundError:
                state = None
            if state is not None:
                if state.fingerprint != fingerprint:
                    raise ValueError(
                        "checkpoint was produced by a different campaign "
                        f"spec (fingerprint {state.fingerprint} != "
                        f"{fingerprint}); refusing to resume")
                return state
        return CampaignState(fingerprint=fingerprint,
                             spec_dict=campaign.spec.to_dict())

    def _run_round(self, campaign: _Campaign, state: CampaignState,
                   ingestor: StreamingIngestor, round_index: int,
                   telemetry, progress: Optional[ProgressFn]) -> None:
        spec = campaign.spec
        jobs = spec.jobs_for_round(round_index)
        if progress is not None:
            progress(f"round {round_index + 1}/{spec.rounds}: "
                     f"{len(jobs)} jobs over "
                     f"{len(self.fleet.workers)} worker(s)")
        ingestor.begin_round(jobs)
        round_span_id = derive_span_id(campaign.trace_id,
                                       "round", round_index)
        fingerprints = [
            self.queue.submit(campaign.campaign_id, job,
                              seeds_for_job(state, job),
                              trace=self._job_trace_context(
                                  campaign, job, round_span_id))
            for job in jobs
        ]
        with campaign.lock:
            campaign.jobs_total += len(jobs)
        registry = telemetry.registry
        registry.counter("campaign.jobs_queued").inc(len(jobs))
        registry.gauge("campaign.jobs_running").set(len(jobs))
        with telemetry.span(f"round:{round_index}"):
            pending = dict(zip(fingerprints, jobs))
            while pending:
                if campaign.cancel_event.is_set():
                    raise _Cancelled()
                token = self.queue.change_token()
                harvested = False
                for fingerprint in list(pending):
                    record = self.queue.result(fingerprint)
                    if record is None:
                        continue
                    del pending[fingerprint]
                    harvested = True
                    result = WorkerResult.from_dict(record["result"])
                    ingestor.offer(result,
                                   lifecycle=self._job_lifecycle(
                                       fingerprint, record))
                    with campaign.lock:
                        campaign.jobs_done += 1
                    registry.gauge("campaign.jobs_running").set(len(pending))
                if not harvested:
                    # Completions signal the queue's condition variable;
                    # the poll interval only bounds cross-process lag and
                    # the cancel-check latency.
                    self.queue.wait_for_change(token, self.poll_interval)
        registry.gauge("campaign.jobs_running").set(0)
        ingestor.finish_round()

    # -- distributed tracing -------------------------------------------------
    def _job_trace_context(self, campaign: _Campaign, job,
                           round_span_id: str) -> Optional[Dict[str, object]]:
        """The trace context stamped into one queued job record."""
        if not self.observe:
            return None
        return {
            "trace_id": campaign.trace_id,
            "span_id": derive_span_id(campaign.trace_id, job.job_id,
                                      "submit"),
            "parent_span_id": round_span_id,
            "campaign_id": campaign.campaign_id,
        }

    def _job_lifecycle(self, fingerprint: str,
                       record: Dict[str, object],
                       ) -> Optional[Dict[str, object]]:
        """A completion record → the ingestor's lifecycle block."""
        if not self.observe:
            return None
        meta = record.get("meta")
        if not isinstance(meta, dict):
            return None  # v1 record, or a terminal failure (no worker ran)
        lifecycle: Dict[str, object] = dict(meta)
        lifecycle["fingerprint"] = fingerprint
        completed = record.get("completed_at")
        if isinstance(completed, (int, float)):
            lifecycle["completed_at"] = completed
        return lifecycle

    # -- observation ---------------------------------------------------------
    def metrics_view(self):
        """A render-ready view of the service-level metrics.

        Refreshes the pull-style gauges (queue depth, fleet liveness,
        per-worker utilization) from the live queue and fleet, then
        returns a :class:`~repro.telemetry.export.MetricsView` the
        Prometheus renderer accepts.  With ``observe=False`` the view is
        empty — ``/metrics`` then serves no families rather than 404ing,
        so scrapers keep a stable target.
        """
        from repro.telemetry.export import MetricsView

        if self.telemetry is None:
            return MetricsView()
        self.queue.observe_gauges()
        self.fleet.observe_gauges()
        return MetricsView.from_telemetry(self.telemetry)

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` body: liveness plus identity."""
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": round(self.uptime_s, 3),
            "observe": self.observe,
        }

    def readiness(self) -> Dict[str, object]:
        """The ``/readyz`` body; ``ready`` gates the 200-vs-503 choice."""
        counts = self.fleet.counts()
        ready = bool(self._started and counts["alive"] > 0)
        return {
            "ready": ready,
            "started": self._started,
            "workers_alive": counts["alive"],
            "workers": counts["workers"],
        }

    def fleet_status(self) -> Dict[str, object]:
        """The ``/v1/fleet`` body: per-worker rows plus the counts."""
        return {
            "kind": "repro.service/fleet-status",
            "schema_version": 1,
            "counts": self.fleet.counts(),
            "workers": self.fleet.describe(),
        }
    def _campaign(self, campaign_id: str) -> _Campaign:
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            raise UnknownCampaignError(
                f"unknown campaign {campaign_id!r}; known: "
                f"{sorted(self._campaigns) or '(none)'}")
        return campaign

    def campaign_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._campaigns)

    def status(self, campaign_id: str) -> Dict[str, object]:
        """The status record one ``GET /v1/campaigns/<id>`` returns."""
        campaign = self._campaign(campaign_id)
        with campaign.lock:
            record: Dict[str, object] = {
                "kind": STATUS_KIND,
                "schema_version": STATUS_SCHEMA_VERSION,
                "version": __version__,
                "campaign_id": campaign.campaign_id,
                "status": campaign.status,
                "trace_id": campaign.trace_id,
                "fingerprint": campaign.spec.fingerprint(),
                "spec": campaign.spec.to_dict(),
                "run_id": campaign.run_dir.run_id,
                "rounds": campaign.spec.rounds,
                "rounds_completed": campaign.rounds_completed,
                "jobs_total": campaign.jobs_total,
                "jobs_done": campaign.jobs_done,
                "created_at": campaign.created_at,
                "finished_at": campaign.finished_at,
            }
            if campaign.error:
                record["error"] = campaign.error
            if campaign.summary is not None:
                record["summary"] = campaign.summary.to_dict()
        return record

    def statuses(self) -> List[Dict[str, object]]:
        return [self.status(campaign_id)
                for campaign_id in self.campaign_ids()]

    def reports(self, campaign_id: str) -> Dict[str, object]:
        """Deduplicated per-group reports of one (finished) campaign."""
        campaign = self._campaign(campaign_id)
        with campaign.lock:
            summary = campaign.summary
        if summary is None:
            return {"campaign_id": campaign_id, "groups": {},
                    "status": campaign.status}
        groups = {
            group_key_str(group.key): group.collection.to_dicts()
            for group in summary.groups
        }
        return {"campaign_id": campaign_id, "status": campaign.status,
                "groups": groups}

    def cancel(self, campaign_id: str) -> Dict[str, object]:
        """Request cancellation (idempotent); returns the fresh status."""
        campaign = self._campaign(campaign_id)
        campaign.cancel_event.set()
        return self.status(campaign_id)

    def wait(self, campaign_id: str,
             timeout: Optional[float] = None) -> Optional[CampaignSummary]:
        """Block until a campaign finishes; its summary (None if not
        completed — cancelled, failed, or timed out)."""
        campaign = self._campaign(campaign_id)
        campaign.done_event.wait(timeout)
        with campaign.lock:
            return campaign.summary


class _Cancelled(Exception):
    """Internal control flow: the campaign's cancel event fired."""
