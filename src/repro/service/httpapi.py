"""The service's HTTP/JSON API: submit, watch and cancel campaigns.

A deliberately thin veneer over :class:`~repro.service.core.FuzzService`
on the stdlib ``ThreadingHTTPServer`` (same daemon-thread idiom as the
telemetry :class:`~repro.telemetry.export.MetricsExporter`; zero
dependencies).  Routes::

    GET  /                          help text
    GET  /v1/campaigns              every campaign's status record
    POST /v1/campaigns              submit (202 + {"campaign_id": ...})
    GET  /v1/campaigns/<id>         one status record
    GET  /v1/campaigns/<id>/reports deduplicated per-group gadget reports
    POST /v1/campaigns/<id>/cancel  request cancellation
    GET  /v1/queue                  queue-depth and fleet counters
    GET  /v1/fleet                  per-worker status (heartbeat, job)
    GET  /metrics                   Prometheus exposition (service.*)
    GET  /healthz                   liveness (always 200 while serving)
    GET  /readyz                    readiness (503 until workers run)

The submit body is a campaign-spec mapping (``CampaignSpec.to_dict``
shape) either bare or wrapped as ``{"spec": {...}}``; extra top-level
keys ``resume`` (bool) are honoured.  Errors come back as JSON
``{"error": ...}`` with 400 (bad request body or headers), 404 (unknown
campaign or route), 413 (body over :data:`MAX_BODY_BYTES`) or 500.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro._version import __version__
from repro.campaign.spec import CampaignSpec
from repro.service.core import FuzzService, UnknownCampaignError
from repro.telemetry.export import PROMETHEUS_CONTENT_TYPE, render_prometheus

#: Hard cap on request bodies: a campaign spec is a few KB, so anything
#: beyond this is either a mistake or an attempt to exhaust memory.
MAX_BODY_BYTES = 1 << 20

_HELP = """repro fuzzing service
endpoints:
  GET  /v1/campaigns
  POST /v1/campaigns              (body: campaign spec JSON)
  GET  /v1/campaigns/<id>
  GET  /v1/campaigns/<id>/reports
  POST /v1/campaigns/<id>/cancel
  GET  /v1/queue
  GET  /v1/fleet
  GET  /metrics
  GET  /healthz
  GET  /readyz
"""


class _ApiError(Exception):
    """An error with an HTTP status code (rendered as JSON)."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


def _parse_spec(body: Dict[str, object]) -> Tuple[CampaignSpec, bool]:
    """The submit body → (spec, resume)."""
    if not isinstance(body, dict):
        raise _ApiError(400, "request body must be a JSON object")
    resume = bool(body.get("resume", False))
    record = body.get("spec", body)
    if not isinstance(record, dict) or "targets" not in record:
        raise _ApiError(
            400, "body must be a campaign spec mapping with 'targets' "
                 "(optionally wrapped as {\"spec\": {...}})")
    try:
        spec = CampaignSpec.from_dict(record)
        # Resolve every plugin name now: an unknown target or tool should
        # be a 400 at submit time, not a failed campaign minutes later.
        from repro.targets import get_target
        for target in spec.targets:
            get_target(target)
        spec.groups()
    except (KeyError, TypeError, ValueError) as error:
        raise _ApiError(400, f"invalid campaign spec: {error}")
    return spec, resume


class _Handler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` API; silent request logging."""

    server_version = "repro-service/" + __version__

    @property
    def service(self) -> FuzzService:
        return self.server.service  # type: ignore[attr-defined]

    # -- verbs ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("POST")

    def _dispatch(self, verb: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        log = self.service.log
        try:
            self._route(verb, path)
            log.debug("http_request", logger="service.http", verb=verb,
                      path=path)
        except _ApiError as error:
            log.warning("http_client_error", logger="service.http",
                        verb=verb, path=path, code=error.code,
                        error=str(error))
            self._reply_json(error.code, {"error": str(error)})
        except UnknownCampaignError as error:
            log.warning("http_client_error", logger="service.http",
                        verb=verb, path=path, code=404, error=str(error))
            self._reply_json(404, {"error": str(error)})
        except Exception as error:  # never kill the serving thread
            log.error("http_server_error", logger="service.http", verb=verb,
                      path=path, error=f"{type(error).__name__}: {error}")
            try:
                self._reply_json(500, {"error": f"{type(error).__name__}: "
                                                f"{error}"})
            except OSError:
                pass

    def _route(self, verb: str, path: str) -> None:
        if path == "/" and verb == "GET":
            self._reply(200, "text/plain; charset=utf-8",
                        _HELP.encode("utf-8"))
            return
        if path == "/metrics" and verb == "GET":
            body = render_prometheus(self.service.metrics_view())
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body.encode("utf-8"))
            return
        if path == "/healthz" and verb == "GET":
            self._reply_json(200, self.service.health())
            return
        if path == "/readyz" and verb == "GET":
            readiness = self.service.readiness()
            self._reply_json(200 if readiness["ready"] else 503, readiness)
            return
        if path == "/v1/fleet" and verb == "GET":
            self._reply_json(200, self.service.fleet_status())
            return
        if path == "/v1/queue" and verb == "GET":
            record: Dict[str, object] = dict(self.service.queue.stats())
            record["fleet"] = self.service.fleet.counts()
            self._reply_json(200, record)
            return
        if path == "/v1/campaigns":
            if verb == "GET":
                self._reply_json(200, {"campaigns": self.service.statuses()})
            else:
                spec, resume = _parse_spec(self._read_body())
                campaign_id = self.service.submit(spec, resume=resume)
                self._reply_json(202, {"campaign_id": campaign_id,
                                       "status": "queued"})
            return
        parts = path.split("/")
        # /v1/campaigns/<id>[/reports|/cancel]
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "campaigns":
            campaign_id = parts[3]
            tail = parts[4] if len(parts) > 4 else ""
            if tail == "" and verb == "GET":
                self._reply_json(200, self.service.status(campaign_id))
                return
            if tail == "reports" and verb == "GET":
                self._reply_json(200, self.service.reports(campaign_id))
                return
            if tail == "cancel" and verb == "POST":
                self._reply_json(200, self.service.cancel(campaign_id))
                return
        raise _ApiError(404, f"no route {verb} {path}")

    # -- plumbing ------------------------------------------------------------
    def _read_body(self) -> Dict[str, object]:
        """The request body as parsed JSON, or an :class:`_ApiError`.

        Every malformed-input path — a junk or negative Content-Length,
        a body over the cap, bytes that aren't UTF-8 JSON, JSON that
        isn't an object — maps to a structured 400/413 JSON envelope
        instead of leaking a raw 500 out of the parsing internals.
        """
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length or 0)
        except (TypeError, ValueError):
            raise _ApiError(400,
                            f"invalid Content-Length header: {raw_length!r}")
        if length < 0:
            raise _ApiError(400,
                            f"invalid Content-Length header: {raw_length!r}")
        if length > MAX_BODY_BYTES:
            # Drain the body (chunked, bounded) so a well-behaved client
            # finishes its upload and reads the 413 instead of dying on a
            # broken pipe; past the drain cap we just close the socket.
            remaining = min(length, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            raise _ApiError(
                413, f"request body of {length} bytes exceeds the "
                     f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _ApiError(400, "empty request body")
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise _ApiError(400, f"request body is not JSON: {error}")
        if not isinstance(body, dict):
            raise _ApiError(
                400, "request body must be a JSON object, not "
                     f"{type(body).__name__}")
        return body

    def _reply_json(self, code: int, record: Dict[str, object]) -> None:
        body = json.dumps(record, indent=1, sort_keys=True).encode("utf-8")
        self._reply(code, "application/json", body)

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass


class ServiceApiServer:
    """One HTTP front end over one :class:`FuzzService`.

    Binding ``port=0`` picks a free port — read it back from
    :attr:`port`.  ``start`` serves on a daemon thread;
    ``serve_forever`` serves on the calling thread (``repro serve``).
    """

    def __init__(self, service: FuzzService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceApiServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-service-api", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        try:
            self._server.serve_forever(poll_interval=poll_interval)
        except KeyboardInterrupt:
            pass
        finally:
            self._server.server_close()


def serve_api(service: FuzzService, host: str = "127.0.0.1",
              port: int = 0) -> ServiceApiServer:
    """Start (and return) a background API server over ``service``."""
    return ServiceApiServer(service, host=host, port=port).start()
