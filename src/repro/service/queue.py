"""Durable on-disk job queue with leases, visibility timeouts and dedup.

The queue is three directories of small JSON files under one root::

    queue/
        jobs/<fingerprint>.json    # the job record (spec + seeds), immutable
        leases/<fingerprint>.json  # who is working on it and until when
        done/<fingerprint>.json    # the completion record (result payload)

Every operation is a filesystem primitive with well-defined crash
semantics:

* **submit** writes the job record atomically (tmp file + ``os.replace``)
  and is idempotent: the fingerprint is a SHA-256 over the campaign id
  and the canonical JSON of the job spec, so re-submitting the same job
  is a no-op.
* **claim** creates the lease file with ``O_CREAT | O_EXCL`` — the
  filesystem arbitrates racing claimants.  An *expired* lease (its
  holder missed every renewal for the visibility timeout) is taken over
  by atomically replacing the lease file with a fresh one carrying a
  new token and an incremented attempt counter.
* **complete** hard-links a fully-written temp record into ``done/`` —
  ``os.link`` fails with ``EEXIST`` if a record is already there, which
  makes completion exactly-once even if an expired worker wakes up and
  finishes late (its stale result is discarded and its return value says
  so).
* A worker that dies mid-job writes nothing; its lease simply expires
  and the next ``claim`` re-offers the job.  Jobs are deterministic
  (results derive from the job seed), so a re-run merges identically.

In-process threads additionally serialize ``claim`` through a lock so a
fleet of worker threads never burns syscalls racing each other; the
on-disk protocol alone is what keeps *cross-process* access safe.

Observability (schema v2, backward compatible with v1 records): job
records may carry a ``trace`` context (``trace_id`` + span ids, stamped
at submit) and completion records a ``meta`` block (worker, attempt,
claim/execute timestamps, the echoed trace context) — both optional, so
v1 records round-trip untouched and a queue with observability off
writes byte-identical records to v1.  When a metrics ``registry`` is
attached the queue feeds ``service.queue.*`` counters/gauges and the
``service.job.*`` latency histograms; a structured ``log`` gets one
event per lifecycle transition.  Both are observation-only: nothing
reads them back.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.campaign.spec import JobSpec

#: Artifact tag of every record this queue writes.
QUEUE_KIND = "repro.service/job"
#: v2 added the optional ``trace`` (job records) and ``meta`` (done
#: records) blocks; readers tolerate their absence, so v1 records load.
QUEUE_SCHEMA_VERSION = 2

#: Lease takeovers allowed before a job is declared failed (a crash loop
#: must not re-offer a poisonous job forever).  Distinct from the in-worker
#: retry budget (:attr:`JobSpec.max_attempts`), which governs exceptions a
#: *live* worker sees.
DEFAULT_MAX_LEASE_ATTEMPTS = 5


def job_fingerprint(campaign_id: str, job: JobSpec) -> str:
    """Stable identity of one queued job (the dedup/idempotence key)."""
    canonical = json.dumps({"campaign": campaign_id, "job": job.to_dict()},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


@dataclass
class JobLease:
    """One claimed job: what to run plus the renewal credentials."""

    fingerprint: str
    token: str
    owner: str
    deadline: float
    #: 1 on the first claim, +1 per expired-lease takeover.
    attempt: int
    #: the full job record (``campaign_id``, ``job`` dict, ``seeds`` hex).
    record: Dict[str, object]
    #: wall-clock second this lease (re)started — queue-wait attribution.
    claimed_at: float = 0.0

    @property
    def campaign_id(self) -> str:
        return str(self.record.get("campaign_id", ""))

    def trace_context(self) -> Optional[Dict[str, object]]:
        """The trace context stamped at submit (None on v1 records)."""
        trace = self.record.get("trace")
        return trace if isinstance(trace, dict) else None

    def job_spec(self) -> JobSpec:
        return JobSpec.from_dict(self.record["job"])

    def seeds(self) -> Optional[List[bytes]]:
        entries = self.record.get("seeds")
        if entries is None:
            return None
        return [bytes.fromhex(text) for text in entries]


def _atomic_write_json(path: str, record: Dict[str, object]) -> None:
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(prefix=".queue-", suffix=".tmp",
                                    dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _read_json(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        # Missing, or mid-replace: the caller treats both as "not there
        # right now" and moves on.
        return None


class JobQueue:
    """The durable queue; see the module docstring for the protocol."""

    def __init__(self, root: str,
                 max_lease_attempts: int = DEFAULT_MAX_LEASE_ATTEMPTS,
                 registry=None, log=None) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.leases_dir = os.path.join(self.root, "leases")
        self.done_dir = os.path.join(self.root, "done")
        for directory in (self.jobs_dir, self.leases_dir, self.done_dir):
            os.makedirs(directory, exist_ok=True)
        self.max_lease_attempts = max(1, max_lease_attempts)
        #: optional MetricsRegistry fed with service.queue.* / service.job.*.
        self.registry = registry
        #: optional StructuredLogger (one event per lifecycle transition).
        self.log = log
        #: fingerprint → terminal status, filled lazily by :meth:`stats`
        #: so the failed-count scan reads each done record exactly once
        #: (and therefore survives process restarts, unlike a counter).
        self._done_status: Dict[str, str] = {}
        self._claim_lock = threading.Lock()
        # In-process change notification: submit/complete/fail bump the
        # sequence and wake waiters, so same-process pollers (the driver
        # harvesting results, idle workers) block on events instead of
        # sleeping fixed intervals.  Cross-process consumers still poll —
        # the timeout in wait_for_change bounds their staleness.
        self._change = threading.Condition()
        self._change_seq = 0

    # -- paths ---------------------------------------------------------------
    def _job_path(self, fingerprint: str) -> str:
        return os.path.join(self.jobs_dir, fingerprint + ".json")

    def _lease_path(self, fingerprint: str) -> str:
        return os.path.join(self.leases_dir, fingerprint + ".json")

    def _done_path(self, fingerprint: str) -> str:
        return os.path.join(self.done_dir, fingerprint + ".json")

    # -- instrumentation -----------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.registry is not None:
            from repro.telemetry.metrics import LATENCY_BUCKETS_S
            self.registry.histogram(name,
                                    buckets=LATENCY_BUCKETS_S).observe(value)

    def _log(self, level: str, event: str, **fields: object) -> None:
        if self.log is not None:
            self.log.log(level, event, **fields)

    # -- submission ----------------------------------------------------------
    def submit(self, campaign_id: str, job: JobSpec,
               seeds: Optional[Sequence[bytes]] = None,
               trace: Optional[Dict[str, object]] = None) -> str:
        """Enqueue one job; idempotent, returns the job fingerprint.

        ``trace`` is an optional distributed-trace context (``trace_id``
        plus span ids) stamped into the record and echoed back through
        the lease and completion paths; it never affects the
        fingerprint, so re-submitting with or without one stays a no-op.
        """
        fingerprint = job_fingerprint(campaign_id, job)
        path = self._job_path(fingerprint)
        if not os.path.exists(path):
            record: Dict[str, object] = {
                "kind": QUEUE_KIND,
                "schema_version": QUEUE_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "campaign_id": campaign_id,
                "job": job.to_dict(),
                "enqueued_at": time.time(),
            }
            if seeds is not None:
                record["seeds"] = [entry.hex() for entry in seeds]
            if trace is not None:
                record["trace"] = dict(trace)
            _atomic_write_json(path, record)
            self._count("service.queue.submitted")
            self._log("debug", "job_submitted", fingerprint=fingerprint,
                      campaign_id=campaign_id, job_id=job.job_id,
                      trace_id=(trace or {}).get("trace_id"))
        self._signal_change()
        return fingerprint

    # -- claiming ------------------------------------------------------------
    def claim(self, owner: str,
              visibility_timeout: float = 30.0) -> Optional[JobLease]:
        """Lease the oldest available job, or ``None`` if all are busy/done.

        A job is available when it has no lease, or its lease's deadline
        has passed (the holder is presumed dead).  The returned lease
        must be renewed via :meth:`renew` faster than
        ``visibility_timeout`` or the job will be offered to someone
        else.
        """
        with self._claim_lock:
            for fingerprint in self._pending_fingerprints():
                lease = self._try_acquire(fingerprint, owner,
                                          visibility_timeout)
                if lease is not None:
                    return lease
        return None

    def _pending_fingerprints(self) -> List[str]:
        """Submitted-but-not-done fingerprints, oldest record first."""
        try:
            names = os.listdir(self.jobs_dir)
        except OSError:
            return []
        entries = []
        for name in names:
            if name.startswith(".") or not name.endswith(".json"):
                continue
            fingerprint = name[:-len(".json")]
            if os.path.exists(self._done_path(fingerprint)):
                continue
            try:
                mtime = os.path.getmtime(os.path.join(self.jobs_dir, name))
            except OSError:
                continue
            entries.append((mtime, fingerprint))
        entries.sort()
        return [fingerprint for _, fingerprint in entries]

    def _try_acquire(self, fingerprint: str, owner: str,
                     visibility_timeout: float) -> Optional[JobLease]:
        job_record = _read_json(self._job_path(fingerprint))
        if job_record is None:
            return None
        lease_path = self._lease_path(fingerprint)
        now = time.time()
        existing = _read_json(lease_path)
        if existing is None:
            attempt = 1
        else:
            if float(existing.get("deadline", 0.0)) > now:
                return None  # live lease (or cooldown) — not available
            attempt = int(existing.get("attempt", 1)) + 1
            self._count("service.queue.lease_timeouts")
            if attempt > self.max_lease_attempts:
                # The job keeps killing its workers; fail it for good so
                # the campaign can finish with a failed_jobs entry
                # instead of looping forever.
                self._write_done(
                    fingerprint, job_record, status="failed",
                    error=(f"lease expired {attempt - 1} times "
                           f"(limit {self.max_lease_attempts})"))
                os.unlink(lease_path)
                return None
        token = uuid.uuid4().hex
        lease_record: Dict[str, object] = {
            "fingerprint": fingerprint,
            "owner": owner,
            "token": token,
            "attempt": attempt,
            "deadline": now + visibility_timeout,
            "claimed_at": now,
        }
        if existing is None:
            # First claim: O_EXCL so racing processes cannot both win.
            try:
                fd = os.open(lease_path,
                             os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                return None
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(lease_record, handle, sort_keys=True)
        else:
            # Takeover of an expired lease: atomic replace installs the
            # new token; the previous holder's renew/complete calls fail
            # their token check from here on.
            _atomic_write_json(lease_path, lease_record)
            self._count("service.queue.lease_takeovers")
            self._log("warning", "lease_takeover", fingerprint=fingerprint,
                      owner=owner, previous_owner=existing.get("owner"),
                      attempt=attempt,
                      trace_id=(job_record.get("trace") or {}).get(
                          "trace_id"))
        self._count("service.queue.claims")
        if attempt == 1:
            # Queue wait is submit → *first* claim; a takeover's wait is
            # the previous holder's visibility timeout, not queue depth.
            enqueued = float(job_record.get("enqueued_at", now) or now)
            self._observe("service.job.queue_wait_s", max(0.0, now - enqueued))
        self._log("debug", "job_claimed", fingerprint=fingerprint,
                  owner=owner, attempt=attempt,
                  campaign_id=job_record.get("campaign_id"),
                  trace_id=(job_record.get("trace") or {}).get("trace_id"))
        return JobLease(fingerprint=fingerprint, token=token, owner=owner,
                        deadline=lease_record["deadline"], attempt=attempt,
                        record=job_record, claimed_at=now)

    # -- lease upkeep --------------------------------------------------------
    def renew(self, fingerprint: str, token: str,
              visibility_timeout: float = 30.0) -> bool:
        """Extend a held lease; ``False`` if it was lost (expired + taken)."""
        lease_path = self._lease_path(fingerprint)
        record = _read_json(lease_path)
        if record is None or record.get("token") != token:
            return False
        record["deadline"] = time.time() + visibility_timeout
        _atomic_write_json(lease_path, record)
        return True

    def complete(self, fingerprint: str, token: str,
                 result: Dict[str, object],
                 meta: Optional[Dict[str, object]] = None) -> bool:
        """Record a finished job exactly once.

        Returns ``True`` if this call's result became the job's
        completion record, ``False`` if someone else (a retry after this
        worker's lease expired) completed it first — the caller's result
        is then discarded, which keeps completion idempotent.  The token
        is not required to still be valid: a slow-but-alive worker whose
        lease lapsed may still land its (identical, deterministic)
        result if nobody beat it to the link.

        ``meta`` is an optional observability block (worker name,
        attempt, claim/execute timestamps, echoed trace context) the
        ingestor turns into lifecycle spans; it never affects which
        completion wins.
        """
        now = time.time()
        done_path = self._done_path(fingerprint)
        record: Dict[str, object] = {
            "kind": QUEUE_KIND,
            "schema_version": QUEUE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "status": "completed",
            "token": token,
            "completed_at": now,
            "result": result,
        }
        if meta is not None:
            record["meta"] = dict(meta)
        directory = os.path.dirname(done_path)
        fd, tmp_path = tempfile.mkstemp(prefix=".done-", suffix=".tmp",
                                        dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            try:
                os.link(tmp_path, done_path)  # EXCL: first completion wins
            except FileExistsError:
                self._count("service.queue.stale_completions")
                self._log("debug", "stale_completion",
                          fingerprint=fingerprint)
                return False
            self._count("service.queue.jobs_completed")
            if self.registry is not None:
                job_record = _read_json(self._job_path(fingerprint)) or {}
                enqueued = job_record.get("enqueued_at")
                if isinstance(enqueued, (int, float)):
                    self._observe("service.job.e2e_s",
                                  max(0.0, now - float(enqueued)))
            trace_id = None
            if meta is not None:
                trace_id = (meta.get("trace") or {}).get("trace_id") \
                    if isinstance(meta.get("trace"), dict) else None
            self._log("debug", "job_completed", fingerprint=fingerprint,
                      trace_id=trace_id)
            return True
        finally:
            os.unlink(tmp_path)
            lease_path = self._lease_path(fingerprint)
            lease = _read_json(lease_path)
            if lease is not None and lease.get("token") == token:
                try:
                    os.unlink(lease_path)
                except OSError:
                    pass
            self._signal_change()

    def fail(self, fingerprint: str, token: str, error: str,
             backoff_s: float = 0.0) -> bool:
        """Release a job after an unrecoverable worker-side error.

        With lease attempts left, the job goes back on offer after
        ``backoff_s`` (the lease is rewritten as an ownerless cooldown
        that nobody can renew); with the budget exhausted it is marked
        done with status ``failed``.  Returns ``False`` when the lease
        was already lost.
        """
        lease_path = self._lease_path(fingerprint)
        lease = _read_json(lease_path)
        if lease is None or lease.get("token") != token:
            return False
        attempt = int(lease.get("attempt", 1))
        if attempt >= self.max_lease_attempts:
            job_record = _read_json(self._job_path(fingerprint)) or {}
            self._write_done(fingerprint, job_record, status="failed",
                             error=error)
            try:
                os.unlink(lease_path)
            except OSError:
                pass
            return True
        cooldown: Dict[str, object] = {
            "fingerprint": fingerprint,
            "owner": "",
            "token": "",  # unrenewable: no caller holds the empty token
            "attempt": attempt,
            "deadline": time.time() + max(0.0, backoff_s),
            "claimed_at": float(lease.get("claimed_at", 0.0)),
            "last_error": error,
        }
        _atomic_write_json(lease_path, cooldown)
        self._count("service.queue.job_retries")
        self._log("info", "job_retry", fingerprint=fingerprint,
                  attempt=attempt, error=error)
        self._signal_change()
        return True

    def _write_done(self, fingerprint: str, job_record: Dict[str, object],
                    status: str, error: str = "") -> None:
        """Terminal record for a job that will never produce a result.

        The payload is an error-shaped worker result, so the ingestor's
        ordinary merge path records it as a failed job.
        """
        job = dict(job_record.get("job", {}))
        spec = JobSpec.from_dict(job) if job else None
        result: Dict[str, object] = {
            "job_id": spec.job_id if spec is not None else fingerprint,
            "target": job.get("target", ""),
            "tool": job.get("tool", ""),
            "variant": job.get("variant", "vanilla"),
            "shard": job.get("shard", 0),
            "round_index": job.get("round_index", 0),
            "error": error or f"job {status}",
        }
        record: Dict[str, object] = {
            "kind": QUEUE_KIND,
            "schema_version": QUEUE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "status": status,
            "completed_at": time.time(),
            "result": result,
        }
        done_path = self._done_path(fingerprint)
        directory = os.path.dirname(done_path)
        fd, tmp_path = tempfile.mkstemp(prefix=".done-", suffix=".tmp",
                                        dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            try:
                os.link(tmp_path, done_path)
            except FileExistsError:
                pass
            else:
                self._count(f"service.queue.jobs_{status}")
                self._log("warning", f"job_{status}",
                          fingerprint=fingerprint, error=error or None,
                          trace_id=(job_record.get("trace") or {}).get(
                              "trace_id"))
        finally:
            os.unlink(tmp_path)
            self._signal_change()

    def cancel(self, campaign_id: str) -> int:
        """Terminally mark every pending job of one campaign as cancelled."""
        cancelled = 0
        with self._claim_lock:
            for fingerprint in self._pending_fingerprints():
                record = _read_json(self._job_path(fingerprint))
                if record is None or record.get("campaign_id") != campaign_id:
                    continue
                self._write_done(fingerprint, record, status="cancelled")
                try:
                    os.unlink(self._lease_path(fingerprint))
                except OSError:
                    pass
                cancelled += 1
        return cancelled

    # -- change notification -------------------------------------------------
    def _signal_change(self) -> None:
        with self._change:
            self._change_seq += 1
            self._change.notify_all()

    def change_token(self) -> int:
        """Opaque sequence marker; take it *before* scanning the queue."""
        with self._change:
            return self._change_seq

    def wait_for_change(self, token: int, timeout: float) -> int:
        """Block until the queue changed since ``token`` (or ``timeout``).

        The token closes the check-then-wait race: a change that landed
        between the caller's scan and this call returns immediately.
        Returns the current sequence for the next wait.
        """
        with self._change:
            if self._change_seq == token:
                self._change.wait(timeout)
            return self._change_seq

    # -- observation ---------------------------------------------------------
    def result(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The completion record of one job (``None`` while pending)."""
        return _read_json(self._done_path(fingerprint))

    def stats(self) -> Dict[str, int]:
        """Queue-depth counters for the status/metrics endpoints.

        ``failed`` counts terminal ``status != "completed"`` done
        records by reading each record once (the status cache persists
        across calls and the scan itself survives process restarts —
        unlike an in-memory counter, a fresh queue over the same root
        reports the same figure).
        """
        def _names(directory: str) -> List[str]:
            try:
                return [name[:-len(".json")]
                        for name in os.listdir(directory)
                        if name.endswith(".json")
                        and not name.startswith(".")]
            except OSError:
                return []

        done_names = _names(self.done_dir)
        for fingerprint in done_names:
            if fingerprint not in self._done_status:
                record = _read_json(self._done_path(fingerprint))
                if record is None:
                    continue  # mid-link; picked up on the next scan
                self._done_status[fingerprint] = str(
                    record.get("status", "completed"))
        failed = sum(1 for fingerprint in done_names
                     if self._done_status.get(fingerprint,
                                              "completed") != "completed")
        submitted = len(_names(self.jobs_dir))
        done = len(done_names)
        return {
            "submitted": submitted,
            "leased": len(_names(self.leases_dir)),
            "done": done,
            "failed": failed,
            "pending": max(0, submitted - done),
        }

    def observe_gauges(self) -> Dict[str, int]:
        """Refresh the ``service.queue.*`` depth gauges from :meth:`stats`.

        Called by the ``/metrics`` scrape path (pull-style gauges: depth
        is derived state, so sampling at scrape time is both cheap and
        always consistent with the on-disk truth).  Returns the stats.
        """
        stats = self.stats()
        if self.registry is not None:
            for name in ("pending", "leased", "done", "failed"):
                self.registry.gauge(f"service.queue.{name}").set(stats[name])
        return stats
