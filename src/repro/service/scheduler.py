"""The ``service`` campaign-scheduler plugin.

``run_campaign(spec, scheduler="service")`` — and therefore ``repro
campaign --scheduler service`` and ``Pipeline.fuzz(scheduler=
"service")`` — runs the campaign through an ephemeral
:class:`~repro.service.core.FuzzService`: a durable queue plus
``spec.workers`` worker threads in a scratch directory, torn down when
the campaign finishes.  Results are bit-identical to the ``pool`` and
``serial`` schedulers (the streaming ingestor merges in job order), so
this is simultaneously the service's integration test surface and a
way to exercise lease/requeue machinery under the ordinary campaign
API.

Set ``REPRO_SERVICE_DIR`` to keep the queue/run directories around for
inspection instead of using (and deleting) a temp directory, and
``REPRO_SERVICE_OBSERVE=0`` to switch the service observatory (metrics
+ distributed job tracing) off — summaries are bit-identical either
way.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.summary import CampaignSummary
from repro.plugins import register_scheduler
from repro.service.core import FuzzService

#: Environment override for the ephemeral service root.
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: Set to ``0`` to run the ephemeral service with observability off.
SERVICE_OBSERVE_ENV = "REPRO_SERVICE_OBSERVE"


@register_scheduler("service")
class ServiceCampaignScheduler(CampaignScheduler):
    """Run one campaign through a private, short-lived fuzzing service."""

    #: visibility timeout for the ephemeral fleet; generous because the
    #: in-process workers share the GIL with the driver (a busy worker
    #: must not lose its lease to scheduling jitter).
    visibility_timeout = 60.0

    def run(self, resume: bool = False) -> CampaignSummary:
        root = os.environ.get(SERVICE_DIR_ENV)
        scratch = None
        if not root:
            scratch = tempfile.mkdtemp(prefix="repro-service-")
            root = scratch
        service = FuzzService(
            root,
            workers=max(1, self.spec.workers),
            visibility_timeout=self.visibility_timeout,
            observe=os.environ.get(SERVICE_OBSERVE_ENV, "1") != "0",
        )
        try:
            campaign_id = service.submit(
                self.spec, resume=resume,
                checkpoint_path=self.checkpoint_path,
                progress=self._progress)
            summary = service.wait(campaign_id)
            if summary is None:
                status = service.status(campaign_id)
                raise RuntimeError(
                    "service campaign ended without a summary "
                    f"(status {status.get('status')!r}"
                    + (f": {status['error']}" if status.get("error") else "")
                    + ")")
            return summary
        finally:
            service.stop()
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)
