"""Fuzzing as a service: durable queue, worker fleet, HTTP submit/status.

This package turns the batch campaign machinery of :mod:`repro.campaign`
into a long-running service:

* :mod:`repro.service.queue` — a crash-safe on-disk job queue with
  atomic claim/renew/complete, visibility timeouts (a dead worker's
  lease expires and the job is offered again) and idempotent completion
  keyed by job fingerprint.
* :mod:`repro.service.worker` — a fleet of in-process workers pulling
  leased jobs and executing them through the ordinary
  :func:`repro.campaign.worker.execute_task` entry point, renewing
  their leases from a shared heartbeat.
* :mod:`repro.service.ingest` — streaming result ingestion: worker
  results merge into the campaign state *as they arrive* (in job order,
  so the outcome is bit-identical to the batch schedulers) with
  per-round checkpoints and metrics snapshots.
* :mod:`repro.service.core` — the :class:`FuzzService` façade gluing
  the three together, one driver thread per submitted campaign.
* :mod:`repro.service.httpapi` — a thin stdlib HTTP/JSON API
  (``POST /v1/campaigns``, ``GET /v1/campaigns/<id>``, ...).
* :mod:`repro.service.cli` — the ``repro serve`` / ``repro submit`` /
  ``repro status`` commands.

Importing :mod:`repro.service.scheduler` registers the ``service``
campaign-scheduler plugin, so ``run_campaign(spec, scheduler="service")``
drives a whole campaign through an ephemeral service instance and
returns a summary identical to the ``pool``/``serial`` schedulers'.
"""

__all__ = ["FuzzService", "JobQueue", "JobLease"]


def __getattr__(name):
    # Lazy re-exports: the client-side CLI commands (`repro submit` /
    # `repro status`) import this package without ever needing the
    # campaign machinery behind FuzzService.
    if name == "FuzzService":
        from repro.service.core import FuzzService

        return FuzzService
    if name in ("JobQueue", "JobLease"):
        from repro.service import queue

        return getattr(queue, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
