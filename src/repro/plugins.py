"""Plugin registries: the extension mechanism behind :mod:`repro.api`.

One tiny, dependency-free module that every subsystem can import without
cycles.  A :class:`PluginRegistry` maps names to plugins (target programs,
emulator engines, hardening passes, campaign schedulers) and enforces the
two contracts the facade's error messages rely on:

* registering a duplicate name raises :class:`DuplicatePluginError`, and
* looking up an unknown name raises :class:`UnknownPluginError` whose
  message lists every valid option.

The concrete registries live here too, but the *registrations* happen in
the subsystems that own the plugins (``repro.runtime.fastpath`` registers
the engines, ``repro.hardening.passes`` the mitigation strategies,
``repro.campaign.scheduler`` the schedulers, and each module under
``repro.targets`` its workload).  Third-party code extends the system with
the decorators re-exported by :mod:`repro.api`::

    from repro.api import TargetProgram, register_target

    @register_target
    def my_workload():
        return TargetProgram(name="mine", source=MINI_C, seeds=[b"hi"])

:class:`UnknownPluginError` subclasses both :class:`KeyError` and
:class:`ValueError` because the registries replaced ad-hoc tables that
raised one or the other; every pre-existing ``except`` clause keeps
working.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional


class PluginError(ValueError):
    """Base class for registry misuse (bad names, bad plugin types)."""


class DuplicatePluginError(PluginError):
    """Raised when a plugin name is registered twice without ``replace``."""


class UnknownPluginError(KeyError, ValueError):
    """An unknown plugin name; the message lists the valid options."""

    def __init__(self, kind: str, name: str, available: List[str]) -> None:
        options = ", ".join(available) if available else "(none registered)"
        self.kind = kind
        self.name = name
        self.available = list(available)
        super().__init__(f"unknown {kind} {name!r}; available: {options}")

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class PluginRegistry:
    """A named plugin table with duplicate rejection and helpful lookups."""

    def __init__(self, kind: str) -> None:
        #: human-readable plugin kind, used in every error message.
        self.kind = kind
        self._plugins: Dict[str, object] = {}

    def register(self, name: str, plugin: object, replace: bool = False):
        """Register ``plugin`` under ``name``; returns the plugin.

        Raises:
            DuplicatePluginError: if the name is taken and not ``replace``.
            PluginError: if the name is not a non-empty string.
        """
        if not isinstance(name, str) or not name:
            raise PluginError(
                f"{self.kind} name must be a non-empty string, got {name!r}")
        if name in self._plugins and not replace:
            raise DuplicatePluginError(
                f"{self.kind} {name!r} already registered")
        self._plugins[name] = plugin
        return plugin

    def unregister(self, name: str) -> None:
        """Remove a plugin (tests, hot-reload); unknown names raise."""
        if name not in self._plugins:
            raise UnknownPluginError(self.kind, name, self.names())
        del self._plugins[name]

    def get(self, name: str):
        """Look up a plugin by name.

        Raises:
            UnknownPluginError: (a ``KeyError`` *and* ``ValueError``) whose
                message lists every registered name.
        """
        try:
            return self._plugins[name]
        except KeyError:
            raise UnknownPluginError(self.kind, name, self.names()) from None

    def names(self) -> List[str]:
        """Registered plugin names, sorted."""
        return sorted(self._plugins)

    def add(self, name: str, replace: bool = False) -> Callable:
        """Decorator form of :meth:`register`::

            @REGISTRY.add("fast")
            def resolver(): ...
        """
        def decorator(plugin):
            return self.register(name, plugin, replace=replace)
        return decorator

    def __contains__(self, name: object) -> bool:
        return name in self._plugins

    def __len__(self) -> int:
        return len(self._plugins)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:
        return f"<PluginRegistry {self.kind}: {', '.join(self.names())}>"


# ---------------------------------------------------------------------------
# The concrete registries (populated by the owning subsystems at import time)
# ---------------------------------------------------------------------------

#: Emulator engines: name -> zero-arg resolver returning
#: ``(emulator class, speculation-controller class)``.  Populated by
#: :mod:`repro.runtime.fastpath`.
ENGINE_REGISTRY = PluginRegistry("emulator engine")

#: Hardening strategies: name -> factory ``(sites) -> RewritePass``.
#: Populated by :mod:`repro.hardening.passes`.
PASS_REGISTRY = PluginRegistry("hardening strategy")

#: Campaign schedulers: name -> scheduler class with the
#: :class:`repro.campaign.scheduler.CampaignScheduler` constructor shape.
#: Populated by :mod:`repro.campaign.scheduler`.
SCHEDULER_REGISTRY = PluginRegistry("campaign scheduler")

#: Speculation models: name -> zero-arg factory returning a fresh
#: :class:`repro.specmodels.base.SpeculationModel` instance.  Populated by
#: :mod:`repro.specmodels` (pht, btb, rsb, stl).
MODEL_REGISTRY = PluginRegistry("speculation model")


def target_registry():
    """The workload-target registry (importing it populates the built-ins)."""
    import repro.targets  # noqa: F401  (registers the paper's workloads)
    from repro.targets.base import REGISTRY

    return REGISTRY


# ---------------------------------------------------------------------------
# Registration decorators (the public ``@register_*`` surface)
# ---------------------------------------------------------------------------

def register_target(target=None, *, replace: bool = False):
    """Register a workload target.

    Works directly on a :class:`~repro.targets.base.TargetProgram`::

        register_target(TargetProgram(name="mine", source=SRC, seeds=[b""]))

    or as a decorator on a zero-argument factory, which is called once at
    decoration time (the decorated name is rebound to the produced
    target)::

        @register_target
        def my_workload():
            return TargetProgram(name="mine", source=SRC, seeds=[b""])
    """
    def _register(obj):
        from repro.targets.base import TargetProgram

        produced = obj
        if not isinstance(produced, TargetProgram) and callable(produced):
            produced = produced()
        if not isinstance(produced, TargetProgram):
            raise PluginError(
                "register_target expects a TargetProgram or a factory "
                f"returning one, got {type(produced).__name__}")
        target_registry().register(produced, replace=replace)
        return produced

    if target is None:
        return _register
    return _register(target)


def register_engine(name: str, resolver: Optional[Callable] = None,
                    replace: bool = False):
    """Register an emulator engine under ``name``.

    The plugin is a zero-argument resolver returning the engine's
    ``(emulator class, speculation-controller class)`` pair; resolution is
    deferred so engine modules can avoid import cycles::

        @register_engine("fast")
        def _fast():
            return FastEmulator, JournalingSpeculationController
    """
    def decorator(fn):
        return ENGINE_REGISTRY.register(name, fn, replace=replace)

    if resolver is None:
        return decorator
    return decorator(resolver)


def register_pass(name: str, factory: Optional[Callable] = None,
                  replace: bool = False):
    """Register a hardening strategy under ``name``.

    The plugin is a factory taking the gadget-site sequence and returning a
    :class:`~repro.rewriting.passes.RewritePass`; a pass class whose
    constructor takes ``(sites)`` can be decorated directly::

        @register_pass("fence")
        class FenceAtSitePass(RewritePass): ...
    """
    def decorator(fn):
        return PASS_REGISTRY.register(name, fn, replace=replace)

    if factory is None:
        return decorator
    return decorator(factory)


def register_scheduler(name: str, scheduler_cls: Optional[type] = None,
                       replace: bool = False):
    """Register a campaign scheduler class under ``name``.

    The class must accept ``(spec, checkpoint_path=None, progress=None)``
    and expose ``run(resume=False) -> CampaignSummary`` (subclassing
    :class:`~repro.campaign.scheduler.CampaignScheduler` is the easy way).
    """
    def decorator(cls):
        return SCHEDULER_REGISTRY.register(name, cls, replace=replace)

    if scheduler_cls is None:
        return decorator
    return decorator(scheduler_cls)


def register_model(name: str, factory: Optional[Callable] = None,
                   replace: bool = False):
    """Register a speculation model under ``name``.

    The plugin is a zero-argument factory returning a fresh (stateful)
    :class:`~repro.specmodels.base.SpeculationModel`; a model class whose
    constructor takes no required arguments can be decorated directly::

        @register_model("btb")
        class BtbModel(SpeculationModel): ...
    """
    def decorator(fn):
        return MODEL_REGISTRY.register(name, fn, replace=replace)

    if factory is None:
        return decorator
    return decorator(factory)


def engine_names() -> List[str]:
    """Registered emulator-engine names (import the runtime to populate)."""
    import repro.runtime.fastpath  # noqa: F401  (registers built-ins)

    return ENGINE_REGISTRY.names()


def strategy_names() -> List[str]:
    """Registered hardening-strategy names."""
    import repro.hardening.passes  # noqa: F401  (registers built-ins)

    return PASS_REGISTRY.names()


def scheduler_names() -> List[str]:
    """Registered campaign-scheduler names."""
    import repro.campaign.scheduler  # noqa: F401  (registers built-ins)
    import repro.service.scheduler  # noqa: F401  (registers "service")

    return SCHEDULER_REGISTRY.names()


def model_names() -> List[str]:
    """Registered speculation-model names (import populates built-ins)."""
    import repro.specmodels  # noqa: F401  (registers pht/btb/rsb/stl)

    return MODEL_REGISTRY.names()


def target_names() -> List[str]:
    """Registered workload-target names."""
    return target_registry().names()
