"""Teapot reproduction: Spectre-V1 gadget detection for COTS binaries.

This package reproduces *"Teapot: Efficiently Uncovering Spectre Gadgets in
COTS Binaries"* (CGO 2025) as a self-contained Python library: the TVM
binary substrate, a mini-C toolchain for building workloads, the
Teapot rewriter (Speculation Shadows), the SpecFuzz and SpecTaint
baselines, a coverage-guided fuzzer and the experiment harness that
regenerates every figure and table of the paper's evaluation.

Quickstart — the :mod:`repro.api` facade is the stable public surface::

    import repro.api as api

    run = (api.pipeline(target="jsmn")
           .fuzz(iterations=400)
           .harden("mask")
           .refuzz()
           .report())
    print(run.format_summary())

The low-level toolchain remains importable for experimentation::

    from repro import compile_source, TeapotRewriter, TeapotRuntime

    binary = compile_source(MINI_C_SOURCE)          # the "COTS binary"
    instrumented = TeapotRewriter().instrument(binary)
    runtime = TeapotRuntime(instrumented)
    result = runtime.run(b"attacker controlled input")
    for report in result.reports:
        print(report.category, hex(report.pc))

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
paper-experiment harness.
"""

from repro.minic.compiler import compile_source
from repro.minic.codegen import CompilerOptions, SwitchLowering
from repro.loader import TelfBinary, load_binary, loads_binary, save_binary, dumps_binary
from repro.disasm import disassemble
from repro.core import TeapotConfig, TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.baselines import (
    SpecFuzzConfig,
    SpecFuzzRewriter,
    SpecFuzzRuntime,
    SpecTaintAnalyzer,
    SpecTaintConfig,
)
from repro.runtime import Emulator, ExecutionResult
from repro.fuzzing import Fuzzer, FuzzTarget
from repro.sanitizers.reports import AttackerClass, Channel, GadgetReport
from repro.targets import get_target, inject_gadgets, compile_vanilla, runnable_targets
from repro.campaign import CampaignScheduler, CampaignSpec, run_campaign
from repro import api
from repro._version import __version__

__all__ = [
    "compile_source",
    "CompilerOptions",
    "SwitchLowering",
    "TelfBinary",
    "load_binary",
    "loads_binary",
    "save_binary",
    "dumps_binary",
    "disassemble",
    "TeapotConfig",
    "TeapotRewriter",
    "TeapotRuntime",
    "SpecFuzzConfig",
    "SpecFuzzRewriter",
    "SpecFuzzRuntime",
    "SpecTaintAnalyzer",
    "SpecTaintConfig",
    "Emulator",
    "ExecutionResult",
    "Fuzzer",
    "FuzzTarget",
    "AttackerClass",
    "Channel",
    "GadgetReport",
    "get_target",
    "inject_gadgets",
    "compile_vanilla",
    "runnable_targets",
    "CampaignScheduler",
    "CampaignSpec",
    "run_campaign",
    "api",
    "__version__",
]
