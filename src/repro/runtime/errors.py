"""Exception types raised by the TVM runtime."""

from __future__ import annotations


class EmulationError(RuntimeError):
    """A structural problem with the program being executed.

    Raised for conditions that indicate a bug in the pipeline rather than
    program behaviour: undecodable instructions, jumps outside the text
    section, unknown imports, exceeding the global fuel limit.
    """


class MemoryFault(Exception):
    """An access to unmapped memory (the SIGSEGV equivalent).

    During normal execution a fault crashes the program; during speculation
    simulation the runtime's signal-handler equivalent converts it into a
    rollback (paper §6.1, "Exceptions").
    """

    def __init__(self, address: int, size: int, write: bool) -> None:
        kind = "write to" if write else "read from"
        super().__init__(f"memory fault: {kind} unmapped address {address:#x} ({size} bytes)")
        self.address = address
        self.size = size
        self.write = write


class ArithmeticFault(Exception):
    """Division by zero (the SIGFPE equivalent)."""

    def __init__(self, pc: int) -> None:
        super().__init__(f"division by zero at {pc:#x}")
        self.pc = pc


class ProgramExit(Exception):
    """The program terminated voluntarily (``halt`` or the ``exit`` external)."""

    def __init__(self, status: int = 0) -> None:
        super().__init__(f"program exited with status {status}")
        self.status = status


class ProgramCrash(Exception):
    """The program crashed during *normal* execution.

    Crashes during speculation simulation never surface as this exception —
    they are rolled back, matching real transient execution.
    """

    def __init__(self, reason: str, pc: int) -> None:
        super().__init__(f"program crashed at {pc:#x}: {reason}")
        self.reason = reason
        self.pc = pc
