"""Speculation simulation: checkpoints, memory log, rollback and nesting.

This is the runtime half of Speculation Shadows (paper §5, §6.1).  The
rewriter inserts ``checkpoint`` pseudo-ops before conditional branches and
restore points throughout the Shadow Copy; at run time the
:class:`SpeculationController` decides when to enter a simulation, takes and
restores program-state checkpoints, maintains the memory log, enforces the
reorder-buffer instruction budget and implements the nested-speculation
heuristics of Teapot, SpecFuzz and SpecTaint.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.machine import StateJournal

#: The reorder-buffer stand-in: maximum instructions simulated per
#: speculation episode (paper uses 250, following prior studies).
DEFAULT_ROB_BUDGET = 250

#: Maximum nesting depth (number of simultaneously mispredicted branches);
#: gadgets guarded by more than six branches are considered unexploitable
#: (paper §2.3).
DEFAULT_MAX_DEPTH = 6


@dataclass
class Checkpoint:
    """A saved program state to which a rollback can return."""

    branch_address: int
    resume_pc: int
    registers: Tuple[int, ...]
    flags: Tuple[bool, bool, bool, bool]
    memlog_index: int
    taint_log_index: int
    register_tags: Optional[Tuple[int, ...]]
    flags_tag: int
    instruction_count_at_entry: int
    #: speculation model that opened this simulation ("pht", "btb", ...).
    model: str = "pht"


class JournalCheckpoint:
    """A lightweight checkpoint: a mark into the copy-on-write journal.

    Unlike :class:`Checkpoint` it stores no register copy and no memory log
    index — entering speculation records only *positions* (journal mark,
    taint-log index) plus the O(1) flags word and the DIFT register tags.
    The state itself is reconstructed at rollback by replaying the machine's
    :class:`~repro.runtime.machine.StateJournal` in reverse.

    A plain ``__slots__`` class (not a dataclass): checkpoints are allocated
    on every speculation entry, which makes construction cost part of the
    hot path.
    """

    __slots__ = (
        "branch_address",
        "resume_pc",
        "journal_mark",
        "flags",
        "taint_log_index",
        "register_tags",
        "flags_tag",
        "model",
    )

    def __init__(
        self,
        branch_address: int,
        resume_pc: int,
        journal_mark: int,
        flags: Tuple[bool, bool, bool, bool],
        taint_log_index: int,
        register_tags: Optional[Tuple[int, ...]],
        flags_tag: int,
        model: str = "pht",
    ) -> None:
        self.branch_address = branch_address
        self.resume_pc = resume_pc
        self.journal_mark = journal_mark
        self.flags = flags
        self.taint_log_index = taint_log_index
        self.register_tags = register_tags
        self.flags_tag = flags_tag
        self.model = model


class NestedSpeculationPolicy(abc.ABC):
    """Decides whether to enter a (possibly nested) speculation simulation."""

    name: str = "base"

    @abc.abstractmethod
    def should_enter(self, branch_address: int, depth: int) -> bool:
        """Whether to start simulating a misprediction of this branch now.

        Args:
            branch_address: static address of the conditional branch.
            depth: current nesting depth (0 = normal execution).
        """

    def reset(self) -> None:
        """Forget per-campaign state (called between fuzzing campaigns)."""


class DisabledNestingPolicy(NestedSpeculationPolicy):
    """Only top-level speculation, never nested.

    Used for the run-time performance comparison (paper §7.1 disables nested
    speculation and heuristics in all tools for fairness).
    """

    name = "disabled"

    def should_enter(self, branch_address: int, depth: int) -> bool:
        return depth == 0


class SpecFuzzNestingPolicy(NestedSpeculationPolicy):
    """SpecFuzz's heuristic: depth grows with per-branch encounter count.

    SpecFuzz "keeps track of the number of encounters per branch and
    gradually increases the depth of simulation as its encounter (count
    grows), up to the sixth order" (paper §6.1).  The growth schedule is a
    calibration parameter (``ramp``): permitted depth is
    ``1 + encounters // ramp``, capped at ``max_depth``.
    """

    name = "specfuzz"

    def __init__(self, max_depth: int = DEFAULT_MAX_DEPTH, ramp: int = 16) -> None:
        self.max_depth = max_depth
        self.ramp = ramp
        self._encounters: Dict[int, int] = {}

    def should_enter(self, branch_address: int, depth: int) -> bool:
        count = self._encounters.get(branch_address, 0)
        self._encounters[branch_address] = count + 1
        allowed_depth = min(self.max_depth, 1 + count // self.ramp)
        return depth < allowed_depth

    def reset(self) -> None:
        self._encounters.clear()


class SpecTaintNestingPolicy(NestedSpeculationPolicy):
    """SpecTaint's heuristic: depth-first, at most five entries per branch.

    SpecTaint "performs depth-first speculation for nested branches, however,
    enters speculation simulation for each branch only up to five times"
    (paper §6.1).  The five-entry cap is the source of the false negatives
    discussed in §7.3.
    """

    name = "spectaint"

    def __init__(self, max_visits: int = 5, max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        self.max_visits = max_visits
        self.max_depth = max_depth
        self._entries: Dict[int, int] = {}

    def should_enter(self, branch_address: int, depth: int) -> bool:
        if depth >= self.max_depth:
            return False
        entries = self._entries.get(branch_address, 0)
        if entries >= self.max_visits:
            return False
        self._entries[branch_address] = entries + 1
        return True

    def reset(self) -> None:
        self._entries.clear()


class TeapotNestingPolicy(NestedSpeculationPolicy):
    """Teapot's mixed heuristic (paper §6.1).

    For the first ``eager_runs`` entries of a branch, nesting is always
    allowed up to depth ``max_depth`` (the comprehensive-but-heavy phase
    that SpecTaint cannot afford); afterwards the SpecFuzz encounter-based
    ramp takes over.
    """

    name = "teapot"

    def __init__(
        self,
        max_depth: int = DEFAULT_MAX_DEPTH,
        eager_runs: int = 5,
        ramp: int = 16,
    ) -> None:
        self.max_depth = max_depth
        self.eager_runs = eager_runs
        self.ramp = ramp
        self._encounters: Dict[int, int] = {}

    def should_enter(self, branch_address: int, depth: int) -> bool:
        if depth >= self.max_depth:
            return False
        count = self._encounters.get(branch_address, 0)
        self._encounters[branch_address] = count + 1
        if count < self.eager_runs:
            return True
        allowed_depth = min(self.max_depth, 1 + count // self.ramp)
        return depth < allowed_depth

    def reset(self) -> None:
        self._encounters.clear()


@dataclass
class SpeculationStats:
    """Counters describing a run's speculation activity."""

    simulations_started: int = 0
    nested_simulations: int = 0
    rollbacks: int = 0
    forced_rollbacks: int = 0
    exception_rollbacks: int = 0
    budget_rollbacks: int = 0
    max_depth_reached: int = 0
    simulated_instructions: int = 0
    #: entries per *non-default* speculation model ("btb", "rsb", "stl",
    #: third-party).  Kept separate so PHT-only runs serialize exactly as
    #: they always did (the golden tables pin those dictionaries).
    model_entries: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dictionary."""
        record = {
            "simulations_started": self.simulations_started,
            "nested_simulations": self.nested_simulations,
            "rollbacks": self.rollbacks,
            "forced_rollbacks": self.forced_rollbacks,
            "exception_rollbacks": self.exception_rollbacks,
            "budget_rollbacks": self.budget_rollbacks,
            "max_depth_reached": self.max_depth_reached,
            "simulated_instructions": self.simulated_instructions,
        }
        for model, count in sorted(self.model_entries.items()):
            record[f"entered_{model}"] = count
        return record


class SpeculationController:
    """Runtime state machine for speculation simulation."""

    #: Whether guest stores are undo-logged by the machine's own journal
    #: (:class:`JournalingSpeculationController`) rather than by the
    #: emulator calling :meth:`log_memory_write` per store.
    uses_machine_journal = False

    def __init__(
        self,
        policy: Optional[NestedSpeculationPolicy] = None,
        rob_budget: int = DEFAULT_ROB_BUDGET,
    ) -> None:
        self.policy = policy or TeapotNestingPolicy()
        self.rob_budget = rob_budget
        self.checkpoints: List[Checkpoint] = []
        #: memory log: (address, old bytes) in write order.
        self.memlog: List[Tuple[int, bytes]] = []
        #: DIFT tag log: (shadow address, old tag byte) in write order.
        self.taint_log: List[Tuple[int, int]] = []
        self.spec_instruction_count = 0
        self.stats = SpeculationStats()
        #: deepest single rollback observed (undo-log entries replayed);
        #: telemetry-only — never serialized into ``spec_stats``, whose
        #: key set the golden tables pin.
        self.undo_depth_max = 0
        #: site a dynamic speculation model must not immediately re-enter
        #: at: set on every rollback of a dynamic-model checkpoint (whose
        #: ``resume_pc`` is the entry instruction itself) and consumed by
        #: the emulator's model hooks via :meth:`consume_skip`.
        self.skip_site: Optional[int] = None

    # -- state queries ---------------------------------------------------------
    @property
    def in_simulation(self) -> bool:
        """Whether any speculation simulation is active."""
        return bool(self.checkpoints)

    @property
    def depth(self) -> int:
        """Current nesting depth."""
        return len(self.checkpoints)

    @property
    def branch_addresses(self) -> Tuple[int, ...]:
        """Addresses of the mispredicted branches currently being simulated
        (outermost first)."""
        return tuple(cp.branch_address for cp in self.checkpoints)

    @property
    def current_model(self) -> str:
        """Speculation model of the innermost active simulation.

        ``"pht"`` outside simulation, so report attribution always has a
        value (the classic single-variant behaviour).
        """
        return self.checkpoints[-1].model if self.checkpoints else "pht"

    def consume_skip(self, site: int) -> bool:
        """Whether ``site`` is the just-rolled-back dynamic entry site.

        A dynamic model's rollback resumes *at* the entry instruction, so
        its hook would fire again and re-enter forever; the first
        architectural re-execution consumes the skip instead.
        """
        if self.skip_site == site:
            self.skip_site = None
            return True
        return False

    def budget_exceeded(self) -> bool:
        """Whether the ROB instruction budget has been exhausted."""
        return self.spec_instruction_count >= self.rob_budget

    # -- per-run lifecycle -------------------------------------------------------
    def begin_run(self) -> None:
        """Clear per-execution state before a fresh program run.

        Called by the emulator's process setup.  Stats and policy state
        deliberately survive — they accumulate across a fuzzing campaign.
        ``checkpoints`` is cleared in place, never reassigned: the fast
        engine's decoded thunks close over the list object to test
        ``in_simulation`` without an attribute lookup.
        """
        self.checkpoints.clear()
        self.memlog.clear()
        self.taint_log.clear()
        self.spec_instruction_count = 0
        self.skip_site = None

    # -- entry -------------------------------------------------------------------
    def maybe_enter(self, machine, branch_address: int, resume_pc: int,
                    dift=None, model: str = "pht") -> bool:
        """Decide whether to enter simulation for a speculation source.

        If the nesting policy approves, a checkpoint of the current program
        state is pushed and ``True`` is returned — the caller (the emulator's
        ``checkpoint`` handler, or a dynamic model hook) then redirects
        control to the mispredicted path.  ``model`` tags the checkpoint
        with the originating speculation variant.
        """
        if not self.policy.should_enter(branch_address, self.depth):
            return False
        if self.depth == 0:
            self.spec_instruction_count = 0
            self.stats.simulations_started += 1
        else:
            self.stats.nested_simulations += 1
        if model != "pht":
            entries = self.stats.model_entries
            entries[model] = entries.get(model, 0) + 1
        register_tags = None
        flags_tag = 0
        if dift is not None:
            register_tags = dift.snapshot_register_tags()
            flags_tag = dift.flags_tag
        self.checkpoints.append(
            Checkpoint(
                branch_address=branch_address,
                resume_pc=resume_pc,
                registers=machine.snapshot_registers(),
                flags=machine.flags.snapshot(),
                memlog_index=len(self.memlog),
                taint_log_index=len(self.taint_log),
                register_tags=register_tags,
                flags_tag=flags_tag,
                instruction_count_at_entry=self.spec_instruction_count,
                model=model,
            )
        )
        self.stats.max_depth_reached = max(self.stats.max_depth_reached, self.depth)
        return True

    # -- logging -----------------------------------------------------------------
    def log_memory_write(self, address: int, old_bytes: bytes) -> None:
        """Record the previous contents of a store executed in simulation."""
        self.memlog.append((address, old_bytes))

    def log_taint_write(self, shadow_address: int, old_tag: int) -> None:
        """Record the previous value of a tag-shadow byte written in simulation."""
        self.taint_log.append((shadow_address, old_tag))

    def count_instruction(self) -> None:
        """Account one architectural instruction executed in simulation."""
        self.spec_instruction_count += 1
        self.stats.simulated_instructions += 1

    def count_instructions(self, count: int) -> None:
        """Account ``count`` architectural instructions at once.

        Bit-identical to ``count`` calls of :meth:`count_instruction`;
        the jit engine uses this to flush a whole block segment's
        in-simulation accounting with one call.
        """
        self.spec_instruction_count += count
        self.stats.simulated_instructions += count

    # -- rollback ---------------------------------------------------------------------
    def rollback(self, machine, dift=None, reason: str = "restore") -> int:
        """Roll back to the innermost checkpoint.

        Undoes logged memory and taint writes performed since that
        checkpoint, restores registers/flags (and register tags), rewinds
        the program counter to the instruction after the ``checkpoint``
        pseudo-op (the original conditional branch) and returns the number
        of memory-log entries undone (for cost accounting).

        Raises:
            RuntimeError: if no simulation is active.
        """
        if not self.checkpoints:
            raise RuntimeError("rollback requested outside speculation simulation")
        checkpoint = self.checkpoints.pop()

        undone = 0
        while len(self.memlog) > checkpoint.memlog_index:
            address, old = self.memlog.pop()
            machine.memory.write_bytes(address, old)
            undone += 1
        machine.restore_registers(checkpoint.registers)
        if undone > self.undo_depth_max:
            self.undo_depth_max = undone
        self._finish_rollback(checkpoint, machine, dift, reason)
        return undone

    def _finish_rollback(self, checkpoint, machine, dift, reason: str) -> None:
        """Shared rollback tail: taint-log unwind, flags/pc/DIFT restoration
        and statistics — identical for snapshot and journaling controllers."""
        while len(self.taint_log) > checkpoint.taint_log_index:
            shadow_address, old_tag = self.taint_log.pop()
            machine.memory.write_shadow_byte(shadow_address, old_tag)

        machine.flags.restore(checkpoint.flags)
        machine.pc = checkpoint.resume_pc
        # Dynamic models resume *at* their entry instruction; arm the skip
        # so its hook lets the architectural re-execution retire.
        self.skip_site = (
            checkpoint.resume_pc if checkpoint.model != "pht" else None
        )
        if dift is not None and checkpoint.register_tags is not None:
            dift.restore_register_tags(checkpoint.register_tags)
            dift.flags_tag = checkpoint.flags_tag

        self.stats.rollbacks += 1
        if reason == "budget":
            self.stats.budget_rollbacks += 1
        elif reason == "forced":
            self.stats.forced_rollbacks += 1
        elif reason == "exception":
            self.stats.exception_rollbacks += 1
        if not self.checkpoints:
            self.spec_instruction_count = 0

    def reset(self) -> None:
        """Clear all run state (checkpoints, logs, counters) and policy state."""
        self.checkpoints.clear()
        self.memlog.clear()
        self.taint_log.clear()
        self.spec_instruction_count = 0
        self.skip_site = None
        self.stats = SpeculationStats()
        self.undo_depth_max = 0
        self.policy.reset()


class JournalingSpeculationController(SpeculationController):
    """Speculation controller backed by copy-on-write journaling.

    Instead of copying all registers and keeping a controller-side memory
    log, this controller attaches a :class:`StateJournal` to the machine
    while ≥ 1 checkpoint is live.  Every register and guest-memory write is
    then recorded as an ``(old value)`` undo entry by the machine itself,
    and rollback replays the journal segment since the innermost
    checkpoint's mark.  Nested speculation simply pops journal segments.

    Behaviour (rollback results, statistics and the ``undone`` memory-entry
    count the cost model charges for) is bit-identical to the legacy
    snapshot controller; the differential test harness asserts this for
    every nesting policy.
    """

    uses_machine_journal = True

    def __init__(
        self,
        policy: Optional[NestedSpeculationPolicy] = None,
        rob_budget: int = DEFAULT_ROB_BUDGET,
    ) -> None:
        super().__init__(policy, rob_budget=rob_budget)
        self.journal = StateJournal()
        self._machine = None

    # -- per-run lifecycle -------------------------------------------------------
    def begin_run(self) -> None:
        """Clear per-execution state, including a journal left over by a run
        that ended (crash/fuel) while a simulation was still active."""
        super().begin_run()
        if self._machine is not None:
            self._machine.attach_journal(None)
            self._machine = None
        self.journal.clear()

    # -- entry -------------------------------------------------------------------
    def maybe_enter(self, machine, branch_address: int, resume_pc: int,
                    dift=None, model: str = "pht") -> bool:
        """Decide whether to enter simulation; push a journal-mark checkpoint."""
        if not self.policy.should_enter(branch_address, self.depth):
            return False
        if self.depth == 0:
            self.spec_instruction_count = 0
            self.stats.simulations_started += 1
            self.journal.clear()
            self._machine = machine
            machine.attach_journal(self.journal)
        else:
            self.stats.nested_simulations += 1
        if model != "pht":
            entries = self.stats.model_entries
            entries[model] = entries.get(model, 0) + 1
        register_tags = None
        flags_tag = 0
        if dift is not None:
            register_tags = dift.snapshot_register_tags()
            flags_tag = dift.flags_tag
        self.checkpoints.append(
            JournalCheckpoint(
                branch_address,
                resume_pc,
                len(self.journal.entries),
                machine.flags.snapshot(),
                len(self.taint_log),
                register_tags,
                flags_tag,
                model,
            )
        )
        self.stats.max_depth_reached = max(self.stats.max_depth_reached, self.depth)
        return True

    # -- logging -----------------------------------------------------------------
    def log_memory_write(self, address: int, old_bytes: bytes) -> None:
        """No-op: the attached journal records guest stores automatically."""

    # -- rollback ---------------------------------------------------------------------
    def rollback(self, machine, dift=None, reason: str = "restore") -> int:
        """Roll back to the innermost checkpoint by replaying the journal."""
        if not self.checkpoints:
            raise RuntimeError("rollback requested outside speculation simulation")
        checkpoint = self.checkpoints.pop()

        undone = self.journal.rollback_to(checkpoint.journal_mark, machine)
        if undone > self.undo_depth_max:
            self.undo_depth_max = undone
        self._finish_rollback(checkpoint, machine, dift, reason)
        if not self.checkpoints:
            machine.attach_journal(None)
            self._machine = None
            self.journal.clear()
        return undone

    def reset(self) -> None:
        """Clear all run state including the journal attachment."""
        if self._machine is not None:
            self._machine.attach_journal(None)
            self._machine = None
        self.journal.clear()
        super().reset()
