"""Guest heap: malloc/free with ASan-style redzones.

The paper's binary ASan gets heap protection "for free" by linking against
the ASan allocator, which places poisoned redzones around every allocation
(paper §6.2.1).  This module is that allocator: a bump allocator inside the
LowMem heap arena that surrounds every block with left/right redzones and
poisons freed blocks, informing an attached ASan sanitizer (if any) so that
speculative out-of-bounds and use-after-free accesses are detectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.loader.layout import MemoryLayout
from repro.runtime.machine import Memory


class HeapError(RuntimeError):
    """Raised on invalid heap operations (double free, foreign pointer, OOM)."""


#: Size of the poisoned guard zones placed on both sides of an allocation.
REDZONE_SIZE = 32
#: Allocation alignment.
ALIGNMENT = 16


@dataclass
class Allocation:
    """Metadata for one live or freed heap block."""

    address: int
    size: int
    freed: bool = False


class Heap:
    """A bump allocator with redzones over the LowMem heap arena."""

    def __init__(self, memory: Memory, layout: MemoryLayout,
                 arena_size: int = 8 << 20) -> None:
        self.memory = memory
        self.layout = layout
        self.arena_start = layout.heap_base
        self.arena_size = arena_size
        if layout.heap_base + arena_size > layout.lowmem_end:
            raise HeapError("heap arena does not fit in LowMem")
        self._cursor = self.arena_start
        self.allocations: Dict[int, Allocation] = {}
        #: attached ASan sanitizer (optional; duck-typed: poison_region /
        #: unpoison_region).
        self.asan = None
        memory.map_region(self.arena_start, arena_size)

    # -- statistics ---------------------------------------------------------
    @property
    def bytes_allocated(self) -> int:
        """Total payload bytes of live allocations."""
        return sum(a.size for a in self.allocations.values() if not a.freed)

    @property
    def allocation_count(self) -> int:
        """Number of live allocations."""
        return sum(1 for a in self.allocations.values() if not a.freed)

    # -- allocation ------------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes and return the payload address.

        Raises:
            HeapError: if the arena is exhausted or ``size`` is invalid.
        """
        if size < 0:
            raise HeapError(f"malloc of negative size {size}")
        size = max(size, 1)
        aligned = (size + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT
        total = REDZONE_SIZE + aligned + REDZONE_SIZE
        if self._cursor + total > self.arena_start + self.arena_size:
            raise HeapError("heap arena exhausted")
        left_redzone = self._cursor
        payload = left_redzone + REDZONE_SIZE
        right_redzone = payload + aligned
        self._cursor = right_redzone + REDZONE_SIZE

        self.allocations[payload] = Allocation(payload, size)
        if self.asan is not None:
            self.asan.poison_region(left_redzone, REDZONE_SIZE)
            self.asan.unpoison_region(payload, size)
            # Partial-granule poisoning of the slack between size and the
            # aligned end, plus the right redzone.
            self.asan.poison_region(payload + size, aligned - size + REDZONE_SIZE)
        return payload

    def calloc(self, count: int, size: int) -> int:
        """Allocate and zero ``count * size`` bytes."""
        total = count * size
        address = self.malloc(total)
        self.memory.write_bytes(address, bytes(total if total > 0 else 1))
        return address

    def realloc(self, ptr: int, size: int) -> int:
        """Grow/shrink an allocation, copying the old contents."""
        if ptr == 0:
            return self.malloc(size)
        old = self.allocations.get(ptr)
        if old is None or old.freed:
            raise HeapError(f"realloc of invalid pointer {ptr:#x}")
        new_ptr = self.malloc(size)
        copy_len = min(old.size, size)
        self.memory.write_bytes(new_ptr, self.memory.read_bytes(ptr, copy_len))
        self.free(ptr)
        return new_ptr

    def free(self, ptr: int) -> None:
        """Free an allocation, poisoning its payload.

        Raises:
            HeapError: on double free or a pointer not from this heap.
        """
        if ptr == 0:
            return
        alloc = self.allocations.get(ptr)
        if alloc is None:
            raise HeapError(f"free of pointer {ptr:#x} not from this heap")
        if alloc.freed:
            raise HeapError(f"double free of {ptr:#x}")
        alloc.freed = True
        if self.asan is not None:
            self.asan.poison_region(alloc.address, alloc.size)

    def allocation_containing(self, addr: int) -> Optional[Allocation]:
        """The allocation whose payload contains ``addr``, if any."""
        for alloc in self.allocations.values():
            if alloc.address <= addr < alloc.address + alloc.size:
                return alloc
        return None
