"""Deterministic cycle-cost model for TVM execution.

The paper's Figures 1 and 7 report *normalized run time* — instrumented
execution time divided by native execution time on the same machine.  This
reproduction replaces wall-clock time with a deterministic cycle model so
the benchmarks are reproducible and machine-independent, while preserving
the structural sources of overhead the paper attributes the results to:

* every architectural instruction costs a small constant,
* every instrumentation pseudo-op costs the length of the assembly snippet
  the paper's runtime library would emit for it (checkpointing all
  registers is expensive, a guard ``if (in_simulation)`` check is cheap but
  ubiquitous, per-instruction DIFT propagation is costlier than the
  per-block batched variant, ...),
* rollbacks cost a base amount plus work proportional to the memory log,
* SpecTaint pays a per-instruction *emulation multiplier* modelling DECAF /
  QEMU dynamic binary translation plus whole-system taint tracking, which
  is what makes it an order of magnitude slower than the compiler-based
  approach (paper §3.1).

The exact constants are calibration parameters, documented here and swept
by the ablation benchmarks; the paper-facing claims (who is faster, by
roughly what factor) are robust to them because they stem from *counts* of
executed instrumentation, which the instrumentation structure dictates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.instructions import Opcode


def _default_opcode_costs() -> Dict[Opcode, int]:
    costs = {op: 1 for op in Opcode}
    costs.update(
        {
            # architectural
            Opcode.LOAD: 2,
            Opcode.STORE: 2,
            Opcode.PUSH: 2,
            Opcode.POP: 2,
            Opcode.MUL: 3,
            Opcode.DIV: 10,
            Opcode.MOD: 10,
            Opcode.CALL: 3,
            Opcode.ICALL: 4,
            Opcode.IJMP: 3,
            Opcode.RET: 3,
            Opcode.ECALL: 5,
            Opcode.CPUID: 20,
            Opcode.LFENCE: 10,
            # instrumentation pseudo-ops (snippet lengths, paper §6.1/6.2)
            Opcode.CHECKPOINT: 34,       # pack & spill GPRs + flags + pc
            Opcode.TRAMP_JCC: 1,
            Opcode.ASAN_CHECK: 5,        # shadow address compute + test + branch
            Opcode.MEMLOG: 6,            # read old value + append to log
            Opcode.DIFT_PROP: 8,         # per-instruction tag transfer + tag log
            Opcode.DIFT_BATCH: 2,        # per-block optimised snippet (plus per-op term)
            Opcode.POLICY_LOAD: 10,      # attacker-tag test + ASan + secret promotion
            Opcode.POLICY_STORE: 6,
            Opcode.POLICY_BRANCH: 4,     # FLAGS-operand secret test
            Opcode.RESTORE_COND: 3,      # instruction-counter check
            Opcode.RESTORE_ALWAYS: 2,
            Opcode.SPEC_REDIRECT: 2,     # in_simulation test + jump
            Opcode.MARKER_NOP: 1,
            Opcode.GUARD_CHECK: 2,       # load in_simulation flag + test + branch
            Opcode.COV_TRACE: 6,         # call into coverage runtime (clobbers regs)
            Opcode.COV_SPEC: 2,          # lazy guard-ID note (paper §6.3 optimisation)
            Opcode.TAINT_SOURCE: 5,
        }
    )
    return costs


@dataclass
class CostModel:
    """Cycle costs for architectural and instrumentation operations."""

    opcode_costs: Dict[Opcode, int] = field(default_factory=_default_opcode_costs)
    #: additional per-architectural-instruction multiplier (1 = no overhead);
    #: SpecTaint uses ~50 to model full-system emulation with DIFT.
    emulation_multiplier: int = 1
    #: fixed cost of performing a rollback.
    rollback_base: int = 40
    #: per-memory-log-entry cost during rollback.
    rollback_per_entry: int = 2
    #: per-architectural-op cost folded into a DIFT_BATCH snippet.
    dift_batch_per_op: int = 1
    #: fixed cost of an external (libc stand-in) call.
    external_base: int = 20
    #: per-byte cost of bulk externals (memcpy/memset/input reads).
    external_per_byte: int = 1

    def instruction_cost(self, opcode: Opcode) -> int:
        """Cost of executing one instruction of the given opcode."""
        base = self.opcode_costs.get(opcode, 1)
        if opcode in _ARCHITECTURAL_FOR_MULTIPLIER and self.emulation_multiplier > 1:
            return base * self.emulation_multiplier
        return base

    def rollback_cost(self, memlog_entries: int) -> int:
        """Cost of a rollback that must undo ``memlog_entries`` logged writes."""
        return self.rollback_base + self.rollback_per_entry * memlog_entries

    def dift_batch_cost(self, op_count: int) -> int:
        """Cost of a batched per-block tag-propagation snippet."""
        return self.opcode_costs[Opcode.DIFT_BATCH] + self.dift_batch_per_op * op_count

    def external_cost(self, byte_count: int = 0) -> int:
        """Cost of an external call moving ``byte_count`` bytes."""
        return self.external_base + self.external_per_byte * byte_count

    def scaled(self, emulation_multiplier: int) -> "CostModel":
        """A copy of this model with a different emulation multiplier."""
        return CostModel(
            opcode_costs=dict(self.opcode_costs),
            emulation_multiplier=emulation_multiplier,
            rollback_base=self.rollback_base,
            rollback_per_entry=self.rollback_per_entry,
            dift_batch_per_op=self.dift_batch_per_op,
            external_base=self.external_base,
            external_per_byte=self.external_per_byte,
        )


#: Opcodes subject to the emulation multiplier (architectural work that a
#: full-system emulator must translate and instrument one by one).
_ARCHITECTURAL_FOR_MULTIPLIER = frozenset(
    op for op in Opcode
    if op
    not in {
        Opcode.CHECKPOINT,
        Opcode.TRAMP_JCC,
        Opcode.ASAN_CHECK,
        Opcode.MEMLOG,
        Opcode.DIFT_PROP,
        Opcode.DIFT_BATCH,
        Opcode.POLICY_LOAD,
        Opcode.POLICY_STORE,
        Opcode.POLICY_BRANCH,
        Opcode.RESTORE_COND,
        Opcode.RESTORE_ALWAYS,
        Opcode.SPEC_REDIRECT,
        Opcode.MARKER_NOP,
        Opcode.GUARD_CHECK,
        Opcode.COV_TRACE,
        Opcode.COV_SPEC,
        Opcode.TAINT_SOURCE,
    }
)

#: The default cost model used by native and Teapot/SpecFuzz executions.
DEFAULT_COSTS = CostModel()

#: Emulation multiplier used for the SpecTaint baseline (QEMU/DECAF model).
SPECTAINT_EMULATION_MULTIPLIER = 150
