"""External (imported) functions: the uninstrumented-libc stand-in.

COTS binaries call into shared libraries the rewriter does not instrument;
the paper terminates speculation simulation at such calls because their side
effects cannot be rolled back (§6.1, "Unconditional Restore Points").  In
this reproduction those libraries are implemented as Python handlers
registered in an :class:`ExternalRegistry`; the instrumented program reaches
them through ``ecall`` instructions.

Input-reading externals (``read_input``, ``fread``, ``fgets``, ``getchar``)
are the fuzzing entry points: they consume bytes from the emulator's current
fuzz input, and — exactly like the paper's wrappers for ``fread``/``fgets``
(§6.2.2, "Taint Sources") — mark the bytes they produce as attacker-directly
controlled when a DIFT sanitizer is attached.

Copying externals (``memcpy``/``memmove``/``strcpy``) propagate DIFT tags
byte-to-byte, since real DFSan interposes on them as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.errors import ProgramCrash, ProgramExit
from repro.runtime.machine import to_signed, to_unsigned

#: An external handler: ``(emulator, args) -> (return value, bytes moved)``.
Handler = Callable[["object", List[int]], Tuple[int, int]]


@dataclass
class ExternalCall:
    """A registered external function."""

    name: str
    handler: Handler
    #: whether the external reads attacker-controlled input (taint source)
    taint_source: bool = False


class ExternalRegistry:
    """Name-indexed collection of external functions."""

    def __init__(self) -> None:
        self._externals: Dict[str, ExternalCall] = {}

    def register(self, name: str, handler: Handler, taint_source: bool = False) -> None:
        """Register (or replace) an external function."""
        self._externals[name] = ExternalCall(name, handler, taint_source)

    def get(self, name: str) -> ExternalCall:
        """Look up an external by name.

        Raises:
            KeyError: if the external is not registered.
        """
        if name not in self._externals:
            raise KeyError(f"unknown external function {name!r}")
        return self._externals[name]

    def names(self) -> List[str]:
        """All registered external names."""
        return sorted(self._externals)

    def __contains__(self, name: str) -> bool:
        return name in self._externals


# ---------------------------------------------------------------------------
# Handlers.  Each receives the emulator and the raw argument registers.
# ---------------------------------------------------------------------------

def _malloc(em, args):
    return em.heap.malloc(to_unsigned(args[0])), 0


def _calloc(em, args):
    return em.heap.calloc(to_unsigned(args[0]), to_unsigned(args[1])), to_unsigned(args[0] * args[1])


def _realloc(em, args):
    return em.heap.realloc(to_unsigned(args[0]), to_unsigned(args[1])), 0


def _free(em, args):
    em.heap.free(to_unsigned(args[0]))
    return 0, 0


def _copy_tags(em, dst: int, src: int, count: int) -> None:
    if em.dift is not None and count > 0:
        em.dift.copy_mem_tags(dst, src, count)


def _memcpy(em, args):
    dst, src, count = args[0], args[1], to_unsigned(args[2])
    if count:
        data = em.machine.memory.read_bytes(src, count)
        em.machine.memory.write_bytes(dst, data)
        _copy_tags(em, dst, src, count)
    return dst, count


def _memmove(em, args):
    return _memcpy(em, args)


def _memset(em, args):
    dst, value, count = args[0], args[1] & 0xFF, to_unsigned(args[2])
    if count:
        em.machine.memory.write_bytes(dst, bytes([value]) * count)
        if em.dift is not None:
            em.dift.clear_mem_tags(dst, count)
    return dst, count


def _memcmp(em, args):
    a, b, count = args[0], args[1], to_unsigned(args[2])
    da = em.machine.memory.read_bytes(a, count) if count else b""
    db = em.machine.memory.read_bytes(b, count) if count else b""
    if da == db:
        return 0, count
    return (1 if da > db else to_unsigned(-1)), count


def _strlen(em, args):
    data = em.machine.memory.read_cstring(args[0])
    return len(data), len(data)


def _strcmp(em, args):
    a = em.machine.memory.read_cstring(args[0])
    b = em.machine.memory.read_cstring(args[1])
    if a == b:
        return 0, len(a) + len(b)
    return (1 if a > b else to_unsigned(-1)), len(a) + len(b)


def _strncmp(em, args):
    count = to_unsigned(args[2])
    a = em.machine.memory.read_cstring(args[0])[:count]
    b = em.machine.memory.read_cstring(args[1])[:count]
    if a == b:
        return 0, len(a) + len(b)
    return (1 if a > b else to_unsigned(-1)), len(a) + len(b)


def _strcpy(em, args):
    dst, src = args[0], args[1]
    data = em.machine.memory.read_cstring(src) + b"\x00"
    em.machine.memory.write_bytes(dst, data)
    _copy_tags(em, dst, src, len(data))
    return dst, len(data)


def _strncpy(em, args):
    dst, src, count = args[0], args[1], to_unsigned(args[2])
    data = em.machine.memory.read_cstring(src)[:count]
    data = data + b"\x00" * (count - len(data))
    if count:
        em.machine.memory.write_bytes(dst, data)
        _copy_tags(em, dst, src, min(len(data), count))
    return dst, count


def _read_input(em, args):
    """``read_input(buf, max_len)`` — copy fuzz input bytes into the program."""
    buf, max_len = args[0], to_unsigned(args[1])
    data = em.consume_input(max_len)
    if data:
        em.machine.memory.write_bytes(buf, data)
        if em.dift is not None:
            em.dift.mark_user_input(buf, len(data))
    return len(data), len(data)


def _input_size(em, args):
    return len(em.input_data), 0


def _fread(em, args):
    """``fread(buf, size, count)`` — stream-style read from the fuzz input."""
    buf, size, count = args[0], to_unsigned(args[1]), to_unsigned(args[2])
    data = em.consume_input(size * count)
    if data:
        em.machine.memory.write_bytes(buf, data)
        if em.dift is not None:
            em.dift.mark_user_input(buf, len(data))
    return len(data) // size if size else 0, len(data)


def _fgets(em, args):
    """``fgets(buf, size)`` — read up to a newline (NUL-terminated)."""
    buf, size = args[0], to_unsigned(args[1])
    if size <= 1:
        return 0, 0
    data = em.consume_input_line(size - 1)
    if not data:
        return 0, 0
    em.machine.memory.write_bytes(buf, data + b"\x00")
    if em.dift is not None:
        em.dift.mark_user_input(buf, len(data))
    return buf, len(data)


def _getchar(em, args):
    data = em.consume_input(1)
    if not data:
        return to_unsigned(-1), 0
    if em.dift is not None:
        # The returned byte is attacker-directly controlled; the emulator
        # applies the pending tag to the return register after the call.
        em.pending_return_tag = em.dift.TAG_USER
    return data[0], 1


def _attack_input(em, args):
    """``attack_input()`` — the artificial-gadget input source (paper §7.2).

    The Table 3 methodology disables the ordinary taint sources and treats
    the variable read by the injected gadget as the only user input.  This
    external returns eight bytes taken directly from the raw fuzz input
    (without consuming the program's own input stream, so injection does not
    perturb the host program's parsing) and tags the returned value
    attacker-direct regardless of whether the normal taint sources are
    enabled.  Successive calls read successive 8-byte windows, wrapping
    around, so every injected gadget instance gets its own attacker value.
    """
    counter = getattr(em, "attack_input_counter", 0)
    em.attack_input_counter = counter + 1
    data = em.input_data
    if not data:
        value = 0
    else:
        offset = (counter * 8) % len(data)
        window = (data[offset:offset + 8] + data[:8])[:8]
        value = int.from_bytes(window.ljust(8, b"\x00"), "little")
    if em.dift is not None:
        em.pending_return_tag = em.dift.TAG_USER
    return value, 8


def _taint_mark(em, args):
    """``taint_mark(ptr, size)`` — explicitly mark memory attacker-direct."""
    if em.dift is not None:
        em.dift.mark_region(args[0], to_unsigned(args[1]), em.dift.TAG_USER)
    return 0, 0


def _print_int(em, args):
    em.output.append(str(to_signed(args[0])))
    return 0, 0


def _print_str(em, args):
    data = em.machine.memory.read_cstring(args[0])
    em.output.append(data.decode("latin-1"))
    return 0, len(data)


def _puts(em, args):
    return _print_str(em, args)


def _exit(em, args):
    raise ProgramExit(to_signed(args[0]))


def _abort(em, args):
    raise ProgramCrash("abort() called", em.machine.pc)


def default_externals() -> ExternalRegistry:
    """The standard external registry used by all targets and tests."""
    registry = ExternalRegistry()
    registry.register("malloc", _malloc)
    registry.register("calloc", _calloc)
    registry.register("realloc", _realloc)
    registry.register("free", _free)
    registry.register("memcpy", _memcpy)
    registry.register("memmove", _memmove)
    registry.register("memset", _memset)
    registry.register("memcmp", _memcmp)
    registry.register("strlen", _strlen)
    registry.register("strcmp", _strcmp)
    registry.register("strncmp", _strncmp)
    registry.register("strcpy", _strcpy)
    registry.register("strncpy", _strncpy)
    registry.register("read_input", _read_input, taint_source=True)
    registry.register("input_size", _input_size)
    registry.register("fread", _fread, taint_source=True)
    registry.register("fgets", _fgets, taint_source=True)
    registry.register("getchar", _getchar, taint_source=True)
    registry.register("attack_input", _attack_input, taint_source=True)
    registry.register("taint_mark", _taint_mark)
    registry.register("print_int", _print_int)
    registry.register("print_str", _print_str)
    registry.register("puts", _puts)
    registry.register("exit", _exit)
    registry.register("abort", _abort)
    return registry
