"""Persistent compiled-block cache for the ``jit`` engine.

The jit engine (:mod:`repro.runtime.jit`) compiles decoded basic blocks
into generated Python source and ``compile()``s it into one code object
per binary.  Source generation and byte-compilation dominate emulator
construction time, and fuzzing campaigns construct many emulators over
the *same* instrumented binary — one per worker process, one per variant
run, one per re-fuzz.  This module shares that work:

* **In-process memo** — constructing a second ``JitEmulator`` over the
  same (binary, options) pair in one process reuses the compiled code
  object directly (a "memo" hit; the differential tests construct
  dozens of emulators per binary).
* **On-disk cache** — the code object is marshalled to a cache file so
  *other* processes (pool-scheduler campaign workers, sequential
  ``repro fuzz`` invocations) skip compilation entirely (a "disk" hit).

Cache layout
------------

One file per (binary, options) pair under the cache directory::

    <sha256(binary)[:16]>-<options_digest[:16]>.jitblk

Each file is a single JSON header line followed by the raw
``marshal.dumps`` payload of the compiled module::

    {"format": 1, "binary": "<full sha256>", "options": "<full digest>",
     "version": "0.5.0", "magic": "<hex of importlib MAGIC_NUMBER>", ...}
    <marshal bytes>

Invalidation keys
-----------------

A cached entry is only used when *all* of the following match; anything
else is rejected as **stale** and transparently recompiled (the fresh
entry overwrites the stale file):

* the full SHA-256 of the serialized binary (a rebuilt binary whose
  hash prefix collides must not reuse old blocks),
* the engine-options digest (cost model, speculation variants, DIFT
  on/off, ``max_steps``, codegen version — see
  ``JitEmulator._options_digest``),
* the ``repro`` package version,
* the interpreter's bytecode ``MAGIC_NUMBER`` (marshalled code objects
  are not portable across Python bytecode versions).

Unreadable or truncated files (killed worker mid-write, disk
corruption) are counted as **corrupt**, deleted, and recompiled; writes
go through a temp file + atomic ``os.replace`` so a crashed writer can
never publish a half-written entry.  The cache is best-effort
throughout: any ``OSError`` degrades to plain recompilation.

The cache directory defaults to ``<tempdir>/repro-jit-cache-<uid>`` and
is overridden with ``REPRO_JIT_CACHE`` (set to ``0``/``off`` to disable
persistence; the in-process memo stays on).
"""

from __future__ import annotations

import importlib.util
import json
import marshal
import os
import sys
import tempfile
from typing import Dict, Optional, Tuple

from repro._version import __version__

#: bump when the on-disk layout changes.
CACHE_FORMAT = 1

#: hex of the interpreter's bytecode magic; marshalled code objects are
#: only valid for the exact bytecode version that produced them.
_MAGIC_HEX = importlib.util.MAGIC_NUMBER.hex()

#: values of ``REPRO_JIT_CACHE`` that disable the on-disk cache.
_DISABLED_VALUES = ("0", "off", "none", "disabled")


def default_cache_dir() -> Optional[str]:
    """Resolve the cache directory from ``REPRO_JIT_CACHE``.

    Returns ``None`` when persistence is disabled.
    """
    configured = os.environ.get("REPRO_JIT_CACHE")
    if configured is not None:
        if configured.strip().lower() in _DISABLED_VALUES or not configured.strip():
            return None
        return configured
    try:
        uid = os.getuid()
    except AttributeError:  # non-POSIX
        uid = 0
    return os.path.join(tempfile.gettempdir(), f"repro-jit-cache-{uid}")


class BlockCache:
    """Two-level (memo + disk) cache of compiled jit block modules."""

    def __init__(self, directory: Optional[str] = None,
                 version: str = __version__) -> None:
        #: on-disk location; ``None`` disables persistence (memo only).
        self.directory = directory
        self.version = version
        #: in-process memo: (binary_hash, options_digest) -> code object.
        self._memo: Dict[Tuple[str, str], object] = {}
        #: hit/miss accounting, exposed through ``engine.jit.cache_*``
        #: telemetry gauges and asserted by the cache tests.
        self.stats: Dict[str, int] = {
            "memo_hits": 0,   # same process, same (binary, options)
            "disk_hits": 0,   # valid entry loaded from the cache dir
            "misses": 0,      # no entry anywhere; compiled from scratch
            "stale": 0,       # entry rejected (hash/options/version/magic)
            "corrupt": 0,     # entry unreadable; deleted and recompiled
            "stores": 0,      # entries written
        }

    # -- key / path ----------------------------------------------------------
    def path_for(self, binary_hash: str, options_digest: str) -> Optional[str]:
        """Cache-file path for one (binary, options) pair."""
        if self.directory is None:
            return None
        return os.path.join(
            self.directory, f"{binary_hash[:16]}-{options_digest[:16]}.jitblk"
        )

    def _header(self, binary_hash: str, options_digest: str) -> Dict[str, str]:
        return {
            "format": CACHE_FORMAT,
            "binary": binary_hash,
            "options": options_digest,
            "version": self.version,
            "magic": _MAGIC_HEX,
            "python": "%s-%d.%d" % (sys.implementation.name,
                                    sys.version_info[0], sys.version_info[1]),
        }

    # -- lookup --------------------------------------------------------------
    def load(self, binary_hash: str, options_digest: str):
        """Return the cached code object, or ``None`` (then compile+store)."""
        key = (binary_hash, options_digest)
        memo = self._memo.get(key)
        if memo is not None:
            self.stats["memo_hits"] += 1
            return memo
        path = self.path_for(binary_hash, options_digest)
        if path is None:
            self.stats["misses"] += 1
            return None
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.stats["misses"] += 1
            return None
        code = self._validate(path, data, binary_hash, options_digest)
        if code is not None:
            self._memo[key] = code
        return code

    def _validate(self, path: str, data: bytes, binary_hash: str,
                  options_digest: str):
        """Parse + check one cache file; classifies stale vs corrupt."""
        newline = data.find(b"\n")
        if newline < 0:
            return self._reject_corrupt(path)
        try:
            header = json.loads(data[:newline].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return self._reject_corrupt(path)
        if not isinstance(header, dict):
            return self._reject_corrupt(path)
        expected = self._header(binary_hash, options_digest)
        for field in ("format", "binary", "options", "version", "magic"):
            if header.get(field) != expected[field]:
                self.stats["stale"] += 1
                return None
        try:
            code = marshal.loads(data[newline + 1:])
        except (EOFError, ValueError, TypeError):
            return self._reject_corrupt(path)
        if not hasattr(code, "co_code"):
            return self._reject_corrupt(path)
        self.stats["disk_hits"] += 1
        return code

    def _reject_corrupt(self, path: str):
        self.stats["corrupt"] += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        return None

    # -- store ---------------------------------------------------------------
    def store(self, binary_hash: str, options_digest: str, code) -> None:
        """Publish a freshly compiled module (memo always; disk if enabled).

        The preceding :meth:`load` already counted the miss, so this
        only counts the store.
        """
        self._memo[(binary_hash, options_digest)] = code
        path = self.path_for(binary_hash, options_digest)
        if path is None:
            return
        header = self._header(binary_hash, options_digest)
        payload = (json.dumps(header, sort_keys=True).encode("utf-8")
                   + b"\n" + marshal.dumps(code))
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)  # atomic publish
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # best-effort: a read-only cache dir just disables reuse
        self.stats["stores"] += 1


#: process-wide cache instance, shared by every JitEmulator so the memo
#: and the telemetry counters cover the whole process.  Re-resolved when
#: ``REPRO_JIT_CACHE`` changes (tests point it at temp directories).
_shared: Optional[BlockCache] = None
_shared_dir: Optional[str] = None


def shared_cache() -> BlockCache:
    """The process-wide :class:`BlockCache` for the current environment."""
    global _shared, _shared_dir
    directory = default_cache_dir()
    if _shared is None or directory != _shared_dir:
        _shared = BlockCache(directory)
        _shared_dir = directory
    return _shared
