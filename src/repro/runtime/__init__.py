"""TVM runtime: machine state, emulator, heap, externals and speculation.

This package plays two roles from the paper at once:

* the **CPU / OS substrate** that executes TVM binaries (register file,
  flags, sparse virtual memory, stack, heap, "libc" externals), and
* the **runtime support library** that Teapot's instrumentation calls into:
  program-state checkpoints, the memory log, rollback, conditional and
  unconditional restore points, the nested-speculation heuristics and the
  signal-handler-equivalent exception handling (paper §6.1).

Instrumentation pseudo-ops inserted by the rewriters are executed here; each
carries a documented cycle cost (:mod:`repro.runtime.costs`) equal to the
length of the assembly snippet the paper's runtime library would emit, so
run-time comparisons between Teapot, SpecFuzz and SpecTaint reflect the same
structural overheads the paper measures.
"""

from repro.runtime.errors import (
    EmulationError,
    MemoryFault,
    ProgramCrash,
    ProgramExit,
)
from repro.runtime.costs import CostModel, DEFAULT_COSTS
from repro.runtime.machine import Flags, MachineState, Memory
from repro.runtime.heap import Heap, HeapError
from repro.runtime.externals import ExternalCall, ExternalRegistry, default_externals
from repro.runtime.speculation import (
    Checkpoint,
    DisabledNestingPolicy,
    NestedSpeculationPolicy,
    SpecFuzzNestingPolicy,
    SpecTaintNestingPolicy,
    SpeculationController,
    TeapotNestingPolicy,
)
from repro.runtime.emulator import Emulator, ExecutionResult

__all__ = [
    "EmulationError",
    "MemoryFault",
    "ProgramCrash",
    "ProgramExit",
    "CostModel",
    "DEFAULT_COSTS",
    "Flags",
    "MachineState",
    "Memory",
    "Heap",
    "HeapError",
    "ExternalCall",
    "ExternalRegistry",
    "default_externals",
    "Checkpoint",
    "DisabledNestingPolicy",
    "NestedSpeculationPolicy",
    "SpecFuzzNestingPolicy",
    "SpecTaintNestingPolicy",
    "SpeculationController",
    "TeapotNestingPolicy",
    "Emulator",
    "ExecutionResult",
]
