"""Architectural machine state: registers, flags and sparse virtual memory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.instructions import ConditionCode
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register
from repro.loader.layout import DEFAULT_LAYOUT, MemoryLayout
from repro.runtime.errors import MemoryFault

MASK64 = (1 << 64) - 1
PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1


class StateJournal:
    """Copy-on-write undo log over registers and guest memory.

    While a speculation simulation is active the machine appends the *old*
    value of every mutated register and every overwritten guest memory range
    to this journal; a rollback replays the entries in reverse instead of
    restoring a full snapshot.  Nested speculation works with *marks*: each
    checkpoint remembers ``len(entries)`` at entry and rolling back pops only
    the segment recorded since that mark.

    Entries are ``(is_memory, key, old)`` tuples: ``(False, reg_index,
    old_value)`` for register writes and ``(True, address, old_bytes)`` for
    guest memory writes.  The journal is attached to a
    :class:`MachineState` and its :class:`Memory` through their ``journal``
    attributes; ``None`` (the default) disables journaling entirely, so the
    non-speculative fast path pays only a single ``is not None`` test.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[bool, int, object]] = []

    def mark(self) -> int:
        """The current journal position (stored by checkpoints)."""
        return len(self.entries)

    def rollback_to(self, mark: int, machine: "MachineState") -> int:
        """Undo every entry recorded since ``mark`` (newest first).

        Restoration writes bypass the journal and the guest mapping check —
        every undone range was mapped when its write was logged.  Returns
        the number of *memory* entries undone, which is the quantity the
        cost model charges for (register undos ride inside the fixed
        rollback base cost, exactly like the registers of a legacy
        full-snapshot restore).
        """
        entries = self.entries
        registers = machine.registers
        memory = machine.memory
        undone_memory = 0
        for index in range(len(entries) - 1, mark - 1, -1):
            is_memory, key, old = entries[index]
            if is_memory:
                memory._write_raw(key, old)
                undone_memory += 1
            else:
                registers[key] = old
        del entries[mark:]
        return undone_memory

    def clear(self) -> None:
        """Drop all entries (end of the outermost simulation or of a run)."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)


def to_signed(value: int) -> int:
    """Interpret a 64-bit value as signed."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into an unsigned 64-bit value."""
    return value & MASK64


@dataclass
class Flags:
    """The architectural flags register (ZF/SF/CF/OF)."""

    zero: bool = False
    sign: bool = False
    carry: bool = False
    overflow: bool = False

    def snapshot(self) -> Tuple[bool, bool, bool, bool]:
        """Capture the flags as a tuple (used by checkpoints)."""
        return (self.zero, self.sign, self.carry, self.overflow)

    def restore(self, snapshot: Tuple[bool, bool, bool, bool]) -> None:
        """Restore flags from a :meth:`snapshot`."""
        self.zero, self.sign, self.carry, self.overflow = snapshot

    def evaluate(self, cc: ConditionCode) -> bool:
        """Whether a condition code holds under the current flags."""
        if cc is ConditionCode.EQ:
            return self.zero
        if cc is ConditionCode.NE:
            return not self.zero
        if cc is ConditionCode.LT:
            return self.sign != self.overflow
        if cc is ConditionCode.GE:
            return self.sign == self.overflow
        if cc is ConditionCode.LE:
            return self.zero or self.sign != self.overflow
        if cc is ConditionCode.GT:
            return not self.zero and self.sign == self.overflow
        if cc is ConditionCode.B:
            return self.carry
        if cc is ConditionCode.AE:
            return not self.carry
        if cc is ConditionCode.BE:
            return self.carry or self.zero
        if cc is ConditionCode.A:
            return not self.carry and not self.zero
        raise ValueError(f"unknown condition code {cc!r}")

    def set_compare(self, a: int, b: int) -> None:
        """Set flags as ``cmp a, b`` (i.e. compute ``a - b``)."""
        ua, ub = to_unsigned(a), to_unsigned(b)
        result = (ua - ub) & MASK64
        self.zero = result == 0
        self.sign = result >= (1 << 63)
        self.carry = ua < ub
        sa, sb, sr = to_signed(ua), to_signed(ub), to_signed(result)
        self.overflow = (sa < 0) != (sb < 0) and (sr < 0) != (sa < 0)

    def set_test(self, a: int, b: int) -> None:
        """Set flags as ``test a, b`` (bitwise AND, CF=OF=0)."""
        result = to_unsigned(a) & to_unsigned(b)
        self.zero = result == 0
        self.sign = result >= (1 << 63)
        self.carry = False
        self.overflow = False

    def set_logic(self, result: int) -> None:
        """Set flags after a logical operation (CF=OF=0)."""
        result = to_unsigned(result)
        self.zero = result == 0
        self.sign = result >= (1 << 63)
        self.carry = False
        self.overflow = False

    def set_add(self, a: int, b: int, result: int) -> None:
        """Set flags after ``result = a + b``."""
        ua, ub = to_unsigned(a), to_unsigned(b)
        ur = to_unsigned(result)
        self.zero = ur == 0
        self.sign = ur >= (1 << 63)
        self.carry = ua + ub > MASK64
        sa, sb, sr = to_signed(ua), to_signed(ub), to_signed(ur)
        self.overflow = (sa < 0) == (sb < 0) and (sr < 0) != (sa < 0)

    def set_sub(self, a: int, b: int, result: int) -> None:
        """Set flags after ``result = a - b``."""
        self.set_compare(a, b)
        # set_compare computes exactly a - b; nothing further required.


class Memory:
    """Sparse, page-granular byte-addressable memory.

    Guest accesses must fall inside explicitly mapped regions; anything else
    raises :class:`MemoryFault` (the SIGSEGV stand-in).  Sanitizer shadow
    regions (ASan shadow, DIFT tag shadow) are accessed through the
    ``*_shadow`` helpers which bypass the mapping check and create pages on
    demand — shadow memory is a runtime implementation detail, not guest-
    visible address space.
    """

    def __init__(self, layout: Optional[MemoryLayout] = None) -> None:
        self.layout = layout or DEFAULT_LAYOUT
        self._pages: Dict[int, bytearray] = {}
        #: list of (start, end) half-open mapped ranges, kept sorted
        self._regions: List[Tuple[int, int]] = []
        #: lazily filled cache ``page id -> fully mapped?``; accesses confined
        #: to a fully mapped page skip the region walk (fast-engine hot path).
        #: Invalidated wholesale whenever a region is mapped, because mapping
        #: can only turn pages *more* mapped.
        self._full_pages: Dict[int, bool] = {}
        #: copy-on-write undo log; attached by the speculation controller
        #: while a simulation is active, ``None`` otherwise.
        self.journal: Optional[StateJournal] = None

    # -- region management ----------------------------------------------------
    def map_region(self, start: int, size: int) -> None:
        """Mark ``[start, start+size)`` as valid guest memory."""
        if size <= 0:
            return
        self._regions.append((start, start + size))
        self._regions.sort()
        self._full_pages.clear()

    def page_fully_mapped(self, page_id: int) -> bool:
        """Whether the whole page ``page_id`` lies in mapped guest memory
        (cached; consulted by the fast engine's single-page access paths)."""
        state = self.is_mapped(page_id << 12, PAGE_SIZE)
        self._full_pages[page_id] = state
        return state

    def mapped_regions(self) -> List[Tuple[int, int]]:
        """The list of mapped ``(start, end)`` ranges."""
        return list(self._regions)

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        """Whether the whole range ``[addr, addr+size)`` is mapped."""
        if (addr + size - 1) >> 12 == addr >> 12 and self._full_pages.get(addr >> 12):
            # Single-page access to a page known fully mapped: skip the
            # region walk.  (Cache misses fall through; only the fast
            # engine's access paths populate the cache.)
            return True
        remaining_start = addr
        end = addr + size
        for start, stop in self._regions:
            if remaining_start < start:
                return False
            if remaining_start < stop:
                remaining_start = min(end, stop)
                if remaining_start >= end:
                    return True
        return remaining_start >= end

    # -- raw page access --------------------------------------------------------
    def _page(self, addr: int) -> bytearray:
        page_id = addr >> 12
        page = self._pages.get(page_id)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_id] = page
        return page

    def _read_raw(self, addr: int, size: int) -> bytes:
        out = bytearray()
        while size > 0:
            page = self._page(addr)
            offset = addr & PAGE_MASK
            chunk = min(size, PAGE_SIZE - offset)
            out += page[offset:offset + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def _write_raw(self, addr: int, data: bytes) -> None:
        offset_in_data = 0
        size = len(data)
        while size > 0:
            page = self._page(addr)
            offset = addr & PAGE_MASK
            chunk = min(size, PAGE_SIZE - offset)
            page[offset:offset + chunk] = data[offset_in_data:offset_in_data + chunk]
            addr += chunk
            offset_in_data += chunk
            size -= chunk

    # -- guest accesses (checked) ----------------------------------------------------
    def read_bytes(self, addr: int, size: int) -> bytes:
        """Guest read of ``size`` bytes at ``addr``.

        Raises:
            MemoryFault: if the range is not mapped.
        """
        if not self.is_mapped(addr, size):
            raise MemoryFault(addr, size, write=False)
        return self._read_raw(addr, size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Guest write of ``data`` at ``addr``.

        While a :class:`StateJournal` is attached the previous contents of
        the range are logged first, so a speculation rollback can undo the
        write.

        Raises:
            MemoryFault: if the range is not mapped.
        """
        if not self.is_mapped(addr, len(data)):
            raise MemoryFault(addr, len(data), write=True)
        journal = self.journal
        if journal is not None:
            journal.entries.append((True, addr, self._read_raw(addr, len(data))))
        self._write_raw(addr, data)

    def read_int(self, addr: int, size: int) -> int:
        """Guest read of a little-endian unsigned integer."""
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, value: int, size: int) -> None:
        """Guest write of a little-endian integer (wrapped to ``size`` bytes)."""
        mask = (1 << (8 * size)) - 1
        self.write_bytes(addr, (value & mask).to_bytes(size, "little"))

    def read_cstring(self, addr: int, max_len: int = 4096) -> bytes:
        """Read a NUL-terminated byte string (without the terminator)."""
        out = bytearray()
        for i in range(max_len):
            byte = self.read_bytes(addr + i, 1)
            if byte == b"\x00":
                break
            out += byte
        return bytes(out)

    # -- shadow accesses (unchecked; runtime internal) ----------------------------------
    def read_shadow(self, addr: int, size: int) -> bytes:
        """Read shadow memory (no mapping check)."""
        return self._read_raw(addr, size)

    def write_shadow(self, addr: int, data: bytes) -> None:
        """Write shadow memory (no mapping check)."""
        self._write_raw(addr, data)

    def read_shadow_byte(self, addr: int) -> int:
        """Read one shadow byte."""
        return self._read_raw(addr, 1)[0]

    def write_shadow_byte(self, addr: int, value: int) -> None:
        """Write one shadow byte."""
        self._write_raw(addr, bytes([value & 0xFF]))


@dataclass
class MachineState:
    """Registers, flags, program counter and memory of a TVM core."""

    layout: MemoryLayout = field(default_factory=lambda: DEFAULT_LAYOUT)
    registers: List[int] = field(default_factory=lambda: [0] * 16)
    flags: Flags = field(default_factory=Flags)
    pc: int = 0
    memory: Memory = field(init=False)
    #: copy-on-write undo log; attached while a speculation simulation is
    #: active (shared with ``memory.journal``), ``None`` otherwise.
    journal: Optional[StateJournal] = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.memory = Memory(self.layout)

    # -- journaling ----------------------------------------------------------------
    def attach_journal(self, journal: Optional[StateJournal]) -> None:
        """Attach (or detach, with ``None``) an undo log to registers and
        guest memory."""
        self.journal = journal
        self.memory.journal = journal

    # -- register access ----------------------------------------------------------
    def get_reg(self, reg: Register) -> int:
        """Read a register (unsigned 64-bit)."""
        return self.registers[int(reg)]

    def set_reg(self, reg: Register, value: int) -> None:
        """Write a register (value wrapped to 64 bits)."""
        index = int(reg)
        journal = self.journal
        if journal is not None:
            journal.entries.append((False, index, self.registers[index]))
        self.registers[index] = to_unsigned(value)

    def snapshot_registers(self) -> Tuple[int, ...]:
        """Capture all registers (used by checkpoints)."""
        return tuple(self.registers)

    def restore_registers(self, snapshot: Iterable[int]) -> None:
        """Restore all registers from a snapshot."""
        self.registers = list(snapshot)

    # -- operand evaluation -----------------------------------------------------------
    def effective_address(self, mem: Mem) -> int:
        """Evaluate a memory operand's effective address."""
        addr = 0
        if mem.base is not None:
            addr += self.get_reg(mem.base)
        if mem.index is not None:
            addr += self.get_reg(mem.index) * mem.scale
        disp = mem.disp
        if not isinstance(disp, int):
            raise ValueError(f"unresolved symbolic displacement {disp!r}")
        addr += disp
        return to_unsigned(addr)

    def read_operand(self, operand) -> int:
        """Evaluate a register or immediate operand to a value."""
        if isinstance(operand, Reg):
            return self.get_reg(operand.reg)
        if isinstance(operand, Imm):
            return to_unsigned(operand.value)
        raise ValueError(f"cannot read operand {operand!r} as a value")

    # -- stack helpers -----------------------------------------------------------------
    @property
    def sp(self) -> int:
        """Current stack pointer."""
        return self.get_reg(Register.SP)

    @sp.setter
    def sp(self, value: int) -> None:
        self.set_reg(Register.SP, value)

    def push(self, value: int) -> None:
        """Push a 64-bit value onto the stack."""
        self.sp = self.sp - 8
        self.memory.write_int(self.sp, value, 8)

    def pop(self) -> int:
        """Pop a 64-bit value from the stack."""
        value = self.memory.read_int(self.sp, 8)
        self.sp = self.sp + 8
        return value
