"""The TVM emulator: executes native and instrumented TELF binaries.

The emulator is both the "CPU" and the runtime support library of the
paper's system:

* it executes architectural TVM instructions with a deterministic cycle
  cost model (:mod:`repro.runtime.costs`),
* it executes instrumentation pseudo-ops by calling into the speculation
  controller (:mod:`repro.runtime.speculation`), the sanitizers
  (:mod:`repro.sanitizers`), the coverage runtime
  (:mod:`repro.coverage`) and the active detection policy,
* it implements the control-flow-escape checks of paper §5.3 for binaries
  rewritten with Speculation Shadows (indirect transfers in the Shadow Copy
  may only target Shadow-Copy code or marked Real-Copy blocks; anything
  else forces a rollback),
* it converts exceptions raised during speculation simulation into
  rollbacks, the software equivalent of the paper's custom signal handler.

A single :class:`Emulator` instance decodes its binary once and can then be
run many times over different inputs — this is the persistent-mode fuzzing
loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.encoding import decode_instruction
from repro.isa.instructions import Instruction, Opcode
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import ARG_REGISTERS, RETURN_REGISTER, Register
from repro.loader.binary_format import SymbolKind, TelfBinary
from repro.runtime.costs import CostModel, DEFAULT_COSTS
from repro.runtime.errors import (
    ArithmeticFault,
    EmulationError,
    MemoryFault,
    ProgramCrash,
    ProgramExit,
)
from repro.runtime.externals import ExternalRegistry, default_externals
from repro.runtime.heap import Heap
from repro.runtime.machine import MASK64, MachineState, to_signed, to_unsigned
from repro.runtime.speculation import SpeculationController
from repro.telemetry.context import active as _active_telemetry
from repro.coverage.sancov import CoverageRuntime
from repro.sanitizers.asan import BinaryAsan
from repro.sanitizers.dift import BinaryDift
from repro.sanitizers.policy import DetectionPolicy
from repro.sanitizers.reports import GadgetReport

#: Sentinel return address marking "return from the entry function".
EXIT_SENTINEL = 0xDEAD_0000_0000

#: Metadata key set by rewriters that split the program into Real/Shadow copies.
SHADOW_METADATA_KEY = "speculation_shadows"


@dataclass
class ExecutionResult:
    """Outcome and accounting of one program execution."""

    status: str                      # "exit" | "crash" | "fuel"
    exit_status: int = 0
    crash_reason: str = ""
    steps: int = 0
    cycles: int = 0
    arch_instructions: int = 0
    spec_stats: Dict[str, int] = field(default_factory=dict)
    reports: List[GadgetReport] = field(default_factory=list)
    output: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the program terminated voluntarily."""
        return self.status == "exit"


class Emulator:
    """Executes a TELF binary over fuzz inputs."""

    #: engine name reported to telemetry; the fast engine overrides it.
    engine_name = "legacy"

    def __init__(
        self,
        binary: TelfBinary,
        externals: Optional[ExternalRegistry] = None,
        cost_model: Optional[CostModel] = None,
        controller: Optional[SpeculationController] = None,
        policy: Optional[DetectionPolicy] = None,
        coverage: Optional[CoverageRuntime] = None,
        max_steps: int = 5_000_000,
        stack_protect: bool = True,
        taint_sources_enabled: bool = True,
        spec_models=None,
        telemetry=None,
    ) -> None:
        self.binary = binary
        self.layout = binary.layout
        self.externals = externals or default_externals()
        self.cost_model = cost_model or DEFAULT_COSTS
        self.controller = controller
        self.policy = policy
        self.coverage = coverage
        self.max_steps = max_steps
        self.stack_protect = stack_protect
        self.taint_sources_enabled = taint_sources_enabled
        #: explicit per-emulator telemetry override; when ``None`` (the
        #: default) the process-wide active bundle is consulted per run.
        #: Observation-only either way — results never depend on it.
        self.telemetry = telemetry
        self.has_shadows = binary.metadata.get(SHADOW_METADATA_KEY) == "1"
        #: active speculation models; ``None`` keeps the classic behaviour
        #: (conditional-branch misprediction only) without instantiating
        #: any model object — the hot paths stay untouched.
        self.spec_models = tuple(spec_models) if spec_models is not None else ()
        self._pht_enabled = (
            spec_models is None
            or any(model.name == "pht" for model in self.spec_models)
        )
        self._dynamic_models = tuple(
            model for model in self.spec_models if model.dynamic
        )

        # Per-run state (created in run()).
        self.machine: Optional[MachineState] = None
        self.heap: Optional[Heap] = None
        self.asan: Optional[BinaryAsan] = None
        self.dift: Optional[BinaryDift] = None
        self.input_data: bytes = b""
        self._input_pos = 0
        self.output: List[str] = []
        self.pending_return_tag = 0
        self._pending_promotion = 0
        self._extra_cycles = 0
        #: pristine (pages, regions) image of the freshly loaded process;
        #: built on the first run and cloned on every later run, replacing
        #: the per-run section mapping and copying.
        self._memory_template = None

        self._decode_text()
        self._index_shadow_functions()
        self._dispatch = self._build_dispatch()
        self._install_model_hooks()

    def rebind_controller(self, controller) -> None:
        """Swap the speculation controller between runs.

        The legacy interpreter reads ``self.controller`` on every step, so
        an attribute assignment suffices; trace-building engines override
        this to rebuild their dispatch structures.
        """
        self.controller = controller

    # ------------------------------------------------------------------ setup
    def _decode_text(self) -> None:
        """Decode every instruction in the text section exactly once."""
        text = self.binary.text
        self.instructions: Dict[int, Instruction] = {}
        self.next_address: Dict[int, int] = {}
        for sym in self.binary.function_symbols():
            offset = sym.address - text.address
            end = offset + sym.size
            while offset < end:
                instr, length = decode_instruction(text.data, offset)
                addr = text.address + offset
                instr.address = addr
                self.instructions[addr] = instr
                self.next_address[addr] = addr + length
                offset += length

    def _index_shadow_functions(self) -> None:
        """Record the address ranges of Shadow-Copy functions (``*$spec``)."""
        self._shadow_ranges: List[Tuple[int, int]] = []
        for sym in self.binary.function_symbols():
            if sym.name.endswith("$spec"):
                self._shadow_ranges.append((sym.address, sym.address + sym.size))

    def _in_shadow_copy(self, addr: int) -> bool:
        for start, end in self._shadow_ranges:
            if start <= addr < end:
                return True
        return False

    # ------------------------------------------------------------ speculation models
    def _install_model_hooks(self) -> None:
        """Route dispatch entries through the model-aware handlers.

        Only installed when *dynamic* speculation models (BTB/RSB/STL, i.e.
        anything beyond the checkpoint-driven PHT default) are active, so
        the classic configuration pays nothing.  The fast engine builds
        fallback thunks for exactly these opcodes, which funnels both
        engines through the handlers below — one implementation, zero
        drift.
        """
        dyn = self._dynamic_models
        self._indirect_models = tuple(m for m in dyn if m.predicts_indirect)
        self._ret_models = tuple(m for m in dyn if m.predicts_return)
        self._load_models = tuple(m for m in dyn if m.predicts_stale_load)
        self._call_observers = tuple(m for m in dyn if m.observes_calls)
        self._store_observers = tuple(m for m in dyn if m.observes_stores)
        self._model_opcodes = frozenset().union(
            *(m.source_opcodes for m in dyn)) if dyn else frozenset()
        if not dyn:
            self._spec_alias_map: Dict[int, int] = {}
            return
        self._spec_alias_map = self._build_spec_alias()
        dispatch = self._dispatch
        if self._indirect_models or self._call_observers:
            dispatch[Opcode.ICALL] = self._op_icall_model
        if self._indirect_models:
            dispatch[Opcode.IJMP] = self._op_ijmp_model
        if self._ret_models:
            dispatch[Opcode.RET] = self._op_ret_model
        if self._call_observers:
            dispatch[Opcode.CALL] = self._op_call_model
        if self._store_observers:
            dispatch[Opcode.STORE] = self._op_store_model
        if self._load_models:
            dispatch[Opcode.LOAD] = self._op_load_model

    def _build_spec_alias(self) -> Dict[int, int]:
        """Map every Real-Copy address to its Shadow-Copy counterpart.

        Dynamic models mispredict to Real-Copy addresses (stale branch
        targets, stale return sites, the bypassing load itself); redirecting
        to the Shadow-Copy counterpart instead keeps the simulated wrong
        path inside instrumented code, exactly where a ``checkpoint``
        trampoline would have led.  The mapping uses the same invariant as
        :mod:`repro.hardening.sites`: rewriting passes only insert
        instructions, so the n-th *architectural* instruction of ``f`` is
        the n-th architectural instruction of ``f$spec`` (the shadow's
        appended trampoline blocks come after the common prefix).  Every
        address — pseudo-ops included — maps to the shadow address of the
        next architectural instruction at or after it.  Empty (identity)
        for single-copy binaries.
        """
        alias: Dict[int, int] = {}
        if not self.has_shadows:
            return alias
        symbols = {sym.name: sym for sym in self.binary.function_symbols()}
        for name, sym in symbols.items():
            if name.endswith("$spec"):
                continue
            spec = symbols.get(name + "$spec")
            if spec is None:
                continue
            spec_arch = [
                addr for addr in self._symbol_addresses(spec)
                if self.instructions[addr].opcode not in _PSEUDO_SET
            ]
            arch_index = 0
            pending = []
            for addr in self._symbol_addresses(sym):
                pending.append(addr)
                if self.instructions[addr].opcode in _PSEUDO_SET:
                    continue
                if arch_index < len(spec_arch):
                    target = spec_arch[arch_index]
                    for waiting in pending:
                        alias[waiting] = target
                pending = []
                arch_index += 1
        return alias

    def _symbol_addresses(self, sym) -> List[int]:
        """Decoded instruction addresses of one function, in layout order."""
        addresses = []
        addr = sym.address
        end = sym.address + sym.size
        while addr < end and addr in self.instructions:
            addresses.append(addr)
            addr = self.next_address[addr]
        return addresses

    def _spec_alias(self, addr: int) -> int:
        """Shadow-Copy counterpart of ``addr`` (identity if none exists)."""
        return self._spec_alias_map.get(addr, addr)

    def _model_mispredict(self, instr, models, actual: int) -> Optional[int]:
        """Ask the given models for a misprediction at this site.

        Returns the *Real-Copy* wrong target once a model predicted one and
        the nesting policy admitted the (possibly nested) simulation, or
        ``None`` when the site retires correctly.  Model state is only
        *read* here — architectural observation happens on the retire path,
        so squashed mispredictions never corrupt the histories.
        """
        controller = self.controller
        depth = controller.depth
        for model in models:
            if depth and not model.nests:
                continue
            candidates = model.mispredicted_targets(self, instr, actual)
            if not candidates:
                continue
            wrong = model.choose_target(instr.address, candidates)
            if not controller.maybe_enter(
                self.machine, branch_address=instr.address,
                resume_pc=instr.address, dift=self.dift, model=model.name,
            ):
                continue
            self._extra_cycles += model.entry_cost
            return wrong
        return None

    def _op_icall_model(self, instr):
        """Indirect call with BTB misprediction and RSB observation.

        The architectural retire delegates to :meth:`_op_icall` (like every
        other model hook), so escape checks and call mechanics cannot
        drift; the operand read in the prologue is side-effect-free and
        repeats inside the base handler.
        """
        controller = self.controller
        if controller is not None:
            target = to_unsigned(self.machine.read_operand(instr.operands[0]))
            if not controller.consume_skip(instr.address):
                wrong = self._model_mispredict(
                    instr, self._indirect_models, target)
                if wrong is not None:
                    # A mispredicted call still pushes its return address,
                    # then control follows the stale target (its shadow
                    # counterpart, so the wrong path stays instrumented).
                    return self._do_call(instr, self._spec_alias(wrong))
            if not controller.in_simulation:
                for model in self._indirect_models:
                    model.on_indirect(self, instr, target)
                for model in self._call_observers:
                    model.on_call(self, instr, self._next(instr))
        return self._op_icall(instr)

    def _op_ijmp_model(self, instr):
        """Indirect jump with BTB misprediction (retire via _op_ijmp)."""
        controller = self.controller
        if controller is not None:
            operand = instr.operands[0]
            if isinstance(operand, Mem):
                addr = self.machine.effective_address(operand)
                target = self.machine.memory.read_int(addr, 8)
            else:
                target = self.machine.read_operand(operand)
            target = to_unsigned(target)
            if not controller.consume_skip(instr.address):
                wrong = self._model_mispredict(
                    instr, self._indirect_models, target)
                if wrong is not None:
                    return self._spec_alias(wrong)
            if not controller.in_simulation:
                for model in self._indirect_models:
                    model.on_indirect(self, instr, target)
        return self._op_ijmp(instr)

    def _op_call_model(self, instr):
        """Direct call observed by return-stack models."""
        controller = self.controller
        if controller is None or not controller.in_simulation:
            for model in self._call_observers:
                model.on_call(self, instr, self._next(instr))
        return self._op_call(instr)

    def _op_ret_model(self, instr):
        """Return with RSB misprediction to stale return-stack entries."""
        controller = self.controller
        machine = self.machine
        if controller is not None and machine.memory.is_mapped(machine.sp, 8):
            actual = machine.memory.read_int(machine.sp, 8)
            if not controller.consume_skip(instr.address):
                wrong = self._model_mispredict(instr, self._ret_models, actual)
                if wrong is not None:
                    # The mispredicted return pops the stack architecturally
                    # (journaled) but follows the stale prediction.
                    sp = machine.sp
                    if self.asan is not None:
                        self.asan.unpoison_return_slot(sp)
                    machine.sp = sp + 8
                    return self._spec_alias(wrong)
            if not controller.in_simulation:
                for model in self._ret_models:
                    model.pop()
        return self._op_ret(instr)

    def _op_store_model(self, instr):
        """Store recorded into the STL models' bypass windows."""
        controller = self.controller
        if controller is None or not controller.in_simulation:
            mem = instr.operands[0]
            addr = self.machine.effective_address(mem)
            for model in self._store_observers:
                model.on_store(self, instr, addr, instr.size)
        return self._op_store(instr)

    def _op_load_model(self, instr):
        """Load with store-to-load bypass: speculatively read stale memory."""
        controller = self.controller
        if controller is not None and not controller.consume_skip(instr.address):
            addr = self.machine.effective_address(instr.operands[1])
            redirected = self._model_stale_load(instr, addr)
            if redirected is not None:
                return redirected
        return self._op_load(instr)

    def _model_stale_load(self, instr, addr: int) -> Optional[int]:
        """Enter an STL simulation: rewind the store, re-issue the load.

        The matched store's range is rewritten to its pre-store bytes (and
        stale DIFT tags) through the normal journaled/logged write paths,
        then control re-enters at the load's Shadow-Copy counterpart —
        which reads the stale memory with ordinary tag propagation and
        policy checks.  Rollback restores the committed store.
        """
        controller = self.controller
        depth = controller.depth
        size = instr.size
        memory = self.machine.memory
        for model in self._load_models:
            if depth and not model.nests:
                continue
            index = model.find(addr, size)
            if index is None:
                continue
            if not memory.is_mapped(addr, size):
                continue
            if not controller.maybe_enter(
                self.machine, branch_address=instr.address,
                resume_pc=instr.address, dift=self.dift, model=model.name,
            ):
                continue
            stale, stale_tags = model.take(index)
            self._extra_cycles += model.entry_cost
            self._guest_write(addr, stale)
            if self.dift is not None and stale_tags is not None:
                for offset, tag in enumerate(stale_tags):
                    self.dift.set_mem_tag(addr + offset, 1, tag)
            return self._spec_alias(instr.address)
        return None

    # ------------------------------------------------------------------ input
    def consume_input(self, max_len: int) -> bytes:
        """Consume up to ``max_len`` bytes of the current fuzz input."""
        if max_len <= 0:
            return b""
        data = self.input_data[self._input_pos:self._input_pos + max_len]
        self._input_pos += len(data)
        return data

    def consume_input_line(self, max_len: int) -> bytes:
        """Consume up to one line (including the newline) of the input."""
        if max_len <= 0:
            return b""
        remaining = self.input_data[self._input_pos:]
        if not remaining:
            return b""
        newline = remaining.find(b"\n", 0, max_len)
        length = max_len if newline < 0 else newline + 1
        return self.consume_input(length)

    # ------------------------------------------------------------------ run
    def run(self, input_data: bytes = b"", argv: Optional[List[bytes]] = None) -> ExecutionResult:
        """Execute the binary's entry function over ``input_data``."""
        telemetry = self.telemetry
        if telemetry is None:
            telemetry = _active_telemetry()
        if telemetry is not None and telemetry.profiler is not None:
            telemetry.profiler.attach(self)
        self._setup_process(input_data, argv or [])
        result = self._execute()
        if self.policy is not None:
            result.reports = self.policy.drain_reports()
        if self.controller is not None:
            result.spec_stats = self.controller.stats.as_dict()
        result.output = list(self.output)
        if telemetry is not None:
            telemetry.record_execution(self, result)
        return result

    def _setup_process(self, input_data: bytes, argv: List[bytes]) -> None:
        machine = MachineState(self.layout)
        memory = machine.memory
        if self._memory_template is None:
            for section in self.binary.sections.values():
                if section.size:
                    memory.map_region(section.address, section.size)
                    memory.write_bytes(section.address, section.data)
            stack_bottom = self.layout.stack_bottom()
            memory.map_region(stack_bottom, self.layout.stack_size + 256)
            self._memory_template = (
                {pid: bytes(page) for pid, page in memory._pages.items()},
                list(memory._regions),
            )
        else:
            pages, regions = self._memory_template
            memory._pages = {pid: bytearray(page) for pid, page in pages.items()}
            memory._regions = list(regions)
        machine.sp = self.layout.stack_top
        machine.set_reg(Register.FP, 0)

        self.machine = machine
        self.heap = Heap(memory, self.layout)
        self.input_data = input_data
        self._input_pos = 0
        self.output = []
        self.pending_return_tag = 0
        self._pending_promotion = 0
        self.attack_input_counter = 0

        needs_asan = self.policy is not None and self.policy.needs_asan
        needs_dift = self.policy is not None and self.policy.needs_dift
        self.asan = BinaryAsan(memory, self.layout, protect_stack=self.stack_protect) if needs_asan else None
        self.dift = BinaryDift(memory, self.layout) if needs_dift else None
        if self.asan is not None:
            self.heap.asan = self.asan
        if self.dift is not None:
            self.dift.controller = self.controller
            self.dift.sources_enabled = self.taint_sources_enabled
        if self.policy is not None:
            self.policy.attach(self.asan, self.dift)
        if self.controller is not None:
            self.controller.begin_run()
        for model in self.spec_models:
            model.begin_run()
        if self.coverage is not None:
            self.coverage.reset_execution_state()

        # argv: argc in r1, argv pointer in r2, both attacker controlled
        # (the paper tags argc and argv as User).
        argc = len(argv)
        machine.set_reg(Register.R1, argc)
        if argv:
            ptrs = []
            for arg in argv:
                addr = self.heap.malloc(len(arg) + 1)
                memory.write_bytes(addr, arg + b"\x00")
                if self.dift is not None:
                    self.dift.mark_user_input(addr, len(arg))
                ptrs.append(addr)
            table = self.heap.malloc(8 * argc)
            for i, ptr in enumerate(ptrs):
                memory.write_int(table + 8 * i, ptr, 8)
            machine.set_reg(Register.R2, table)
        else:
            machine.set_reg(Register.R2, 0)

        machine.push(EXIT_SENTINEL)
        machine.pc = self.binary.entry_address()

    # ------------------------------------------------------------------ main loop
    def _execute(self) -> ExecutionResult:
        machine = self.machine
        controller = self.controller
        dift = self.dift
        cost_model = self.cost_model
        dispatch = self._dispatch
        instructions = self.instructions
        next_address = self.next_address

        result = ExecutionResult(status="exit")
        steps = 0
        cycles = 0
        arch_instructions = 0

        while True:
            if steps >= self.max_steps:
                result.status = "fuel"
                break
            pc = machine.pc
            if pc == EXIT_SENTINEL:
                result.exit_status = to_signed(machine.get_reg(RETURN_REGISTER))
                break
            instr = instructions.get(pc)
            if instr is None:
                if (
                    self._dynamic_models
                    and controller is not None
                    and controller.in_simulation
                ):
                    # A model-driven wrong path computed a non-code target;
                    # like any speculative fault this squashes the
                    # simulation instead of crashing the run.
                    undone = controller.rollback(machine, dift,
                                                 reason="exception")
                    cycles += cost_model.rollback_cost(undone)
                    if self.coverage is not None:
                        self.coverage.flush_speculative()
                    self._after_exception_rollback()
                    continue
                result.status = "crash"
                result.crash_reason = f"jump to non-code address {pc:#x}"
                break
            steps += 1
            opcode = instr.opcode
            cycles += cost_model.instruction_cost(opcode)
            self._extra_cycles = 0

            in_sim = controller is not None and controller.checkpoints
            is_arch = opcode not in _PSEUDO_SET
            if is_arch:
                arch_instructions += 1
                if in_sim:
                    controller.count_instruction()
                if dift is not None:
                    try:
                        dift.propagate(instr, machine)
                    except MemoryFault:
                        # Tag shadow lookups never fault; a fault here means
                        # the effective address itself is wild — the access
                        # below will raise and be handled uniformly.
                        pass

            try:
                new_pc = dispatch[opcode](instr)
            except (MemoryFault, ArithmeticFault) as exc:
                if controller is not None and controller.in_simulation:
                    undone = controller.rollback(machine, dift, reason="exception")
                    cycles += cost_model.rollback_cost(undone)
                    if self.coverage is not None:
                        self.coverage.flush_speculative()
                    self._after_exception_rollback()
                    continue
                result.status = "crash"
                result.crash_reason = str(exc)
                break
            except ProgramExit as exc:
                result.exit_status = exc.status
                break
            except ProgramCrash as exc:
                if controller is not None and controller.in_simulation:
                    undone = controller.rollback(machine, dift, reason="exception")
                    cycles += cost_model.rollback_cost(undone)
                    continue
                result.status = "crash"
                result.crash_reason = str(exc)
                break

            if self._extra_cycles:
                cycles += self._extra_cycles
            if new_pc is None:
                # Handler already set machine.pc (branches, rollbacks, calls).
                continue
            machine.pc = new_pc

        result.steps = steps
        result.cycles = cycles
        result.arch_instructions = arch_instructions
        return result

    # ------------------------------------------------------------------ helpers
    def _guest_write(self, addr: int, data: bytes) -> None:
        """Guest memory write with speculative memory logging.

        With a journaling controller the machine's own
        :class:`~repro.runtime.machine.StateJournal` records the undo entry
        inside ``write_bytes``; only legacy snapshot controllers need the
        explicit memory log.
        """
        memory = self.machine.memory
        controller = self.controller
        if (
            controller is not None
            and not controller.uses_machine_journal
            and controller.in_simulation
        ):
            if memory.is_mapped(addr, len(data)):
                old = memory.read_bytes(addr, len(data))
                controller.log_memory_write(addr, old)
        memory.write_bytes(addr, data)

    def _write_int(self, addr: int, value: int, size: int) -> None:
        mask = (1 << (8 * size)) - 1
        self._guest_write(addr, (value & mask).to_bytes(size, "little"))

    def _next(self, instr: Instruction) -> int:
        return self.next_address[instr.address]

    def _after_exception_rollback(self) -> None:
        """Hook invoked after an exception-triggered rollback.

        Subclasses that drive speculation dynamically (without rewritten
        checkpoints) use this to avoid immediately re-entering speculation
        at the branch the rollback resumed at.
        """

    def _apply_promotion(self, dest_reg: Register) -> None:
        if self._pending_promotion and self.dift is not None:
            self.dift.or_register_tag(dest_reg, self._pending_promotion)
        self._pending_promotion = 0

    # ------------------------------------------------------------------ dispatch table
    def _build_dispatch(self):
        return {
            Opcode.MOV: self._op_mov,
            Opcode.LOAD: self._op_load,
            Opcode.STORE: self._op_store,
            Opcode.LEA: self._op_lea,
            Opcode.PUSH: self._op_push,
            Opcode.POP: self._op_pop,
            Opcode.ADD: self._op_alu,
            Opcode.SUB: self._op_alu,
            Opcode.MUL: self._op_alu,
            Opcode.DIV: self._op_alu,
            Opcode.MOD: self._op_alu,
            Opcode.AND: self._op_alu,
            Opcode.OR: self._op_alu,
            Opcode.XOR: self._op_alu,
            Opcode.SHL: self._op_alu,
            Opcode.SHR: self._op_alu,
            Opcode.SAR: self._op_alu,
            Opcode.NOT: self._op_unary,
            Opcode.NEG: self._op_unary,
            Opcode.CMP: self._op_cmp,
            Opcode.TEST: self._op_test,
            Opcode.JMP: self._op_jmp,
            Opcode.JCC: self._op_jcc,
            Opcode.CALL: self._op_call,
            Opcode.ICALL: self._op_icall,
            Opcode.IJMP: self._op_ijmp,
            Opcode.RET: self._op_ret,
            Opcode.NOP: self._op_nop,
            Opcode.LFENCE: self._op_serializing,
            Opcode.CPUID: self._op_serializing,
            Opcode.HALT: self._op_halt,
            Opcode.ECALL: self._op_ecall,
            Opcode.CHECKPOINT: self._op_checkpoint,
            Opcode.TRAMP_JCC: self._op_jcc,
            Opcode.ASAN_CHECK: self._op_access_check,
            Opcode.MEMLOG: self._op_nop,
            Opcode.DIFT_PROP: self._op_nop,
            Opcode.DIFT_BATCH: self._op_dift_batch,
            Opcode.POLICY_LOAD: self._op_access_check,
            Opcode.POLICY_STORE: self._op_access_check,
            Opcode.POLICY_BRANCH: self._op_policy_branch,
            Opcode.RESTORE_COND: self._op_restore_cond,
            Opcode.RESTORE_ALWAYS: self._op_restore_always,
            Opcode.SPEC_REDIRECT: self._op_spec_redirect,
            Opcode.MARKER_NOP: self._op_nop,
            Opcode.GUARD_CHECK: self._op_nop,
            Opcode.COV_TRACE: self._op_cov_trace,
            Opcode.COV_SPEC: self._op_cov_spec,
            Opcode.TAINT_SOURCE: self._op_taint_source,
        }

    # ------------------------------------------------------------------ architectural ops
    def _op_mov(self, instr):
        dst, src = instr.operands
        self.machine.set_reg(dst.reg, self.machine.read_operand(src))
        return self._next(instr)

    def _op_load(self, instr):
        dst, mem = instr.operands
        addr = self.machine.effective_address(mem)
        value = self.machine.memory.read_int(addr, instr.size)
        self.machine.set_reg(dst.reg, value)
        self._apply_promotion(dst.reg)
        return self._next(instr)

    def _op_store(self, instr):
        mem, src = instr.operands
        addr = self.machine.effective_address(mem)
        self._write_int(addr, self.machine.read_operand(src), instr.size)
        return self._next(instr)

    def _op_lea(self, instr):
        dst, mem = instr.operands
        self.machine.set_reg(dst.reg, self.machine.effective_address(mem))
        return self._next(instr)

    def _op_push(self, instr):
        (src,) = instr.operands
        value = self.machine.read_operand(src)
        new_sp = (self.machine.sp - 8) & MASK64
        self._write_int(new_sp, value, 8)
        self.machine.sp = new_sp
        return self._next(instr)

    def _op_pop(self, instr):
        (dst,) = instr.operands
        value = self.machine.memory.read_int(self.machine.sp, 8)
        self.machine.set_reg(dst.reg, value)
        self.machine.sp = self.machine.sp + 8
        self._apply_promotion(dst.reg)
        return self._next(instr)

    def _op_alu(self, instr):
        dst, src = instr.operands
        a = self.machine.get_reg(dst.reg)
        b = self.machine.read_operand(src)
        opcode = instr.opcode
        flags = self.machine.flags
        if opcode is Opcode.ADD:
            result = (a + b) & MASK64
            flags.set_add(a, b, result)
        elif opcode is Opcode.SUB:
            result = (a - b) & MASK64
            flags.set_sub(a, b, result)
        elif opcode is Opcode.MUL:
            result = (to_signed(a) * to_signed(b)) & MASK64
            flags.set_logic(result)
        elif opcode in (Opcode.DIV, Opcode.MOD):
            if b == 0:
                raise ArithmeticFault(instr.address or 0)
            sa, sb = to_signed(a), to_signed(b)
            quotient = int(sa / sb)  # C-style truncation toward zero
            remainder = sa - quotient * sb
            result = to_unsigned(quotient if opcode is Opcode.DIV else remainder)
            flags.set_logic(result)
        elif opcode is Opcode.AND:
            result = a & b
            flags.set_logic(result)
        elif opcode is Opcode.OR:
            result = a | b
            flags.set_logic(result)
        elif opcode is Opcode.XOR:
            result = a ^ b
            flags.set_logic(result)
        elif opcode is Opcode.SHL:
            result = (a << (b & 63)) & MASK64
            flags.set_logic(result)
        elif opcode is Opcode.SHR:
            result = (a & MASK64) >> (b & 63)
            flags.set_logic(result)
        elif opcode is Opcode.SAR:
            result = to_unsigned(to_signed(a) >> (b & 63))
            flags.set_logic(result)
        else:  # pragma: no cover - defensive
            raise EmulationError(f"unhandled ALU opcode {opcode}")
        self.machine.set_reg(dst.reg, result)
        return self._next(instr)

    def _op_unary(self, instr):
        (dst,) = instr.operands
        a = self.machine.get_reg(dst.reg)
        if instr.opcode is Opcode.NOT:
            result = (~a) & MASK64
        else:
            result = (-to_signed(a)) & MASK64
        self.machine.flags.set_logic(result)
        self.machine.set_reg(dst.reg, result)
        return self._next(instr)

    def _op_cmp(self, instr):
        a, b = instr.operands
        self.machine.flags.set_compare(
            self.machine.read_operand(a), self.machine.read_operand(b)
        )
        return self._next(instr)

    def _op_test(self, instr):
        a, b = instr.operands
        self.machine.flags.set_test(
            self.machine.read_operand(a), self.machine.read_operand(b)
        )
        return self._next(instr)

    def _op_jmp(self, instr):
        return self._branch_target(instr)

    def _op_jcc(self, instr):
        if self.machine.flags.evaluate(instr.cc):
            return self._branch_target(instr)
        return self._next(instr)

    def _branch_target(self, instr) -> int:
        target = instr.operands[0]
        if isinstance(target, Imm):
            return to_unsigned(target.value)
        raise EmulationError(f"unresolved branch target in {instr}")

    def _op_call(self, instr):
        target = self._branch_target(instr)
        return self._do_call(instr, target)

    def _do_call(self, instr, target: int):
        return_address = self._next(instr)
        new_sp = (self.machine.sp - 8) & MASK64
        self._write_int(new_sp, return_address, 8)
        self.machine.sp = new_sp
        if self.asan is not None:
            self.asan.poison_return_slot(new_sp)
        return target

    def _op_icall(self, instr):
        target = self.machine.read_operand(instr.operands[0])
        redirected = self._check_indirect_target(instr, target)
        if redirected is not None:
            return redirected
        return self._do_call(instr, target)

    def _op_ijmp(self, instr):
        operand = instr.operands[0]
        if isinstance(operand, Mem):
            addr = self.machine.effective_address(operand)
            target = self.machine.memory.read_int(addr, 8)
        else:
            target = self.machine.read_operand(operand)
        redirected = self._check_indirect_target(instr, target)
        if redirected is not None:
            return redirected
        return to_unsigned(target)

    def _op_ret(self, instr):
        sp = self.machine.sp
        target = self.machine.memory.read_int(sp, 8)
        if self.asan is not None:
            self.asan.unpoison_return_slot(sp)
        self.machine.sp = sp + 8
        redirected = self._check_indirect_target(instr, target)
        if redirected is not None:
            # The transfer escaped the Shadow Copy and was rolled back; the
            # restored state (including sp) comes from the checkpoint.
            return redirected
        if target == EXIT_SENTINEL:
            if self.controller is not None and self.controller.in_simulation:
                # Returning from the entry function cannot retire transiently
                # (applies to single-copy instrumentation too, where no
                # shadow-escape check intercepts the return).
                self.controller.rollback(self.machine, self.dift, reason="forced")
                if self.coverage is not None:
                    self.coverage.flush_speculative()
                return self.machine.pc
            return EXIT_SENTINEL
        return to_unsigned(target)

    def _check_indirect_target(self, instr, target: int) -> Optional[int]:
        """Control-flow escape handling for Speculation Shadows (paper §5.3).

        When executing in speculation simulation in a shadows-rewritten
        binary, an indirect transfer may only proceed if its target is in
        the Shadow Copy, or is a Real-Copy block carrying the special marker
        nop (whose following ``spec.redirect`` bounces control back into the
        Shadow Copy).  Otherwise a forced rollback terminates the simulation.

        Returns the new program counter when the transfer was intercepted
        (rollback), or ``None`` when the transfer may proceed normally.
        """
        if (
            self.controller is None
            or not self.controller.in_simulation
            or not self.has_shadows
        ):
            return None
        target = to_unsigned(target)
        if self._in_shadow_copy(target):
            return None
        target_instr = self.instructions.get(target)
        if target_instr is not None and target_instr.opcode is Opcode.MARKER_NOP:
            return None
        undone = self.controller.rollback(self.machine, self.dift, reason="forced")
        if self.coverage is not None:
            self.coverage.flush_speculative()
        return self.machine.pc

    def _op_nop(self, instr):
        return self._next(instr)

    def _op_serializing(self, instr):
        if self.controller is not None and self.controller.in_simulation:
            self.controller.rollback(self.machine, self.dift, reason="forced")
            if self.coverage is not None:
                self.coverage.flush_speculative()
            return self.machine.pc
        return self._next(instr)

    def _op_halt(self, instr):
        if self.controller is not None and self.controller.in_simulation:
            # A transiently executed halt never retires; roll back instead.
            self.controller.rollback(self.machine, self.dift, reason="forced")
            if self.coverage is not None:
                self.coverage.flush_speculative()
            return self.machine.pc
        raise ProgramExit(to_signed(self.machine.get_reg(RETURN_REGISTER)))

    def _op_ecall(self, instr):
        if self.controller is not None and self.controller.in_simulation:
            # External libraries are not instrumented; their side effects
            # cannot be rolled back, so the simulation must end here.
            self.controller.rollback(self.machine, self.dift, reason="forced")
            if self.coverage is not None:
                self.coverage.flush_speculative()
            return self.machine.pc
        index = instr.operands[0]
        if isinstance(index, Imm):
            name = self.binary.import_name(index.value)
        else:
            raise EmulationError(f"unresolved ecall operand in {instr}")
        external = self.externals.get(name)
        args = [self.machine.get_reg(reg) for reg in ARG_REGISTERS]
        self.pending_return_tag = 0
        ret, moved = external.handler(self, args)
        self.machine.set_reg(RETURN_REGISTER, ret)
        if self.dift is not None:
            self.dift.set_register_tag(RETURN_REGISTER, self.pending_return_tag)
        self._extra_cycles = self.cost_model.external_cost(moved)
        return self._next(instr)

    # ------------------------------------------------------------------ instrumentation ops
    def _op_checkpoint(self, instr):
        resume_pc = self._next(instr)
        if self.controller is None or not self._pht_enabled:
            # The PHT variant is switched off: checkpoints are inert and
            # conditional branches always retire correctly.
            return resume_pc
        entered = self.controller.maybe_enter(
            self.machine, branch_address=resume_pc, resume_pc=resume_pc,
            dift=self.dift,
        )
        if not entered:
            return resume_pc
        return self._branch_target(instr)

    def _op_access_check(self, instr):
        if (
            self.controller is None
            or not self.controller.in_simulation
            or self.policy is None
        ):
            return self._next(instr)
        mem = instr.operands[0]
        is_write = instr.opcode is Opcode.POLICY_STORE
        if len(instr.operands) > 1 and isinstance(instr.operands[1], Imm):
            is_write = bool(instr.operands[1].value)
        addr = self.machine.effective_address(mem)
        promoted = self.policy.on_speculative_access(
            instr, mem, addr, instr.size, is_write, self.machine, self.controller
        )
        if promoted:
            self._pending_promotion |= promoted
        return self._next(instr)

    def _op_policy_branch(self, instr):
        if (
            self.controller is not None
            and self.controller.in_simulation
            and self.policy is not None
        ):
            self.policy.on_speculative_branch(instr, self.machine, self.controller)
        return self._next(instr)

    def _op_dift_batch(self, instr):
        # Tag propagation itself is performed inline for every architectural
        # instruction whenever DIFT is attached (keeping detection exact);
        # this pseudo-op accounts the cost of the optimised per-block snippet
        # the paper's rewriter emits for the Real Copy (§6.2.2).
        return self._next(instr)

    def _op_restore_cond(self, instr):
        controller = self.controller
        if controller is not None and controller.in_simulation and controller.budget_exceeded():
            if self.coverage is not None:
                self.coverage.flush_speculative()
            undone = controller.rollback(self.machine, self.dift, reason="budget")
            self._extra_cycles = self.cost_model.rollback_cost(undone)
            return self.machine.pc
        return self._next(instr)

    def _op_restore_always(self, instr):
        controller = self.controller
        if controller is not None and controller.in_simulation:
            if self.coverage is not None:
                self.coverage.flush_speculative()
            undone = controller.rollback(self.machine, self.dift, reason="forced")
            self._extra_cycles = self.cost_model.rollback_cost(undone)
            return self.machine.pc
        return self._next(instr)

    def _op_spec_redirect(self, instr):
        if self.controller is not None and self.controller.in_simulation:
            return self._branch_target(instr)
        return self._next(instr)

    def _op_cov_trace(self, instr):
        if self.coverage is not None:
            guard = instr.operands[0]
            self.coverage.trace_normal(guard.value if isinstance(guard, Imm) else 0)
        return self._next(instr)

    def _op_cov_spec(self, instr):
        if self.coverage is not None:
            guard = instr.operands[0]
            self.coverage.note_speculative(guard.value if isinstance(guard, Imm) else 0)
        return self._next(instr)

    def _op_taint_source(self, instr):
        if self.dift is not None:
            mem = instr.operands[0]
            size = instr.operands[1].value if len(instr.operands) > 1 else 8
            addr = self.machine.effective_address(mem)
            self.dift.mark_region(addr, size, BinaryDift.TAG_USER)
        return self._next(instr)


_PSEUDO_SET = frozenset(
    {
        Opcode.CHECKPOINT,
        Opcode.TRAMP_JCC,
        Opcode.ASAN_CHECK,
        Opcode.MEMLOG,
        Opcode.DIFT_PROP,
        Opcode.DIFT_BATCH,
        Opcode.POLICY_LOAD,
        Opcode.POLICY_STORE,
        Opcode.POLICY_BRANCH,
        Opcode.RESTORE_COND,
        Opcode.RESTORE_ALWAYS,
        Opcode.SPEC_REDIRECT,
        Opcode.MARKER_NOP,
        Opcode.GUARD_CHECK,
        Opcode.COV_TRACE,
        Opcode.COV_SPEC,
        Opcode.TAINT_SOURCE,
    }
)
