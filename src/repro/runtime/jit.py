"""The jit emulator engine: block-compiled execution over generated source.

:class:`JitEmulator` is the third engine tier.  Where the fast engine
(:mod:`repro.runtime.fastpath`) dispatches one pre-decoded *thunk* per
instruction, the jit engine compiles each basic block (and straight-line
superblock) of the decoded program into a **single generated Python
function**: operand decoding, effective-address arithmetic, cycle costs,
DIFT tag propagation and journal undo-logging are emitted as source text
with every constant folded to a literal, then ``compile()``d and
``exec``d once per binary.  Executing a block is one dict lookup and one
call for *n* instructions instead of *n* of each.

Bit-identity with the fast and legacy engines (enforced by
``tests/runtime/differential.py``) is preserved by construction:

* **Same bodies.**  Each inline emitter is a textual transcription of
  the corresponding fast-engine thunk — same statements, same order,
  same journal entries, same DIFT helper calls.
* **Fallback at the same sites.**  Any instruction the fast engine
  would not specialize (indirect control flow, ``ecall``, div/mod,
  taint sources, speculation-model source sites, unresolvable
  operands) ends its block and tail-calls the existing thunk for that
  address, so intricate semantics keep exactly one implementation.
  Direct calls and returns *are* inlined (as block terminators) unless
  a speculation model claims them as source sites.
* **Batched-but-exact accounting.**  Step/cycle/arch counters and the
  controller's in-simulation instruction count are accumulated per
  block segment and flushed before every block exit and before any
  instruction that *reads* them (checkpoint entries, rollback budget
  checks, the fuel check at thunk tails).  Instructions that can merely
  *fault* (loads, stores, push/pop) or call out (policy/coverage
  hooks) do not flush; instead each such site stores a fault-table
  index, and a per-block ``except BaseException`` handler flushes the
  exact pending prefix (a precomputed ``(steps, cycles, arch)`` tuple)
  before re-raising — so at every observable point (faults, rollbacks,
  checkpoint entries, run end) the counters equal the fast engine's.
* **Simulation-specialized variants.**  Every block is compiled twice:
  a *no-sim* variant (dispatched while no checkpoint is live) with all
  journal undo-logging, speculation bookkeeping and policy hooks
  constant-folded away, and a *sim* variant (dispatched inside
  speculation) with the ``in-simulation?`` tests folded to true —
  journal appends unguarded, instruction counts batched.  The dispatch
  loop re-selects the variant map on every iteration from the
  controller's live-checkpoint list, and every transition between the
  two states (checkpoint entry, rollback) exits the block, so the
  folded truth value can never go stale mid-block.
* **Fuel gate.**  A block of ``n`` steps only runs when ``steps + n <=
  max_steps``; otherwise the loop falls back to per-thunk stepping, so
  fuel expiry lands on exactly the same instruction as the other
  engines.

The compiled module is persistently cached across processes by
:mod:`repro.runtime.jitcache`, keyed by (binary hash, repro version,
engine-options digest, bytecode magic); see ``docs/emulator.md``.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Dict, List, Optional, Set, Tuple

from repro._version import __version__
from repro.isa.instructions import ConditionCode, Instruction, Opcode
from repro.isa.operands import Imm, Mem, Reg
from repro.loader.serialize import dumps_binary
from repro.plugins import register_engine
from repro.runtime.emulator import EXIT_SENTINEL, ExecutionResult, _PSEUDO_SET
from repro.runtime.errors import (
    ArithmeticFault,
    MemoryFault,
    ProgramCrash,
    ProgramExit,
)
from repro.runtime.fastpath import (
    _ALU_INLINE,
    _FREE_PSEUDOS,
    _FROM_BYTES,
    _imm_target,
    _read_tag_range,
    _write_tag_range,
    FastEmulator,
    RET_IDX,
    SIGN_BIT,
    SP_IDX,
    TWO64,
)
from repro.runtime.jitcache import shared_cache
from repro.runtime.machine import MASK64, to_signed, to_unsigned
from repro.sanitizers.dift import ALL_TAGS

#: bump to invalidate every cached module when the emitted code changes.
_CODEGEN_VERSION = 8

#: Width-specific page accessors: ``struct`` unpack/pack beats an
#: ``int.from_bytes`` over a fresh slice (and a ``to_bytes`` slice
#: assignment) by 3-4x, and in-page accesses are guaranteed not to
#: cross the 4 KiB boundary, so the fixed-width forms always apply.
_UNPACKERS = {size: struct.Struct("<" + fmt).unpack_from
              for size, fmt in ((1, "B"), (2, "H"), (4, "I"), (8, "Q"))}
_PACKERS = {size: struct.Struct("<" + fmt).pack_into
            for size, fmt in ((1, "B"), (2, "H"), (4, "I"), (8, "Q"))}

#: inline-instruction cap per superblock (keeps generated functions and
#: the worst-case counter-flush granularity bounded).
_MAX_BLOCK = 64

#: inline instructions that overwrite *all four* architectural flags.
_FLAG_WRITER_OPS = _ALU_INLINE | {Opcode.CMP, Opcode.TEST}

#: inline instructions whose emitted code never reads the flags object
#: (data movement and stack traffic; faults are covered by the liveness
#: argument in ``_dead_flag_addrs``).
_FLAG_TRANSPARENT_OPS = frozenset({
    Opcode.MOV, Opcode.LEA, Opcode.LOAD, Opcode.STORE,
    Opcode.PUSH, Opcode.POP,
})

#: condition-code expressions over the hoisted ``f`` (flags) local;
#: mirrors ``fastpath._CC_FUNCS`` / ``Flags.evaluate``.
_CC_EXPR = {
    ConditionCode.EQ: "f.zero",
    ConditionCode.NE: "not f.zero",
    ConditionCode.LT: "f.sign != f.overflow",
    ConditionCode.GE: "f.sign == f.overflow",
    ConditionCode.LE: "(f.zero or f.sign != f.overflow)",
    ConditionCode.GT: "(not f.zero and f.sign == f.overflow)",
    ConditionCode.B: "f.carry",
    ConditionCode.AE: "not f.carry",
    ConditionCode.BE: "(f.carry or f.zero)",
    ConditionCode.A: "(not f.carry and not f.zero)",
}

#: direct branches whose immediate targets become block leaders.
_BRANCH_OPS = (Opcode.JMP, Opcode.JCC, Opcode.CALL, Opcode.TRAMP_JCC,
               Opcode.CHECKPOINT, Opcode.SPEC_REDIRECT)


def _ea_expr(mem: Mem) -> Optional[str]:
    """Source text of the effective address (mirrors ``fastpath._ea_fn``)."""
    disp = mem.disp
    if not isinstance(disp, int):
        return None
    base = int(mem.base) if mem.base is not None else None
    index = int(mem.index) if mem.index is not None else None
    scale = mem.scale
    if base is not None and index is None:
        if disp == 0:
            return f"regs[{base}]"
        return f"(regs[{base}] + {disp}) & {MASK64}"
    if base is not None:
        return f"(regs[{base}] + regs[{index}] * {scale} + {disp}) & {MASK64}"
    if index is not None:
        return f"(regs[{index}] * {scale} + {disp}) & {MASK64}"
    return str(disp & MASK64)


def _val_expr(operand) -> Optional[str]:
    """Source text reading a Reg/Imm operand (mirrors ``_val_fn``)."""
    if isinstance(operand, Reg):
        return f"regs[{int(operand.reg)}]"
    if isinstance(operand, Imm):
        return str(to_unsigned(operand.value))
    return None


class _BlockWriter:
    """Accumulates the body of one generated block function.

    One writer builds one *variant* of one block: ``sim=False`` is the
    no-checkpoint variant (journal and speculation bookkeeping folded
    away), ``sim=True`` the in-simulation variant (journal attached by
    invariant, instruction counts flushed to the controller).
    """

    def __init__(self, sim: bool) -> None:
        self.sim = sim
        self.lines: List[str] = []
        #: keyword parameters bound at module-exec time (name -> expr).
        self.params: Dict[str, str] = {}
        #: per-call hoists the body needs (regs, f, memory, jn, ...).
        self.uses: Set[str] = set()
        # pending (not yet emitted) counter contributions.
        self.pend_steps = 0
        self.pend_cycles = 0
        self.pend_arch = 0
        #: total steps the whole block consumes (the fuel-gate ``need``).
        self.total_steps = 0
        #: exception-flush table: entry ``i`` is the pending
        #: ``(steps, cycles, arch)`` at fault-site marker ``i`` (entry 0
        #: is the just-flushed sentinel).  Emitted as the ``_P`` tuple.
        self.fault_entries: List[Tuple[int, int, int]] = [(0, 0, 0)]

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def param(self, name: str, expr: str) -> None:
        self.params.setdefault(name, expr)

    def use(self, *names: str) -> None:
        self.uses.update(names)

    def account(self, cost: int, is_arch: bool) -> None:
        self.pend_steps += 1
        self.total_steps += 1
        self.pend_cycles += cost
        if is_arch:
            self.pend_arch += 1

    def mark(self) -> None:
        """Record a fault site: the next statements may raise.

        Stores the fault-table index of the current pending counters
        (including the instruction being emitted) into ``_e``; the
        block's ``except BaseException`` handler flushes ``_P[_e]``
        before re-raising, so counters are exact at every fault without
        a full flush on the non-faulting path.
        """
        entry = (self.pend_steps, self.pend_cycles, self.pend_arch)
        self.fault_entries.append(entry)
        self.emit(f"_e = {len(self.fault_entries) - 1}")

    def _flush_lines(self, pad: str = "") -> List[str]:
        lines: List[str] = []
        if self.pend_steps:
            self.param("STP", "STP")
            lines.append(f"{pad}STP[0] += {self.pend_steps}")
        if self.pend_cycles:
            self.param("CYC", "CYC")
            lines.append(f"{pad}CYC[0] += {self.pend_cycles}")
        if self.pend_arch:
            self.param("ARC", "ARC")
            lines.append(f"{pad}ARC[0] += {self.pend_arch}")
            if self.sim:
                self.param("CTRL", "CTRL")
                if self.pend_arch == 1:
                    lines.append(f"{pad}CTRL.count_instruction()")
                else:
                    lines.append(
                        f"{pad}CTRL.count_instructions({self.pend_arch})")
        return lines

    def flush(self) -> None:
        """Emit the pending counter updates and reset the fault marker.

        Required before anything that *reads* the counters: checkpoint
        entry and rollback (they read the controller's in-simulation
        count), the fuel check at thunk tails, and every block exit
        (the dispatch loop reads the step cell).  Batching is safe in
        between: nothing in a straight-line segment reads them, and
        simulation state cannot change without exiting the block.
        """
        self.lines.extend(self._flush_lines())
        self.pend_steps = self.pend_cycles = self.pend_arch = 0
        if len(self.fault_entries) > 1:
            # a stale marker from before this flush must not double-count
            self.emit("_e = 0")

    def flush_exit(self, pad: str = "    ") -> None:
        """Emit the pending updates inside a conditional exit arm.

        The arm returns immediately, so pending state is *not* cleared:
        the fall-through path keeps accumulating as if the arm did not
        exist (that is exactly the fast engine's per-instruction sum).
        """
        self.lines.extend(self._flush_lines(pad))

    def journal_reg(self, index: int) -> None:
        """Undo-log a register write (sim variant only; no-sim has no
        journal attached by the controller's attach/detach invariant)."""
        if not self.sim:
            return
        self.use("jn", "regs")
        self.emit(f"jn.entries.append((False, {index}, regs[{index}]))")

    def render(self, name: str) -> str:
        wrapped = len(self.fault_entries) > 1
        if wrapped:
            self.param("_P", repr(tuple(self.fault_entries)))
            self.param("STP", "STP")
            self.param("CYC", "CYC")
            self.param("ARC", "ARC")
            if self.sim:
                self.param("CTRL", "CTRL")
        uses = self.uses
        if uses & {"D", "rt", "cov", "pol", "asan"}:
            self.param("EM", "EM")
        params = ["m"] + [f"{key}={expr}" for key, expr in self.params.items()]
        head = f"def {name}({', '.join(params)}):"
        hoists = []
        if "regs" in uses:
            hoists.append("regs = m.registers")
        if "f" in uses:
            hoists.append("f = m.flags")
        if uses & {"memory", "pages", "fullp"}:
            hoists.append("memory = m.memory")
        if "fullp" in uses:
            hoists.append("fullp = memory._full_pages")
        if "pages" in uses:
            hoists.append("pages = memory._pages")
        if "jn" in uses:
            hoists.append("jn = m.journal")
        if uses & {"D", "rt"}:
            hoists.append("D = EM.dift")
        if "rt" in uses:
            hoists.append("rt = D.register_tags")
        if "cov" in uses:
            hoists.append("cov = EM.coverage")
        if "asan" in uses:
            hoists.append("asan = EM.asan")
        if "pol" in uses:
            hoists.append("pol = EM.policy")
        if not wrapped:
            body = hoists + self.lines
            return head + "\n" + "\n".join("    " + line for line in body)
        out = [head]
        out.extend("    " + line for line in hoists)
        out.append("    _e = 0")
        out.append("    try:")
        out.extend("        " + line for line in self.lines)
        out.append("    except BaseException:")
        out.append("        _t = _P[_e]")
        out.append("        STP[0] += _t[0]")
        out.append("        CYC[0] += _t[1]")
        out.append("        ARC[0] += _t[2]")
        if self.sim:
            out.append("        if _t[2]:")
            out.append("            CTRL.count_instructions(_t[2])")
        out.append("        raise")
        return "\n".join(out)


class _BlockCompiler:
    """Generates the block module source for one emulator configuration."""

    def __init__(self, emulator: "JitEmulator") -> None:
        self.em = emulator
        self.instructions = emulator.instructions
        self.next_address = emulator.next_address
        self.flip = emulator.layout.tag_flip_bit
        self.dift_on = (emulator.policy is not None
                        and emulator.policy.needs_dift)
        self.have_controller = emulator.controller is not None
        self.cost = emulator.cost_model.instruction_cost
        #: variant currently being compiled (set per `_compile_block` pass).
        self.sim = False
        #: addresses whose flag writes are dead (set per `_compile_block`).
        self._dead_flags: Set[int] = set()

    # -- classification ------------------------------------------------------
    def _kind(self, instr: Instruction) -> str:
        """``inline`` | ``cexit`` | ``term`` | ``ender``.

        ``cexit`` instructions *conditionally* leave the block (taken
        branches, checkpoint entries, triggered rollbacks) and otherwise
        fall through, so superblocks extend across them; ``term`` always
        exits in-block; ``ender`` tail-calls the existing fast-engine
        thunk.  Mirrors ``FastEmulator._make_thunk``: every shape the
        fast engine sends to a fallback or intricate thunk ends the
        block so its semantics stay in exactly one implementation.

        Classification is variant-aware (``self.sim``): a redirect or
        forced restore always fires inside simulation (``term``) and
        never fires outside it (``inline``, cost only).
        """
        em = self.em
        opcode = instr.opcode
        ops = instr.operands
        if em._model_opcodes and opcode in em._model_opcodes and any(
            model.speculation_sources(instr) for model in em._dynamic_models
        ):
            return "ender"
        if opcode in _FREE_PSEUDOS:
            return "inline"
        if opcode in (Opcode.COV_TRACE, Opcode.COV_SPEC):
            return "inline"
        if opcode is Opcode.CHECKPOINT:
            if _imm_target(instr) is None:
                return "ender"
            if not em._pht_enabled or not self.have_controller:
                return "inline"  # inert checkpoint: cost only
            return "cexit"
        if opcode is Opcode.RESTORE_COND:
            return "cexit" if self.sim else "inline"
        if opcode is Opcode.RESTORE_ALWAYS:
            return "term" if self.sim else "inline"
        if opcode is Opcode.TRAMP_JCC:
            return "cexit" if _imm_target(instr) is not None else "ender"
        if opcode is Opcode.SPEC_REDIRECT:
            if _imm_target(instr) is None:
                return "ender"
            return "term" if self.sim else "inline"
        if opcode in (Opcode.ASAN_CHECK, Opcode.POLICY_LOAD,
                      Opcode.POLICY_STORE):
            mem = ops[0] if ops else None
            if isinstance(mem, Mem) and _ea_expr(mem) is not None:
                return "inline"
            return "ender"
        if opcode is Opcode.POLICY_BRANCH:
            return "inline"
        if opcode is Opcode.MOV:
            if (len(ops) == 2 and isinstance(ops[0], Reg)
                    and isinstance(ops[1], (Reg, Imm))):
                return "inline"
            return "ender"
        if opcode in (Opcode.LOAD, Opcode.LEA):
            if (len(ops) == 2 and isinstance(ops[0], Reg)
                    and isinstance(ops[1], Mem)
                    and _ea_expr(ops[1]) is not None):
                return "inline"
            return "ender"
        if opcode is Opcode.STORE:
            if (len(ops) == 2 and isinstance(ops[0], Mem)
                    and _ea_expr(ops[0]) is not None
                    and _val_expr(ops[1]) is not None):
                return "inline"
            return "ender"
        if opcode is Opcode.PUSH:
            if len(ops) == 1 and _val_expr(ops[0]) is not None:
                return "inline"
            return "ender"
        if opcode is Opcode.POP:
            if len(ops) == 1 and isinstance(ops[0], Reg):
                return "inline"
            return "ender"
        if opcode in _ALU_INLINE:
            if (len(ops) == 2 and isinstance(ops[0], Reg)
                    and _val_expr(ops[1]) is not None):
                return "inline"
            return "ender"
        if opcode in (Opcode.CMP, Opcode.TEST):
            if (len(ops) == 2 and _val_expr(ops[0]) is not None
                    and _val_expr(ops[1]) is not None):
                return "inline"
            return "ender"
        if opcode is Opcode.JMP:
            return "term" if _imm_target(instr) is not None else "ender"
        if opcode is Opcode.JCC:
            return "cexit" if _imm_target(instr) is not None else "ender"
        if opcode is Opcode.CALL:
            return "term" if _imm_target(instr) is not None else "ender"
        if opcode is Opcode.RET:
            return "term"
        if opcode in (Opcode.LFENCE, Opcode.CPUID):
            # Fences roll back inside simulation and are plain
            # fall-through (cost only) outside it.
            return "term" if self.sim else "inline"
        if opcode is Opcode.ECALL:
            # Uninstrumented side effects end the simulation (rollback);
            # outside it a resolvable import is a plain handler call, so
            # superblocks extend across external calls.
            if self.sim:
                return "term"
            index = ops[0] if ops else None
            if isinstance(index, Imm):
                try:
                    self.em.binary.import_name(index.value)
                except Exception:
                    return "ender"
                return "inline"
            return "ender"
        return "ender"

    # -- block discovery -----------------------------------------------------
    def leaders(self) -> Set[int]:
        """Every address a compiled block may start at.

        Function entries, immediate branch/checkpoint targets, the
        fall-through successor of every ender and every direct call
        (return sites — ``ret`` returns there dynamically) and
        checkpoint resume points (rollback lands there).  Control transfers into the *middle* of a block
        (dynamic-model resumes, stale targets) are always safe: the main
        loop simply single-steps thunks until the next leader.
        """
        leaders: Set[int] = set()
        for sym in self.em.binary.function_symbols():
            leaders.add(sym.address)
        for addr, instr in self.instructions.items():
            if instr.opcode in _BRANCH_OPS:
                target = _imm_target(instr)
                if target is not None:
                    leaders.add(target)
            if (self._kind(instr) == "ender"
                    or instr.opcode in (Opcode.CHECKPOINT, Opcode.CALL)):
                nxt = self.next_address.get(addr)
                if nxt is not None:
                    leaders.add(nxt)
        return leaders

    # -- module generation ---------------------------------------------------
    def compile_source(self) -> str:
        chunks = [
            f"# generated by repro.runtime.jit codegen v{_CODEGEN_VERSION}"
            " -- do not edit",
        ]
        modes = (False, True) if self.have_controller else (False,)
        for leader in sorted(self.leaders()):
            if leader not in self.instructions:
                continue
            for sim in modes:
                compiled = self._compile_block(leader, sim)
                if compiled is None:
                    continue
                source, need, span = compiled
                table = "BLOCKS" if sim else "NBLOCKS"
                spans = "SSPANS" if sim else "NSPANS"
                name = f"_b{'s' if sim else 'n'}_{leader:x}"
                chunks.append(source)
                chunks.append(f"{table}[{leader}] = ({name}, {need})")
                chunks.append(f"{spans}[{leader}] = {tuple(span)!r}")
        return "\n\n".join(chunks) + "\n"

    def _compile_block(self, leader: int, sim: bool):
        self.sim = sim
        # Phase 1: walk the block to collect its instruction sequence (the
        # emission below follows this list verbatim), so liveness analysis
        # can look ahead before any code is generated.
        seq: List[Tuple[int, Instruction, str]] = []
        addr = leader
        tail = None
        while True:
            instr = self.instructions.get(addr)
            if instr is None:
                tail = ("goto", addr)
                break
            kind = self._kind(instr)
            if kind == "ender":
                tail = ("ender", addr)
                break
            seq.append((addr, instr, kind))
            if kind == "term":
                break
            if len(seq) >= _MAX_BLOCK:
                tail = ("goto", self.next_address[addr])
                break
            addr = self.next_address[addr]
        self._dead_flags = self._dead_flag_addrs(seq)
        # Phase 2: emit.
        writer = _BlockWriter(sim)
        span: List[int] = []
        for addr, instr, kind in seq:
            if kind == "term":
                self._emit_term(writer, addr, instr)
            elif kind == "cexit":
                self._emit_cexit(writer, addr, instr)
            else:
                self._emit_inline(writer, addr, instr)
            span.append(addr)
        if tail is not None:
            self._emit_tail(writer, tail)
        if writer.total_steps < 2:
            return None  # a lone thunk dispatch is just as fast
        name = f"_b{'s' if sim else 'n'}_{leader:x}"
        return writer.render(name), writer.total_steps, span

    # -- intra-block flag liveness -------------------------------------------
    def _flag_transparent(self, instr: Instruction, kind: str) -> bool:
        """True when the instruction's *emitted* code can neither read the
        architectural flags nor leave the block (so flags written before it
        stay unobservable until the next in-block flag write).  Config-gated
        sites (coverage, policy) are transparent exactly when they fold to
        nothing; anything that calls out to arbitrary Python (externals,
        policies) is a barrier."""
        if kind != "inline":
            return False
        opcode = instr.opcode
        if opcode in _FLAG_TRANSPARENT_OPS:
            return True
        if opcode in _FREE_PSEUDOS or opcode in (
            Opcode.CHECKPOINT, Opcode.RESTORE_COND, Opcode.RESTORE_ALWAYS,
            Opcode.SPEC_REDIRECT, Opcode.LFENCE, Opcode.CPUID,
        ):
            return True  # cost-only in this variant: nothing is emitted
        if opcode in (Opcode.COV_TRACE, Opcode.COV_SPEC):
            return self.em.coverage is None
        if opcode in (Opcode.ASAN_CHECK, Opcode.POLICY_LOAD,
                      Opcode.POLICY_STORE, Opcode.POLICY_BRANCH):
            return not self.sim or self.em.policy is None
        return False

    def _dead_flag_addrs(self, seq) -> Set[int]:
        """Addresses whose flag writes are provably dead inside this block.

        A flag-writing instruction's ``f.*`` stores can be skipped when
        every path to the next flag *observation* point first passes
        another flag writer: the walk forward hits a second writer before
        any reader, barrier, or block exit.  Faults in between are safe —
        a no-sim fault ends the run (flags are never read again) and a
        sim fault rolls back to a checkpoint that snapshotted the flags
        wholesale — so memory operations do not pin flags live.
        """
        dead: Set[int] = set()
        for i, (addr, instr, kind) in enumerate(seq):
            if kind != "inline" or instr.opcode not in _FLAG_WRITER_OPS:
                continue
            for _, nxt, nkind in seq[i + 1:]:
                if nkind == "inline" and nxt.opcode in _FLAG_WRITER_OPS:
                    dead.add(addr)
                    break
                if not self._flag_transparent(nxt, nkind):
                    break
        return dead

    def _emit_rollback(self, w: _BlockWriter, reason: str,
                       pad: str = "", charge: bool = True) -> None:
        """Shared rollback sequence (sim variant; counters just flushed).

        ``charge`` mirrors the reference engines: only restore-site and
        budget rollbacks pay ``rollback_cost`` (the paper's recovery-stub
        cost); rollbacks forced by serializing instructions, external
        calls and exit-sentinel returns squash for free.
        """
        w.param("CTRL", "CTRL")
        w.param("EM", "EM")
        if self.em.coverage is not None:
            w.use("cov")
            w.emit(f"{pad}cov.flush_speculative()")
        # NB: EM.dift is re-read per call — the reset between runs
        # builds a fresh BinaryDift, so it must not be bound at install.
        if charge:
            w.param("CYC", "CYC")
            w.param("RBC", "EM.cost_model.rollback_cost")
            w.emit(f"{pad}CYC[0] += RBC(CTRL.rollback(m, EM.dift, "
                   f"reason={reason!r}))")
        else:
            w.emit(f"{pad}CTRL.rollback(m, EM.dift, reason={reason!r})")
        w.emit(f"{pad}return m.pc")

    # -- terminators / conditional exits -------------------------------------
    def _emit_term(self, w: _BlockWriter, addr: int,
                   instr: Instruction) -> None:
        """Unconditional in-block exit.

        Direct JMPs, calls and returns in both variants; in the sim
        variant also SPEC_REDIRECT (always fires inside simulation),
        fences and RESTORE_ALWAYS (always roll back inside simulation).
        Counters are flushed *before* the call/return stack access, the
        order the fast thunks count in, so a stack fault observes exact
        totals.
        """
        opcode = instr.opcode
        w.account(self.cost(opcode), opcode not in _PSEUDO_SET)
        w.flush()
        if opcode is Opcode.RESTORE_ALWAYS:
            self._emit_rollback(w, "forced")
        elif opcode in (Opcode.LFENCE, Opcode.CPUID, Opcode.ECALL):
            self._emit_rollback(w, "forced", charge=False)
        elif opcode is Opcode.CALL:
            self._emit_call(w, addr, instr)
        elif opcode is Opcode.RET:
            self._emit_ret(w, addr, instr)
        else:  # JMP / SPEC_REDIRECT(sim): direct target
            w.emit(f"return {_imm_target(instr)}")

    def _emit_cexit(self, w: _BlockWriter, addr: int,
                    instr: Instruction) -> None:
        """Conditional block exit; the fall-through path stays in-block.

        Taken branches, checkpoint entries and triggered rollbacks
        ``return``; the (usually far more common) fall-through case
        continues executing the superblock without re-dispatching.
        Branches flush *inside* the taken arm (nothing on the
        fall-through path reads the counters); checkpoint entries and
        budget restores flush up front because ``maybe_enter`` and the
        ROB-budget test read the in-simulation instruction count.
        """
        opcode = instr.opcode
        nxt = self.next_address[addr]
        w.account(self.cost(opcode), opcode not in _PSEUDO_SET)
        if opcode in (Opcode.JCC, Opcode.TRAMP_JCC):
            w.use("f")
            w.emit(f"if {_CC_EXPR[instr.cc]}:")
            w.flush_exit()
            w.emit(f"    return {_imm_target(instr)}")
        elif opcode is Opcode.CHECKPOINT:
            w.flush()
            w.param("CTRL", "CTRL")
            w.param("EM", "EM")
            w.emit(f"if CTRL.maybe_enter(m, branch_address={nxt}, "
                   f"resume_pc={nxt}, dift=EM.dift):")
            w.emit(f"    return {_imm_target(instr)}")
        else:  # RESTORE_COND (sim variant)
            w.flush()
            w.param("CTRL", "CTRL")
            w.emit("if CTRL.spec_instruction_count >= CTRL.rob_budget:")
            self._emit_rollback(w, "budget", pad="    ")

    def _emit_call(self, w: _BlockWriter, addr: int,
                   instr: Instruction) -> None:
        """Direct call: push the return address, jump to the target.

        Transcribes the fast engine's CALL thunk with the return
        address folded to a bytes literal.  The return site is a block
        leader, so the matching ``ret`` lands back on compiled code.
        """
        nxt = self.next_address[addr]
        tgt = _imm_target(instr)
        w.use("regs")
        w.emit(f"new_sp = (regs[{SP_IDX}] - 8) & {MASK64}")
        self._page_state(w, "new_sp", 4088)
        w.emit("if state:")
        w.emit("    page = pages.get(pid)")
        w.emit("    if page is None:")
        w.emit("        page = bytearray(4096)")
        w.emit("        pages[pid] = page")
        if w.sim:
            w.use("jn")
            w.emit("    jn.entries.append((True, new_sp, "
                   "bytes(page[off:off + 8])))")
        w.param("P8", "P8")
        w.emit(f"    P8(page, off, {nxt})")
        w.emit("else:")
        w.emit(f"    memory.write_int(new_sp, {nxt}, 8)")
        if w.sim:
            w.emit(f"jn.entries.append((False, {SP_IDX}, regs[{SP_IDX}]))")
        w.emit(f"regs[{SP_IDX}] = new_sp")
        w.use("asan")
        w.emit("if asan is not None:")
        w.emit("    asan.poison_return_slot(new_sp)")
        w.emit(f"return {tgt}")

    def _emit_ret(self, w: _BlockWriter, addr: int,
                  instr: Instruction) -> None:
        """Return: pop the target and jump to it dynamically.

        Transcribes the fast engine's RET thunk.  The shadow-target
        check only fires inside simulation with shadows present (both
        folded: simulation via the variant, shadows via the cache
        digest), and the exit sentinel only needs special handling in
        simulation — outside it the dispatch loop recognizes it.
        """
        w.use("regs")
        w.param("U8", "U8")
        w.emit(f"sp = regs[{SP_IDX}]")
        self._page_state(w, "sp", 4088)
        w.emit("if state:")
        w.emit("    page = pages.get(pid)")
        w.emit("    target = 0 if page is None else U8(page, off)[0]")
        w.emit("else:")
        w.emit("    target = memory.read_int(sp, 8)")
        w.use("asan")
        w.emit("if asan is not None:")
        w.emit("    asan.unpoison_return_slot(sp)")
        if w.sim:
            w.use("jn")
            w.emit(f"jn.entries.append((False, {SP_IDX}, sp))")
        w.emit(f"regs[{SP_IDX}] = (sp + 8) & {MASK64}")
        if w.sim and self.em.has_shadows:
            iname = f"I_{addr:x}"
            w.param(iname, f"INSTRS[{addr}]")
            w.param("EM", "EM")
            w.emit(f"redirected = EM._check_indirect_target({iname}, target)")
            w.emit("if redirected is not None:")
            w.emit("    return redirected")
        if w.sim:
            w.emit(f"if target == {EXIT_SENTINEL}:")
            self._emit_rollback(w, "forced", pad="    ", charge=False)
        w.emit("return target")

    def _emit_tail(self, w: _BlockWriter, tail) -> None:
        kind, addr = tail
        w.flush()
        if kind == "goto":
            w.emit(f"return {addr}")
            return
        # Thunk ender: one existing-thunk step with the loop's fuel check.
        w.param("STP", "STP")
        w.param("T", "TRACE")
        w.emit(f"if STP[0] >= {self.em.max_steps}:")
        w.emit(f"    return {addr}")
        w.emit("STP[0] += 1")
        w.emit(f"return T[{addr}](m)")

    # -- inline instruction emitters -----------------------------------------
    def _emit_inline(self, w: _BlockWriter, addr: int,
                     instr: Instruction) -> None:
        opcode = instr.opcode
        ops = instr.operands
        cost = self.cost(opcode)
        is_arch = opcode not in _PSEUDO_SET
        w.account(cost, is_arch)

        if opcode in _FREE_PSEUDOS or opcode in (
            Opcode.CHECKPOINT, Opcode.RESTORE_COND, Opcode.RESTORE_ALWAYS,
            Opcode.SPEC_REDIRECT, Opcode.LFENCE, Opcode.CPUID,
        ):
            # Cost only: free pseudos, inert checkpoints, and the
            # speculation sites in the variant where they cannot fire
            # (no-sim redirects/restores/fences, controller-less configs).
            return

        if opcode in (Opcode.COV_TRACE, Opcode.COV_SPEC):
            if self.em.coverage is None:
                return  # folded: coverage presence is in the cache digest
            guard = ops[0] if ops else None
            gid = guard.value if isinstance(guard, Imm) else 0
            call = ("trace_normal" if opcode is Opcode.COV_TRACE
                    else "note_speculative")
            w.mark()
            w.use("cov")
            w.emit(f"cov.{call}({gid})")
            return

        if opcode in (Opcode.ASAN_CHECK, Opcode.POLICY_LOAD,
                      Opcode.POLICY_STORE):
            if not self.sim or self.em.policy is None:
                return  # fires only inside simulation with a policy
            is_write = opcode is Opcode.POLICY_STORE
            if len(ops) > 1 and isinstance(ops[1], Imm):
                is_write = bool(ops[1].value)
            iname, mname = f"I_{addr:x}", f"M_{addr:x}"
            w.param(iname, f"INSTRS[{addr}]")
            w.param(mname, f"INSTRS[{addr}].operands[0]")
            w.param("CTRL", "CTRL")
            w.param("EM", "EM")
            w.use("pol", "regs")
            w.mark()
            w.emit(f"promoted = pol.on_speculative_access({iname}, "
                   f"{mname}, {_ea_expr(ops[0])}, {instr.size}, {is_write}, "
                   "m, CTRL)")
            w.emit("if promoted:")
            w.emit("    EM._pending_promotion |= promoted")
            return

        if opcode is Opcode.POLICY_BRANCH:
            if not self.sim or self.em.policy is None:
                return
            iname = f"I_{addr:x}"
            w.param(iname, f"INSTRS[{addr}]")
            w.param("CTRL", "CTRL")
            w.use("pol")
            w.mark()
            w.emit(f"pol.on_speculative_branch({iname}, m, CTRL)")
            return

        if opcode is Opcode.ECALL:
            # no-sim only (sim classifies ECALL as a rollback terminator);
            # transcribes the fast thunk with the import name folded.
            name = self.em.binary.import_name(ops[0].value)
            w.param("XR", "EXTERNALS")
            w.param("EM", "EM")
            w.param("CYC", "CYC")
            w.param("EB", "EM.cost_model.external_base")
            w.param("EPB", "EM.cost_model.external_per_byte")
            w.use("regs")
            w.mark()
            w.emit(f"external = XR.get({name!r})")
            w.emit("if external is None:")
            w.emit(f"    EM.externals.get({name!r})  # raises KeyError")
            w.emit("EM.pending_return_tag = 0")
            w.emit("ret, moved = external.handler(EM, "
                   "[regs[1], regs[2], regs[3], regs[4], regs[5]])")
            w.emit(f"regs[{RET_IDX}] = ret & {MASK64}")
            if self.dift_on:
                w.use("rt")
                w.emit(f"rt[{RET_IDX}] = "
                       f"EM.pending_return_tag & {ALL_TAGS}")
            w.emit("CYC[0] += EB + EPB * moved")
            return

        # -- architectural instructions ----------------------------------
        if opcode is Opcode.MOV:
            di = int(ops[0].reg)
            w.use("regs")
            if self.dift_on:
                w.use("rt")
                if isinstance(ops[1], Reg):
                    w.emit(f"rt[{di}] = rt[{int(ops[1].reg)}]")
                else:
                    w.emit(f"rt[{di}] = 0")
            w.journal_reg(di)
            if isinstance(ops[1], Reg):
                w.emit(f"regs[{di}] = regs[{int(ops[1].reg)}]")
            else:
                w.emit(f"regs[{di}] = {to_unsigned(ops[1].value)}")
            return

        if opcode is Opcode.LEA:
            di = int(ops[0].reg)
            w.use("regs")
            if self.dift_on:
                w.use("rt")
                regs_used = tuple(int(r) for r in ops[1].registers())
                tag = " | ".join(f"rt[{r}]" for r in regs_used) or "0"
                w.emit(f"rt[{di}] = {tag}")
            w.emit(f"value = {_ea_expr(ops[1])}")
            w.journal_reg(di)
            w.emit(f"regs[{di}] = value")
            return

        if opcode is Opcode.LOAD:
            self._emit_load(w, instr)
            return

        if opcode is Opcode.STORE:
            self._emit_store(w, instr)
            return

        if opcode is Opcode.PUSH:
            self._emit_push(w, instr)
            return

        if opcode is Opcode.POP:
            self._emit_pop(w, instr)
            return

        if opcode in _ALU_INLINE:
            self._emit_alu(w, addr, instr)
            return

        # CMP / TEST
        if self.dift_on:
            w.use("D")
            parts = [f"rt[{int(op.reg)}]" for op in ops if isinstance(op, Reg)]
            if parts:
                w.use("rt")
            w.emit(f"D.flags_tag = {' | '.join(parts) or '0'}")
        if addr in self._dead_flags:
            # The flags are overwritten before any possible observation
            # and the comparison computes nothing else, so it folds away
            # entirely (the flags *tag* above still propagates for DIFT).
            return
        w.use("regs", "f")
        w.emit(f"a = {_val_expr(ops[0])}")
        w.emit(f"b = {_val_expr(ops[1])}")
        if opcode is Opcode.CMP:
            w.emit(f"r = (a - b) & {MASK64}")
            w.emit("f.zero = r == 0")
            w.emit(f"f.sign = r >= {SIGN_BIT}")
            w.emit("f.carry = a < b")
            w.emit(f"f.overflow = (a >= {SIGN_BIT}) != (b >= {SIGN_BIT}) "
                   f"and (r >= {SIGN_BIT}) != (a >= {SIGN_BIT})")
        else:
            w.emit("r = a & b")
            w.emit("f.zero = r == 0")
            w.emit(f"f.sign = r >= {SIGN_BIT}")
            w.emit("f.carry = False")
            w.emit("f.overflow = False")

    # -- memory-operation emitters (each transcribes its fast thunk) ---------
    def _page_state(self, w: _BlockWriter, addr_var: str, limit: int) -> None:
        w.use("memory", "fullp", "pages")
        w.emit(f"off = {addr_var} & 4095")
        w.emit(f"pid = {addr_var} >> 12")
        w.emit(f"if off <= {limit}:")
        w.emit("    state = fullp.get(pid)")
        w.emit("    if state is None:")
        w.emit("        state = memory.page_fully_mapped(pid)")
        w.emit("else:")
        w.emit("    state = False")

    def _promotion_tail(self, w: _BlockWriter, di: int) -> None:
        # A pending promotion is only ever *applied* through
        # ``dift.or_register_tag``; with DIFT off the fast engine's
        # per-load check-and-clear is architecturally invisible (the flag
        # is reset at every ``_setup_process``), so skip it entirely.
        if not self.dift_on:
            return
        w.param("EM", "EM")
        w.emit("p = EM._pending_promotion")
        w.emit("if p:")
        w.use("rt")
        w.emit(f"    rt[{di}] |= p & {ALL_TAGS}")
        w.emit("    EM._pending_promotion = 0")

    def _emit_read_tags(self, w: _BlockWriter, dest: str, addr_var: str,
                        size: int) -> None:
        """DIFT tag read with the single-page case fully inlined.

        Mirrors ``_read_tag_range``'s single-page fast path (``addr_var``
        is masked, so non-negative): an absent shadow page reads as tag
        0, a present one as the OR of its bytes — folded from the
        little-endian integer by halving shifts.  Only page- or
        bit-45-crossing ranges take the helper.
        """
        w.use("rt", "pages")
        w.emit(f"sh = {addr_var} ^ {self.flip}")
        w.emit("so = sh & 4095")
        pad = ""
        if size > 1:
            w.param("RTR", "RTR")
            w.emit(f"if so <= {4096 - size} and "
                   f"{addr_var} >> 45 == ({addr_var} + {size - 1}) >> 45:")
            pad = "    "
        w.emit(f"{pad}spage = pages.get(sh >> 12)")
        w.emit(f"{pad}if spage is None:")
        w.emit(f"{pad}    {dest} = 0")
        if size == 1:
            w.emit(f"{pad}else:")
            w.emit(f"{pad}    {dest} = spage[so] & {ALL_TAGS}")
        else:
            w.param(f"U{size}", f"U{size}")
            w.emit(f"{pad}else:")
            w.emit(f"{pad}    t = U{size}(spage, so)[0]")
            w.emit(f"{pad}    if t:")
            shift = size * 4  # fold the high half down, then halve again
            while shift >= 8:
                w.emit(f"{pad}        t |= t >> {shift}")
                shift //= 2
            w.emit(f"{pad}        t &= {ALL_TAGS}")
            w.emit(f"{pad}    {dest} = t")
            w.emit("else:")
            w.emit(f"    {dest} = RTR(m, {addr_var}, {size}, {self.flip})")

    def _emit_write_tags(self, w: _BlockWriter, addr_var: str, size: int,
                         tag: str, maybe_negative: bool) -> None:
        """DIFT tag write with the single-page cases inlined.

        Writing the tag over an unallocated single shadow page is a
        no-op when the tag is 0 (absent pages read as 0, guest-side
        mapping checks are region-based, and no taint-undo entry would
        be written since old == new); a present page is written
        directly outside simulation, and inside simulation the write is
        skipped entirely when every byte already holds the tag (again
        old == new, so the helper would neither log nor change
        anything).  Page-crossing, negative and tag-changing simulation
        cases call the helper.
        """
        w.use("D", "pages")
        w.param("WTR", "WTR")
        w.emit(f"sh = {addr_var} ^ {self.flip}")
        w.emit("so = sh & 4095")
        guards = []
        if maybe_negative:
            guards.append(f"{addr_var} >= 0")
        if size > 1:
            guards.append(f"so <= {4096 - size}")
            guards.append(
                f"{addr_var} >> 45 == ({addr_var} + {size - 1}) >> 45")
        pad = ""
        if guards:
            w.emit(f"if {' and '.join(guards)}:")
            pad = "    "
        if size == 1:
            read = "spage[so]"
            tb = tag
            write = f"spage[so] = {tag}"
        else:
            # The tag byte replicated across the range, as one fixed-width
            # little-endian integer (0x01 repeated ``size`` times works as
            # the replicator since tags fit in a byte).
            rep = int.from_bytes(b"\x01" * size, "little")
            w.param(f"U{size}", f"U{size}")
            w.param(f"P{size}", f"P{size}")
            read = f"U{size}(spage, so)[0]"
            tb = "0" if tag == "0" else f"{tag} * {rep}"
            write = f"P{size}(spage, so, {tb})"
        w.emit(f"{pad}spage = pages.get(sh >> 12)")
        w.emit(f"{pad}if spage is None:")
        if tag == "0":
            w.emit(f"{pad}    pass")
        else:
            w.emit(f"{pad}    if {tag}:")
            if w.sim:
                w.emit(f"{pad}        WTR(D, m, {addr_var}, {size}, {tag}, "
                       f"{self.flip})")
            else:
                w.emit(f"{pad}        spage = bytearray(4096)")
                w.emit(f"{pad}        pages[sh >> 12] = spage")
                w.emit(f"{pad}        {write}")
        if w.sim:
            w.emit(f"{pad}elif {read} != {tb}:")
            w.emit(f"{pad}    WTR(D, m, {addr_var}, {size}, {tag}, "
                   f"{self.flip})")
        else:
            w.emit(f"{pad}else:")
            w.emit(f"{pad}    {write}")
        if guards:
            w.emit("else:")
            w.emit(f"    WTR(D, m, {addr_var}, {size}, {tag}, {self.flip})")

    def _emit_load(self, w: _BlockWriter, instr: Instruction) -> None:
        di = int(instr.operands[0].reg)
        size = instr.size
        w.use("regs")
        w.param(f"U{size}", f"U{size}")
        w.mark()
        w.emit(f"a = {_ea_expr(instr.operands[1])}")
        if self.dift_on:
            self._emit_read_tags(w, f"rt[{di}]", "a", size)
        self._page_state(w, "a", 4096 - size)
        w.emit("if state:")
        w.emit("    page = pages.get(pid)")
        w.emit(f"    value = 0 if page is None else "
               f"U{size}(page, off)[0]")
        w.emit("else:")
        w.emit(f"    value = memory.read_int(a, {size})")
        w.journal_reg(di)
        w.emit(f"regs[{di}] = value")
        self._promotion_tail(w, di)

    def _emit_store(self, w: _BlockWriter, instr: Instruction) -> None:
        size = instr.size
        mask = (1 << (8 * size)) - 1
        src = instr.operands[1]
        w.use("regs")
        w.mark()
        w.emit(f"a = {_ea_expr(instr.operands[0])}")
        if self.dift_on:
            if isinstance(src, Reg):
                w.use("rt")
                w.emit(f"t = rt[{int(src.reg)}]")
                tag = "t"
            else:
                tag = "0"
            self._emit_write_tags(w, "a", size, tag, False)
        self._page_state(w, "a", 4096 - size)
        w.emit("if state:")
        w.emit("    page = pages.get(pid)")
        w.emit("    if page is None:")
        w.emit("        page = bytearray(4096)")
        w.emit("        pages[pid] = page")
        if w.sim:
            w.use("jn")
            w.emit(f"    jn.entries.append((True, a, "
                   f"bytes(page[off:off + {size}])))")
        w.param(f"P{size}", f"P{size}")
        if isinstance(src, Reg):
            si = int(src.reg)
            w.emit(f"    P{size}(page, off, regs[{si}] & {mask})")
            w.emit("else:")
            w.emit(f"    memory.write_int(a, regs[{si}], {size})")
        else:
            value = to_unsigned(src.value)
            w.emit(f"    P{size}(page, off, {value & mask})")
            w.emit("else:")
            w.emit(f"    memory.write_int(a, {value}, {size})")

    def _emit_push(self, w: _BlockWriter, instr: Instruction) -> None:
        src = instr.operands[0]
        w.use("regs")
        w.mark()
        if self.dift_on:
            # NB: unmasked sp - 8, exactly like _dift_fn's PUSH thunk.
            w.emit(f"wa = regs[{SP_IDX}] - 8")
            if isinstance(src, Reg):
                w.use("rt")
                w.emit(f"t = rt[{int(src.reg)}]")
                tag = "t"
            else:
                tag = "0"
            self._emit_write_tags(w, "wa", 8, tag, True)
        if isinstance(src, Reg):
            w.emit(f"value = regs[{int(src.reg)}]")
            written = "value"
        else:
            written = str(to_unsigned(src.value))
        w.param("P8", "P8")
        w.emit(f"new_sp = (regs[{SP_IDX}] - 8) & {MASK64}")
        self._page_state(w, "new_sp", 4088)
        w.emit("if state:")
        w.emit("    page = pages.get(pid)")
        w.emit("    if page is None:")
        w.emit("        page = bytearray(4096)")
        w.emit("        pages[pid] = page")
        if w.sim:
            w.use("jn")
            w.emit("    jn.entries.append((True, new_sp, "
                   "bytes(page[off:off + 8])))")
        w.emit(f"    P8(page, off, {written})")
        w.emit("else:")
        w.emit(f"    memory.write_int(new_sp, {written}, 8)")
        if w.sim:
            w.emit(f"jn.entries.append((False, {SP_IDX}, regs[{SP_IDX}]))")
        w.emit(f"regs[{SP_IDX}] = new_sp")

    def _emit_pop(self, w: _BlockWriter, instr: Instruction) -> None:
        di = int(instr.operands[0].reg)
        w.use("regs")
        w.param("U8", "U8")
        w.mark()
        w.emit(f"sp = regs[{SP_IDX}]")
        if self.dift_on:
            self._emit_read_tags(w, f"rt[{di}]", "sp", 8)
        self._page_state(w, "sp", 4088)
        w.emit("if state:")
        w.emit("    page = pages.get(pid)")
        w.emit("    value = 0 if page is None else U8(page, off)[0]")
        w.emit("else:")
        w.emit("    value = memory.read_int(sp, 8)")
        w.journal_reg(di)
        w.emit(f"regs[{di}] = value")
        w.emit(f"new_sp = (regs[{SP_IDX}] + 8) & {MASK64}")
        if w.sim:
            w.use("jn")
            w.emit(f"jn.entries.append((False, {SP_IDX}, regs[{SP_IDX}]))")
        w.emit(f"regs[{SP_IDX}] = new_sp")
        self._promotion_tail(w, di)

    def _emit_alu(self, w: _BlockWriter, addr: int,
                  instr: Instruction) -> None:
        opcode = instr.opcode
        ops = instr.operands
        di = int(ops[0].reg)
        src = ops[1]
        live_flags = addr not in self._dead_flags
        w.use("regs")
        if live_flags:
            w.use("f")
        if self.dift_on:
            w.use("D")
            zeroing = (opcode in (Opcode.XOR, Opcode.SUB)
                       and isinstance(src, Reg) and src.reg == ops[0].reg)
            if zeroing:
                w.use("rt")
                w.emit(f"rt[{di}] = 0")
                w.emit("D.flags_tag = 0")
            elif isinstance(src, Reg):
                w.use("rt")
                w.emit(f"t = rt[{di}] | rt[{int(src.reg)}]")
                w.emit(f"rt[{di}] = t")
                w.emit("D.flags_tag = t")
            else:
                w.use("rt")
                w.emit(f"D.flags_tag = rt[{di}]")
        w.emit(f"a = regs[{di}]")
        b = (f"regs[{int(src.reg)}]" if isinstance(src, Reg)
             else str(to_unsigned(src.value)))
        w.emit(f"b = {b}")
        S, M, T = SIGN_BIT, MASK64, TWO64
        if opcode is Opcode.ADD:
            w.emit(f"r = (a + b) & {M}")
            if live_flags:
                w.emit("f.zero = r == 0")
                w.emit(f"f.sign = r >= {S}")
                w.emit(f"f.carry = a + b > {M}")
                w.emit(f"f.overflow = (a >= {S}) == (b >= {S}) "
                       f"and (r >= {S}) != (a >= {S})")
        elif opcode is Opcode.SUB:
            w.emit(f"r = (a - b) & {M}")
            if live_flags:
                w.emit("f.zero = r == 0")
                w.emit(f"f.sign = r >= {S}")
                w.emit("f.carry = a < b")
                w.emit(f"f.overflow = (a >= {S}) != (b >= {S}) "
                       f"and (r >= {S}) != (a >= {S})")
        else:
            if opcode is Opcode.AND:
                w.emit("r = a & b")
            elif opcode is Opcode.OR:
                w.emit("r = a | b")
            elif opcode is Opcode.XOR:
                w.emit("r = a ^ b")
            elif opcode is Opcode.SHL:
                w.emit(f"r = (a << (b & 63)) & {M}")
            elif opcode is Opcode.SHR:
                w.emit("r = a >> (b & 63)")
            elif opcode is Opcode.SAR:
                w.emit(f"sa = a - {T} if a >= {S} else a")
                w.emit(f"r = (sa >> (b & 63)) & {M}")
            else:  # MUL
                w.emit(f"sa = a - {T} if a >= {S} else a")
                w.emit(f"sb = b - {T} if b >= {S} else b")
                w.emit(f"r = (sa * sb) & {M}")
            if live_flags:
                w.emit("f.zero = r == 0")
                w.emit(f"f.sign = r >= {S}")
                w.emit("f.carry = False")
                w.emit("f.overflow = False")
        if w.sim:
            w.use("jn")
            w.emit(f"jn.entries.append((False, {di}, a))")
        w.emit(f"regs[{di}] = r")


class JitEmulator(FastEmulator):
    """Block-compiled engine: generated source over the fast-engine trace."""

    engine_name = "jit"

    def __init__(self, *args, **kwargs) -> None:
        #: addr -> (block fn, fuel need), one map per simulation state.
        self._blocks_sim: Dict[int, Tuple] = {}
        self._blocks_nosim: Dict[int, Tuple] = {}
        #: addr -> covered instruction addresses (profiler attribution).
        self._block_spans_sim: Dict[int, Tuple[int, ...]] = {}
        self._block_spans_nosim: Dict[int, Tuple[int, ...]] = {}
        self._jit_cache = None
        self._jit_cache_event = "none"
        self._jit_source: Optional[str] = None
        super().__init__(*args, **kwargs)
        self._compile_blocks()

    # -- compilation ---------------------------------------------------------
    def _options_digest(self) -> str:
        """Digest of every knob the generated source depends on.

        Part of the persistent-cache key: two emulators with equal
        binary hash and equal digest are guaranteed to generate
        byte-identical module source.
        """
        payload = {
            "codegen": _CODEGEN_VERSION,
            "max_block": _MAX_BLOCK,
            "costs": {op.name: self.cost_model.instruction_cost(op)
                      for op in Opcode},
            "max_steps": self.max_steps,
            "flip": self.layout.tag_flip_bit,
            "pht": self._pht_enabled,
            "models": sorted(model.name for model in self.spec_models),
            "model_opcodes": sorted(op.name for op in self._model_opcodes),
            "has_shadows": self.has_shadows,
            "dift": self.policy is not None and self.policy.needs_dift,
            "controller": self.controller is not None,
            # presence of these is constant-folded into the blocks
            "policy": self.policy is not None,
            "coverage": self.coverage is not None,
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _compile_blocks(self) -> None:
        cache = shared_cache()
        self._jit_cache = cache
        binary_hash = hashlib.sha256(dumps_binary(self.binary)).hexdigest()
        digest = self._options_digest()
        self._jit_key = (binary_hash, digest)
        code = cache.load(binary_hash, digest)
        if code is None:
            source = _BlockCompiler(self).compile_source()
            self._jit_source = source
            code = compile(source, "<repro-jit>", "exec")
            cache.store(binary_hash, digest, code)
            self._jit_cache_event = "miss"
        else:
            self._jit_cache_event = "hit"
        self._block_code = code
        self._install_blocks()

    def _install_blocks(self) -> None:
        """Bind the compiled module to this instance's live objects.

        The generated source is instance-independent (every constant is
        a literal); instance objects enter through the exec namespace,
        which each block function captures via keyword-parameter
        defaults evaluated here.
        """
        controller = self.controller
        namespace = {
            "EM": self,
            "CTRL": controller,
            "CYC": self._cycles_cell,
            "ARC": self._arch_cell,
            "STP": self._steps_cell,
            "TRACE": self._trace,
            "INSTRS": self.instructions,
            "RTR": _read_tag_range,
            "WTR": _write_tag_range,
            "FB": _FROM_BYTES,
            "U1": _UNPACKERS[1], "U2": _UNPACKERS[2],
            "U4": _UNPACKERS[4], "U8": _UNPACKERS[8],
            "P1": _PACKERS[1], "P2": _PACKERS[2],
            "P4": _PACKERS[4], "P8": _PACKERS[8],
            "EXTERNALS": self.externals._externals,
            "BLOCKS": {},
            "NBLOCKS": {},
            "SSPANS": {},
            "NSPANS": {},
        }
        exec(self._block_code, namespace)
        self._blocks_sim = namespace["BLOCKS"]
        self._blocks_nosim = namespace["NBLOCKS"]
        self._block_spans_sim = namespace["SSPANS"]
        self._block_spans_nosim = namespace["NSPANS"]
        self._jit_inline_instructions = sum(
            len(span) for span in self._block_spans_nosim.values())

    def rebind_controller(self, controller) -> None:
        """Swap controllers and regenerate everything bound to the old one."""
        super().rebind_controller(controller)
        # Controller presence is part of the options digest; going
        # through _compile_blocks re-keys the cache lookup (memo-hit
        # when only the instance changed) and rebinds the namespace.
        self._compile_blocks()

    # -- main loop -----------------------------------------------------------
    def _execute(self) -> ExecutionResult:
        machine = self.machine
        controller = self.controller
        cost_model = self.cost_model
        trace_get = self._trace.get
        sim_get = self._blocks_sim.get
        nosim_get = self._blocks_nosim.get
        # live-checkpoint list: truthy exactly while simulating.  The
        # controller clears it in place (never reassigns), so the hoisted
        # reference stays valid for the whole run.
        cps = controller.checkpoints if controller is not None else ()
        max_steps = self.max_steps
        cyc = self._cycles_cell
        arc = self._arch_cell
        stp = self._steps_cell
        cyc[0] = 0
        arc[0] = 0
        stp[0] = 0

        result = ExecutionResult(status="exit")

        while True:
            steps = stp[0]
            if steps >= max_steps:
                result.status = "fuel"
                break
            pc = machine.pc
            if pc == EXIT_SENTINEL:
                result.exit_status = to_signed(machine.registers[RET_IDX])
                break
            entry = (sim_get if cps else nosim_get)(pc)
            if entry is not None and steps + entry[1] <= max_steps:
                # Whole block fits in the remaining fuel: one call runs
                # it (the block advances the counters itself).
                fn = entry[0]
            else:
                fn = trace_get(pc)
                if fn is None:
                    if (
                        self._dynamic_models
                        and controller is not None
                        and controller.in_simulation
                    ):
                        undone = controller.rollback(machine, self.dift,
                                                     reason="exception")
                        cyc[0] += cost_model.rollback_cost(undone)
                        if self.coverage is not None:
                            self.coverage.flush_speculative()
                        self._after_exception_rollback()
                        continue
                    result.status = "crash"
                    result.crash_reason = f"jump to non-code address {pc:#x}"
                    break
                stp[0] = steps + 1

            try:
                new_pc = fn(machine)
            except (MemoryFault, ArithmeticFault) as exc:
                if controller is not None and controller.in_simulation:
                    undone = controller.rollback(machine, self.dift,
                                                 reason="exception")
                    cyc[0] += cost_model.rollback_cost(undone)
                    if self.coverage is not None:
                        self.coverage.flush_speculative()
                    self._after_exception_rollback()
                    continue
                result.status = "crash"
                result.crash_reason = str(exc)
                break
            except ProgramExit as exc:
                result.exit_status = exc.status
                break
            except ProgramCrash as exc:
                if controller is not None and controller.in_simulation:
                    undone = controller.rollback(machine, self.dift,
                                                 reason="exception")
                    cyc[0] += cost_model.rollback_cost(undone)
                    continue
                result.status = "crash"
                result.crash_reason = str(exc)
                break

            if new_pc is None:
                # Handler already set machine.pc (rollbacks, redirects).
                continue
            machine.pc = new_pc

        result.steps = stp[0]
        result.cycles = cyc[0]
        result.arch_instructions = arc[0]
        return result


@register_engine("jit")
def _jit_engine_plugin():
    """Block-compiled execution paired with copy-on-write journal rollback."""
    from repro.runtime.speculation import JournalingSpeculationController

    return JitEmulator, JournalingSpeculationController
