"""The fast emulator engine: decoded-trace dispatch over specialized thunks.

:class:`FastEmulator` executes the same TELF binaries as the legacy
:class:`~repro.runtime.emulator.Emulator`, bit-for-bit — same
:class:`~repro.runtime.emulator.ExecutionResult`, same gadget reports, same
coverage maps and same cycle counts (the differential test harness in
``tests/runtime/test_differential.py`` enforces this) — but restructures
the two per-instruction hot paths:

**Decoded-trace dispatch.**  At construction every instruction is compiled
into a specialized *thunk*: a closure with the operand decoding already
performed.  Register operands become plain list indices, immediates become
pre-wrapped ints, branch targets and fall-through addresses become
pre-computed program counters, the cycle cost becomes a constant, and the
per-instruction DIFT tag propagation of
:meth:`repro.sanitizers.dift.BinaryDift.propagate` becomes a specialized
tag thunk.  The main loop is then one dictionary lookup and one call per
step — no opcode dispatch table, no cost-model lookup, no pseudo-op set
membership test and no ``isinstance`` operand inspection.  Where legal, a
``cmp`` directly followed by the ``jcc`` that consumes its flags is fused
into a single thunk with both branch targets pre-resolved (fall-throughs
*into* the ``jcc`` from elsewhere still hit its standalone thunk).

**Copy-on-write rollback.**  The fast engine pairs with
:class:`~repro.runtime.speculation.JournalingSpeculationController`:
entering speculation records only a journal mark, every register/memory
write while ≥ 1 checkpoint is live appends an undo entry to the machine's
:class:`~repro.runtime.machine.StateJournal`, and rollback replays the
journal segment in reverse instead of restoring full snapshots.

Rare or intricate operations (``ecall``, indirect calls/jumps, taint
sources, in-simulation policy checks) fall back to the legacy handlers
inherited from :class:`Emulator`, so their semantics cannot drift.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.isa.instructions import ConditionCode, Instruction, Opcode
from repro.isa.operands import Imm, Mem, Reg
from repro.runtime.emulator import (
    EXIT_SENTINEL,
    Emulator,
    ExecutionResult,
    _PSEUDO_SET,
)
from repro.runtime.errors import (
    ArithmeticFault,
    MemoryFault,
    ProgramCrash,
    ProgramExit,
)
from repro.plugins import ENGINE_REGISTRY, register_engine
from repro.runtime.machine import MASK64, to_signed, to_unsigned
from repro.sanitizers.dift import ALL_TAGS

SIGN_BIT = 1 << 63
TWO64 = 1 << 64

SP_IDX = 14
RET_IDX = 0

_FROM_BYTES = int.from_bytes

#: Condition-code evaluators over a Flags object (mirrors Flags.evaluate).
_CC_FUNCS: Dict[ConditionCode, Callable] = {
    ConditionCode.EQ: lambda f: f.zero,
    ConditionCode.NE: lambda f: not f.zero,
    ConditionCode.LT: lambda f: f.sign != f.overflow,
    ConditionCode.GE: lambda f: f.sign == f.overflow,
    ConditionCode.LE: lambda f: f.zero or f.sign != f.overflow,
    ConditionCode.GT: lambda f: not f.zero and f.sign == f.overflow,
    ConditionCode.B: lambda f: f.carry,
    ConditionCode.AE: lambda f: not f.carry,
    ConditionCode.BE: lambda f: f.carry or f.zero,
    ConditionCode.A: lambda f: not f.carry and not f.zero,
}

_ALU_INLINE = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SAR,
    }
)

_FREE_PSEUDOS = frozenset(
    {
        Opcode.NOP,
        Opcode.MEMLOG,
        Opcode.DIFT_PROP,
        Opcode.DIFT_BATCH,
        Opcode.MARKER_NOP,
        Opcode.GUARD_CHECK,
    }
)


def _ea_fn(mem: Mem):
    """Specialized effective-address evaluator ``regs -> addr``.

    Returns ``None`` when the displacement is still symbolic (the legacy
    handler raises the descriptive error for those).
    """
    disp = mem.disp
    if not isinstance(disp, int):
        return None
    base = int(mem.base) if mem.base is not None else None
    index = int(mem.index) if mem.index is not None else None
    scale = mem.scale
    if base is not None and index is None:
        if disp == 0:
            return lambda regs, b=base: regs[b]
        return lambda regs, b=base, d=disp: (regs[b] + d) & MASK64
    if base is not None:
        return lambda regs, b=base, i=index, s=scale, d=disp: (
            (regs[b] + regs[i] * s + d) & MASK64
        )
    if index is not None:
        return lambda regs, i=index, s=scale, d=disp: (regs[i] * s + d) & MASK64
    return lambda regs, c=disp & MASK64: c


def _val_fn(operand):
    """Specialized value reader ``regs -> value`` for a Reg/Imm operand."""
    if isinstance(operand, Reg):
        return lambda regs, i=int(operand.reg): regs[i]
    if isinstance(operand, Imm):
        return lambda regs, v=to_unsigned(operand.value): v
    return None


def _imm_target(instr: Instruction) -> Optional[int]:
    """Pre-resolved branch target of a direct branch, if any."""
    if instr.operands and isinstance(instr.operands[0], Imm):
        return to_unsigned(instr.operands[0].value)
    return None


# ---------------------------------------------------------------------------
# Specialized DIFT propagation (mirrors BinaryDift.propagate exactly)
# ---------------------------------------------------------------------------

def _dift_fn(instr: Instruction, flip: int):
    """A specialized tag-propagation thunk ``(dift, machine) -> None``.

    Returns ``None`` for instructions that move no data (control flow,
    system ops, pseudo-ops), for which :meth:`BinaryDift.propagate` is a
    no-op.  Any operand shape the specializations do not cover falls back
    to the generic ``propagate`` call, so behaviour cannot diverge.
    """
    opcode = instr.opcode
    ops = instr.operands

    def generic(d, m, i=instr):
        try:
            d.propagate(i, m)
        except MemoryFault:
            pass

    if opcode is Opcode.MOV:
        if len(ops) == 2 and isinstance(ops[0], Reg):
            di = int(ops[0].reg)
            if isinstance(ops[1], Reg):
                si = int(ops[1].reg)

                def f(d, m, di=di, si=si):
                    rt = d.register_tags
                    rt[di] = rt[si]
                return f
            if isinstance(ops[1], Imm):
                def f(d, m, di=di):
                    d.register_tags[di] = 0
                return f
        return generic

    if opcode is Opcode.LOAD:
        if len(ops) == 2 and isinstance(ops[0], Reg) and isinstance(ops[1], Mem):
            ea = _ea_fn(ops[1])
            if ea is not None:
                di = int(ops[0].reg)
                size = instr.size

                def f(d, m, di=di, ea=ea, size=size, flip=flip):
                    addr = ea(m.registers)
                    d.register_tags[di] = _read_tag_range(m, addr, size, flip)
                return f
        return generic

    if opcode is Opcode.STORE:
        if len(ops) == 2 and isinstance(ops[0], Mem):
            ea = _ea_fn(ops[0])
            val = _val_fn(ops[1])
            if ea is not None and val is not None:
                size = instr.size
                src_is_reg = isinstance(ops[1], Reg)
                si = int(ops[1].reg) if src_is_reg else None

                def f(d, m, ea=ea, si=si, size=size, flip=flip,
                      src_is_reg=src_is_reg):
                    addr = ea(m.registers)
                    tag = d.register_tags[si] if src_is_reg else 0
                    _write_tag_range(d, m, addr, size, tag, flip)
                return f
        return generic

    if opcode is Opcode.LEA:
        if len(ops) == 2 and isinstance(ops[0], Reg) and isinstance(ops[1], Mem):
            di = int(ops[0].reg)
            regs_used = tuple(int(r) for r in ops[1].registers())

            def f(d, m, di=di, regs_used=regs_used):
                rt = d.register_tags
                tag = 0
                for r in regs_used:
                    tag |= rt[r]
                rt[di] = tag
            return f
        return generic

    if opcode is Opcode.PUSH:
        if len(ops) == 1:
            val = _val_fn(ops[0])
            if val is not None:
                src_is_reg = isinstance(ops[0], Reg)
                si = int(ops[0].reg) if src_is_reg else None

                def f(d, m, si=si, flip=flip, src_is_reg=src_is_reg):
                    addr = m.registers[SP_IDX] - 8
                    tag = d.register_tags[si] if src_is_reg else 0
                    _write_tag_range(d, m, addr, 8, tag, flip)
                return f
        return generic

    if opcode is Opcode.POP:
        if len(ops) == 1 and isinstance(ops[0], Reg):
            di = int(ops[0].reg)

            def f(d, m, di=di, flip=flip):
                addr = m.registers[SP_IDX]
                d.register_tags[di] = _read_tag_range(m, addr, 8, flip)
            return f
        return generic

    if opcode in (Opcode.CMP, Opcode.TEST):
        if len(ops) == 2:
            kinds = [isinstance(op, (Reg, Imm)) for op in ops]
            if all(kinds):
                ai = int(ops[0].reg) if isinstance(ops[0], Reg) else None
                bi = int(ops[1].reg) if isinstance(ops[1], Reg) else None

                def f(d, m, ai=ai, bi=bi):
                    rt = d.register_tags
                    tag = 0
                    if ai is not None:
                        tag = rt[ai]
                    if bi is not None:
                        tag |= rt[bi]
                    d.flags_tag = tag
                return f
        return generic

    if opcode in _DIFT_TWO_OPERAND_ALU:
        dst = ops[0] if ops else None
        src = ops[1] if len(ops) > 1 else None
        if isinstance(dst, Reg) and (src is None or isinstance(src, (Reg, Imm))):
            di = int(dst.reg)
            zeroing = (
                opcode in (Opcode.XOR, Opcode.SUB)
                and isinstance(src, Reg)
                and src.reg == dst.reg
            )
            if zeroing:
                def f(d, m, di=di):
                    d.register_tags[di] = 0
                    d.flags_tag = 0
                return f
            si = int(src.reg) if isinstance(src, Reg) else None

            def f(d, m, di=di, si=si):
                rt = d.register_tags
                tag = rt[di]
                if si is not None:
                    tag |= rt[si]
                rt[di] = tag
                d.flags_tag = tag
            return f
        return generic

    if opcode in (Opcode.NOT, Opcode.NEG):
        if ops and isinstance(ops[0], Reg):
            di = int(ops[0].reg)

            def f(d, m, di=di):
                tag = d.register_tags[di]
                d.register_tags[di] = tag
                d.flags_tag = tag
            return f
        return generic

    # Control flow, system and pseudo instructions do not move data.
    return None


_DIFT_TWO_OPERAND_ALU = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SAR,
    }
)


def _read_tag_range(m, addr: int, size: int, flip: int) -> int:
    """Inline equivalent of ``BinaryDift.get_mem_tag``.

    Fast path: when the shadow range lives in one page (no bit-45 crossing,
    no page crossing), one dict lookup covers all bytes.
    """
    pages = m.memory._pages
    sh = addr ^ flip
    off = sh & 4095
    if off + size <= 4096 and addr >= 0 and (addr >> 45) == ((addr + size - 1) >> 45):
        page = pages.get(sh >> 12)
        if page is None:
            return 0
        tag = 0
        for byte in page[off:off + size]:
            tag |= byte
        return tag & ALL_TAGS
    tag = 0
    for i in range(size):
        sh = (addr + i) ^ flip
        page = pages.get(sh >> 12)
        if page is not None:
            tag |= page[sh & 4095]
    return tag & ALL_TAGS


def _write_tag_range(d, m, addr: int, size: int, tag: int, flip: int) -> None:
    """Inline equivalent of ``BinaryDift.set_mem_tag`` (with taint logging)."""
    memory = m.memory
    pages = memory._pages
    controller = d.controller
    in_sim = controller is not None and controller.checkpoints
    tag &= 0xFF
    for off in range(size):
        sh = (addr + off) ^ flip
        page_id = sh >> 12
        page_off = sh & 4095
        page = pages.get(page_id)
        if page is None:
            page = bytearray(4096)
            pages[page_id] = page
        if in_sim:
            old = page[page_off]
            if old != tag:
                controller.log_taint_write(sh, old)
        page[page_off] = tag


def engine_names():
    """Every name accepted by ``resolve_engine`` and the ``engine=`` knobs.

    Engines live in the :data:`repro.plugins.ENGINE_REGISTRY` plugin
    registry; this module registers ``fast`` and ``legacy`` at the
    bottom (and imports :mod:`repro.runtime.jit`, which registers the
    block-compiled ``jit`` tier); third-party engines join via
    ``@repro.api.register_engine``.
    """
    return tuple(ENGINE_REGISTRY.names())


def resolve_engine(name: str):
    """Map an engine name to its ``(emulator class, controller class)`` pair.

    ``"fast"`` pairs the decoded-trace :class:`FastEmulator` with the
    copy-on-write :class:`~repro.runtime.speculation.JournalingSpeculationController`;
    ``"legacy"`` pairs the generic :class:`~repro.runtime.emulator.Emulator`
    with the snapshot
    :class:`~repro.runtime.speculation.SpeculationController`;
    ``"jit"`` pairs the block-compiled
    :class:`~repro.runtime.jit.JitEmulator` with the journaling
    controller.  Additional engines come from the plugin registry
    (``@register_engine``).
    """
    return ENGINE_REGISTRY.get(name)()


class FastEmulator(Emulator):
    """Emulator with decoded-trace dispatch and journal-backed rollback."""

    engine_name = "fast"

    def __init__(self, *args, **kwargs) -> None:
        #: per-execution accounting cells shared between the main loop and
        #: the decoded thunks (created before the trace is built).
        self._cycles_cell = [0]
        self._arch_cell = [0]
        self._steps_cell = [0]
        #: addresses compiled to legacy-fallback thunks (telemetry reads
        #: the count; the ROADMAP JIT tier will read the addresses).
        self._fallback_addresses = set()
        super().__init__(*args, **kwargs)
        if self.controller is not None and not getattr(
            self.controller, "uses_machine_journal", False
        ):
            # The fast engine undo-logs speculative stores through the
            # machine journal only; a snapshot controller would silently
            # leave speculative memory writes committed after rollback.
            raise ValueError(
                "FastEmulator requires a journaling speculation controller "
                "(JournalingSpeculationController); use resolve_engine() to "
                "get a matched pair, or the legacy Emulator for snapshot "
                "controllers"
            )
        self._trace = self._build_trace()

    def rebind_controller(self, controller) -> None:
        """Swap the speculation controller and rebuild the decoded trace.

        The thunks close over the controller at build time, so unlike the
        legacy engine a plain attribute assignment is not enough; the
        differential tests use this to re-run one emulator under several
        nesting policies without paying binary decode again.
        """
        if controller is not None and not getattr(
            controller, "uses_machine_journal", False
        ):
            raise ValueError(
                "FastEmulator requires a journaling speculation controller "
                "(JournalingSpeculationController); use resolve_engine() to "
                "get a matched pair, or the legacy Emulator for snapshot "
                "controllers"
            )
        super().rebind_controller(controller)
        self._fallback_addresses = set()
        self._trace = self._build_trace()

    # ------------------------------------------------------------------ helpers
    def _guest_write(self, addr: int, data: bytes) -> None:
        """Guest memory write; undo logging happens in the machine journal.

        The fast engine pairs with a journaling controller, so the
        controller-side memory log of the legacy engine is never needed.
        """
        self.machine.memory.write_bytes(addr, data)

    # ------------------------------------------------------------------ trace build
    def _build_trace(self) -> Dict[int, Callable]:
        trace: Dict[int, Callable] = {}
        instructions = self.instructions
        next_address = self.next_address
        for addr, instr in instructions.items():
            fused = None
            if instr.opcode is Opcode.CMP:
                jcc_addr = next_address[addr]
                follower = instructions.get(jcc_addr)
                if (
                    follower is not None
                    and follower.opcode is Opcode.JCC
                    and _imm_target(follower) is not None
                ):
                    fused = self._make_fused_cmp_jcc(instr, follower)
            trace[addr] = fused if fused is not None else self._make_thunk(instr)
        return trace

    # -- thunk construction ----------------------------------------------------
    def _make_thunk(self, instr: Instruction) -> Callable:
        opcode = instr.opcode
        if self._model_opcodes and opcode in self._model_opcodes and any(
            model.speculation_sources(instr) for model in self._dynamic_models
        ):
            # Speculation-model source site (indirect branch, ret, store,
            # load, ... of an active dynamic model): run the shared legacy
            # handler, where the model hooks live, so both engines execute
            # model semantics through one implementation.
            return self._make_fallback(instr)
        em = self
        controller = self.controller
        cps = controller.checkpoints if controller is not None else None
        cyc = self._cycles_cell
        arc = self._arch_cell
        cost = self.cost_model.instruction_cost(opcode)
        nxt = self.next_address[instr.address]
        flip = self.layout.tag_flip_bit
        is_arch = opcode not in _PSEUDO_SET
        dift_step = _dift_fn(instr, flip) if is_arch else None

        # ---- cost-only pseudo-ops --------------------------------------
        if opcode in _FREE_PSEUDOS:
            def thunk(m, cyc=cyc, cost=cost, nxt=nxt):
                cyc[0] += cost
                return nxt
            return thunk

        # ---- coverage pseudo-ops ---------------------------------------
        if opcode in (Opcode.COV_TRACE, Opcode.COV_SPEC):
            guard = instr.operands[0] if instr.operands else None
            gid = guard.value if isinstance(guard, Imm) else 0
            if opcode is Opcode.COV_TRACE:
                def thunk(m, em=em, cyc=cyc, cost=cost, nxt=nxt, gid=gid):
                    cyc[0] += cost
                    cov = em.coverage
                    if cov is not None:
                        cov.trace_normal(gid)
                    return nxt
            else:
                def thunk(m, em=em, cyc=cyc, cost=cost, nxt=nxt, gid=gid):
                    cyc[0] += cost
                    cov = em.coverage
                    if cov is not None:
                        cov.note_speculative(gid)
                    return nxt
            return thunk

        # ---- speculation-control pseudo-ops ----------------------------
        if opcode is Opcode.CHECKPOINT:
            tgt = _imm_target(instr)
            if tgt is None:
                return self._make_fallback(instr)
            if not self._pht_enabled:
                # PHT variant switched off: the checkpoint is inert.
                def thunk(m, cyc=cyc, cost=cost, nxt=nxt):
                    cyc[0] += cost
                    return nxt
                return thunk

            def thunk(m, em=em, controller=controller, cyc=cyc, cost=cost,
                      nxt=nxt, tgt=tgt):
                cyc[0] += cost
                if controller is None:
                    return nxt
                if controller.maybe_enter(m, branch_address=nxt, resume_pc=nxt,
                                          dift=em.dift):
                    return tgt
                return nxt
            return thunk

        if opcode is Opcode.TRAMP_JCC:
            tgt = _imm_target(instr)
            if tgt is None:
                return self._make_fallback(instr)
            cc_fn = _CC_FUNCS[instr.cc]

            def thunk(m, cyc=cyc, cost=cost, nxt=nxt, tgt=tgt, cc_fn=cc_fn):
                cyc[0] += cost
                return tgt if cc_fn(m.flags) else nxt
            return thunk

        if opcode is Opcode.SPEC_REDIRECT:
            tgt = _imm_target(instr)
            if tgt is None:
                return self._make_fallback(instr)

            def thunk(m, cps=cps, cyc=cyc, cost=cost, nxt=nxt, tgt=tgt):
                cyc[0] += cost
                return tgt if cps else nxt
            return thunk

        if opcode in (Opcode.RESTORE_COND, Opcode.RESTORE_ALWAYS):
            conditional = opcode is Opcode.RESTORE_COND
            reason = "budget" if conditional else "forced"

            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      cost=cost, nxt=nxt, conditional=conditional,
                      reason=reason):
                cyc[0] += cost
                if not cps:
                    return nxt
                if conditional and (
                    controller.spec_instruction_count < controller.rob_budget
                ):
                    return nxt
                if em.coverage is not None:
                    em.coverage.flush_speculative()
                undone = controller.rollback(m, em.dift, reason=reason)
                cyc[0] += em.cost_model.rollback_cost(undone)
                return m.pc
            return thunk

        if opcode in (Opcode.ASAN_CHECK, Opcode.POLICY_LOAD, Opcode.POLICY_STORE):
            mem = instr.operands[0] if instr.operands else None
            ea = _ea_fn(mem) if isinstance(mem, Mem) else None
            if ea is None:
                return self._make_fallback(instr)
            is_write = opcode is Opcode.POLICY_STORE
            if len(instr.operands) > 1 and isinstance(instr.operands[1], Imm):
                is_write = bool(instr.operands[1].value)
            size = instr.size

            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      cost=cost, nxt=nxt, instr=instr, mem=mem, ea=ea,
                      size=size, is_write=is_write):
                cyc[0] += cost
                if cps:
                    policy = em.policy
                    if policy is not None:
                        promoted = policy.on_speculative_access(
                            instr, mem, ea(m.registers), size, is_write, m,
                            controller,
                        )
                        if promoted:
                            em._pending_promotion |= promoted
                return nxt
            return thunk

        if opcode is Opcode.POLICY_BRANCH:
            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      cost=cost, nxt=nxt, instr=instr):
                cyc[0] += cost
                if cps and em.policy is not None:
                    em.policy.on_speculative_branch(instr, m, controller)
                return nxt
            return thunk

        if opcode is Opcode.TAINT_SOURCE:
            return self._make_fallback(instr)

        # ---- architectural operations ----------------------------------
        # Every thunk below starts with the shared architectural prologue:
        # cycle cost, arch-instruction count, in-simulation instruction
        # accounting and (when a DIFT sanitizer is attached) specialized
        # tag propagation — exactly the legacy main-loop preamble.
        if opcode is Opcode.MOV:
            if len(instr.operands) == 2 and isinstance(instr.operands[0], Reg):
                di = int(instr.operands[0].reg)
                src = instr.operands[1]
                if isinstance(src, Reg):
                    si = int(src.reg)

                    def thunk(m, em=em, controller=controller, cps=cps,
                              cyc=cyc, arc=arc, cost=cost, nxt=nxt, di=di,
                              si=si, dift_step=dift_step):
                        cyc[0] += cost
                        arc[0] += 1
                        if cps:
                            controller.count_instruction()
                        d = em.dift
                        if d is not None:
                            dift_step(d, m)
                        regs = m.registers
                        j = m.journal
                        if j is not None:
                            j.entries.append((False, di, regs[di]))
                        regs[di] = regs[si]
                        return nxt
                    return thunk
                if isinstance(src, Imm):
                    value = to_unsigned(src.value)

                    def thunk(m, em=em, controller=controller, cps=cps,
                              cyc=cyc, arc=arc, cost=cost, nxt=nxt, di=di,
                              value=value, dift_step=dift_step):
                        cyc[0] += cost
                        arc[0] += 1
                        if cps:
                            controller.count_instruction()
                        d = em.dift
                        if d is not None:
                            dift_step(d, m)
                        regs = m.registers
                        j = m.journal
                        if j is not None:
                            j.entries.append((False, di, regs[di]))
                        regs[di] = value
                        return nxt
                    return thunk
            return self._make_fallback(instr)

        if opcode is Opcode.LOAD:
            if (
                len(instr.operands) == 2
                and isinstance(instr.operands[0], Reg)
                and isinstance(instr.operands[1], Mem)
            ):
                ea = _ea_fn(instr.operands[1])
                if ea is not None:
                    di = int(instr.operands[0].reg)
                    size = instr.size

                    def thunk(m, em=em, controller=controller, cps=cps,
                              cyc=cyc, arc=arc, cost=cost, nxt=nxt, di=di,
                              ea=ea, size=size, dift_step=dift_step):
                        cyc[0] += cost
                        arc[0] += 1
                        if cps:
                            controller.count_instruction()
                        d = em.dift
                        if d is not None:
                            dift_step(d, m)
                        regs = m.registers
                        addr = ea(regs)
                        off = addr & 4095
                        memory = m.memory
                        # Single-page access to a fully mapped page skips the
                        # region walk and byte-assembly of the generic path.
                        pid = addr >> 12
                        if off + size <= 4096:
                            state = memory._full_pages.get(pid)
                            if state is None:
                                state = memory.page_fully_mapped(pid)
                        else:
                            state = False
                        if state:
                            page = memory._pages.get(pid)
                            if page is None:
                                value = 0
                            else:
                                value = _FROM_BYTES(page[off:off + size], "little")
                        else:
                            value = memory.read_int(addr, size)
                        j = m.journal
                        if j is not None:
                            j.entries.append((False, di, regs[di]))
                        regs[di] = value
                        p = em._pending_promotion
                        if p:
                            if d is not None:
                                d.register_tags[di] |= p & ALL_TAGS
                            em._pending_promotion = 0
                        return nxt
                    return thunk
            return self._make_fallback(instr)

        if opcode is Opcode.STORE:
            if len(instr.operands) == 2 and isinstance(instr.operands[0], Mem):
                ea = _ea_fn(instr.operands[0])
                val = _val_fn(instr.operands[1])
                if ea is not None and val is not None:
                    size = instr.size
                    mask = (1 << (8 * size)) - 1

                    def thunk(m, em=em, controller=controller, cps=cps,
                              cyc=cyc, arc=arc, cost=cost, nxt=nxt, ea=ea,
                              val=val, size=size, mask=mask,
                              dift_step=dift_step):
                        cyc[0] += cost
                        arc[0] += 1
                        if cps:
                            controller.count_instruction()
                        d = em.dift
                        if d is not None:
                            dift_step(d, m)
                        regs = m.registers
                        addr = ea(regs)
                        off = addr & 4095
                        memory = m.memory
                        pid = addr >> 12
                        if off + size <= 4096:
                            state = memory._full_pages.get(pid)
                            if state is None:
                                state = memory.page_fully_mapped(pid)
                        else:
                            state = False
                        if state:
                            pages = memory._pages
                            page = pages.get(pid)
                            if page is None:
                                page = bytearray(4096)
                                pages[pid] = page
                            j = memory.journal
                            if j is not None:
                                j.entries.append(
                                    (True, addr, bytes(page[off:off + size])))
                            page[off:off + size] = (
                                (val(regs) & mask).to_bytes(size, "little"))
                        else:
                            memory.write_int(addr, val(regs), size)
                        return nxt
                    return thunk
            return self._make_fallback(instr)

        if opcode is Opcode.LEA:
            if (
                len(instr.operands) == 2
                and isinstance(instr.operands[0], Reg)
                and isinstance(instr.operands[1], Mem)
            ):
                ea = _ea_fn(instr.operands[1])
                if ea is not None:
                    di = int(instr.operands[0].reg)

                    def thunk(m, em=em, controller=controller, cps=cps,
                              cyc=cyc, arc=arc, cost=cost, nxt=nxt, di=di,
                              ea=ea, dift_step=dift_step):
                        cyc[0] += cost
                        arc[0] += 1
                        if cps:
                            controller.count_instruction()
                        d = em.dift
                        if d is not None:
                            dift_step(d, m)
                        regs = m.registers
                        value = ea(regs)
                        j = m.journal
                        if j is not None:
                            j.entries.append((False, di, regs[di]))
                        regs[di] = value
                        return nxt
                    return thunk
            return self._make_fallback(instr)

        if opcode is Opcode.PUSH:
            if len(instr.operands) == 1:
                val = _val_fn(instr.operands[0])
                if val is not None:
                    def thunk(m, em=em, controller=controller, cps=cps,
                              cyc=cyc, arc=arc, cost=cost, nxt=nxt, val=val,
                              dift_step=dift_step):
                        cyc[0] += cost
                        arc[0] += 1
                        if cps:
                            controller.count_instruction()
                        d = em.dift
                        if d is not None:
                            dift_step(d, m)
                        regs = m.registers
                        value = val(regs)
                        new_sp = (regs[SP_IDX] - 8) & MASK64
                        off = new_sp & 4095
                        memory = m.memory
                        pid = new_sp >> 12
                        if off <= 4088:
                            state = memory._full_pages.get(pid)
                            if state is None:
                                state = memory.page_fully_mapped(pid)
                        else:
                            state = False
                        if state:
                            pages = memory._pages
                            page = pages.get(pid)
                            if page is None:
                                page = bytearray(4096)
                                pages[pid] = page
                            j = memory.journal
                            if j is not None:
                                j.entries.append(
                                    (True, new_sp, bytes(page[off:off + 8])))
                            page[off:off + 8] = value.to_bytes(8, "little")
                        else:
                            memory.write_int(new_sp, value, 8)
                        j = m.journal
                        if j is not None:
                            j.entries.append((False, SP_IDX, regs[SP_IDX]))
                        regs[SP_IDX] = new_sp
                        return nxt
                    return thunk
            return self._make_fallback(instr)

        if opcode is Opcode.POP:
            if len(instr.operands) == 1 and isinstance(instr.operands[0], Reg):
                di = int(instr.operands[0].reg)

                def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                          arc=arc, cost=cost, nxt=nxt, di=di,
                          dift_step=dift_step):
                    cyc[0] += cost
                    arc[0] += 1
                    if cps:
                        controller.count_instruction()
                    d = em.dift
                    if d is not None:
                        dift_step(d, m)
                    regs = m.registers
                    sp = regs[SP_IDX]
                    off = sp & 4095
                    memory = m.memory
                    pid = sp >> 12
                    if off <= 4088:
                        state = memory._full_pages.get(pid)
                        if state is None:
                            state = memory.page_fully_mapped(pid)
                    else:
                        state = False
                    if state:
                        page = memory._pages.get(pid)
                        if page is None:
                            value = 0
                        else:
                            value = _FROM_BYTES(page[off:off + 8], "little")
                    else:
                        value = memory.read_int(sp, 8)
                    j = m.journal
                    if j is not None:
                        j.entries.append((False, di, regs[di]))
                    regs[di] = value
                    new_sp = (regs[SP_IDX] + 8) & MASK64
                    if j is not None:
                        j.entries.append((False, SP_IDX, regs[SP_IDX]))
                    regs[SP_IDX] = new_sp
                    p = em._pending_promotion
                    if p:
                        if d is not None:
                            d.register_tags[di] |= p & ALL_TAGS
                        em._pending_promotion = 0
                    return nxt
                return thunk
            return self._make_fallback(instr)

        if opcode in _ALU_INLINE:
            thunk = self._make_alu(instr, dift_step, cost, nxt, cps)
            if thunk is not None:
                return thunk
            return self._make_fallback(instr)

        if opcode in (Opcode.DIV, Opcode.MOD, Opcode.NOT, Opcode.NEG):
            return self._make_fallback(instr)

        if opcode in (Opcode.CMP, Opcode.TEST):
            if len(instr.operands) == 2:
                ra = _val_fn(instr.operands[0])
                rb = _val_fn(instr.operands[1])
                if ra is not None and rb is not None:
                    is_cmp = opcode is Opcode.CMP

                    def thunk(m, em=em, controller=controller, cps=cps,
                              cyc=cyc, arc=arc, cost=cost, nxt=nxt, ra=ra,
                              rb=rb, is_cmp=is_cmp, dift_step=dift_step):
                        cyc[0] += cost
                        arc[0] += 1
                        if cps:
                            controller.count_instruction()
                        d = em.dift
                        if d is not None:
                            dift_step(d, m)
                        regs = m.registers
                        a = ra(regs)
                        b = rb(regs)
                        f = m.flags
                        if is_cmp:
                            r = (a - b) & MASK64
                            f.zero = r == 0
                            f.sign = r >= SIGN_BIT
                            f.carry = a < b
                            f.overflow = (a >= SIGN_BIT) != (b >= SIGN_BIT) and (
                                r >= SIGN_BIT) != (a >= SIGN_BIT)
                        else:
                            r = a & b
                            f.zero = r == 0
                            f.sign = r >= SIGN_BIT
                            f.carry = False
                            f.overflow = False
                        return nxt
                    return thunk
            return self._make_fallback(instr)

        if opcode is Opcode.JMP:
            tgt = _imm_target(instr)
            if tgt is None:
                return self._make_fallback(instr)

            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      arc=arc, cost=cost, tgt=tgt):
                cyc[0] += cost
                arc[0] += 1
                if cps:
                    controller.count_instruction()
                return tgt
            return thunk

        if opcode is Opcode.JCC:
            tgt = _imm_target(instr)
            if tgt is None:
                return self._make_fallback(instr)
            cc_fn = _CC_FUNCS[instr.cc]

            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      arc=arc, cost=cost, nxt=nxt, tgt=tgt, cc_fn=cc_fn):
                cyc[0] += cost
                arc[0] += 1
                if cps:
                    controller.count_instruction()
                return tgt if cc_fn(m.flags) else nxt
            return thunk

        if opcode is Opcode.CALL:
            tgt = _imm_target(instr)
            if tgt is None:
                return self._make_fallback(instr)

            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      arc=arc, cost=cost, nxt=nxt, tgt=tgt):
                cyc[0] += cost
                arc[0] += 1
                if cps:
                    controller.count_instruction()
                regs = m.registers
                new_sp = (regs[SP_IDX] - 8) & MASK64
                off = new_sp & 4095
                memory = m.memory
                pid = new_sp >> 12
                if off <= 4088:
                    state = memory._full_pages.get(pid)
                    if state is None:
                        state = memory.page_fully_mapped(pid)
                else:
                    state = False
                if state:
                    pages = memory._pages
                    page = pages.get(pid)
                    if page is None:
                        page = bytearray(4096)
                        pages[pid] = page
                    j = memory.journal
                    if j is not None:
                        j.entries.append(
                            (True, new_sp, bytes(page[off:off + 8])))
                    page[off:off + 8] = nxt.to_bytes(8, "little")
                else:
                    memory.write_int(new_sp, nxt, 8)
                j = m.journal
                if j is not None:
                    j.entries.append((False, SP_IDX, regs[SP_IDX]))
                regs[SP_IDX] = new_sp
                if em.asan is not None:
                    em.asan.poison_return_slot(new_sp)
                return tgt
            return thunk

        if opcode is Opcode.RET:
            has_shadows = self.has_shadows

            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      arc=arc, cost=cost, instr=instr, has_shadows=has_shadows):
                cyc[0] += cost
                arc[0] += 1
                if cps:
                    controller.count_instruction()
                regs = m.registers
                sp = regs[SP_IDX]
                off = sp & 4095
                memory = m.memory
                pid = sp >> 12
                if off <= 4088:
                    state = memory._full_pages.get(pid)
                    if state is None:
                        state = memory.page_fully_mapped(pid)
                else:
                    state = False
                if state:
                    page = memory._pages.get(pid)
                    if page is None:
                        target = 0
                    else:
                        target = _FROM_BYTES(page[off:off + 8], "little")
                else:
                    target = memory.read_int(sp, 8)
                if em.asan is not None:
                    em.asan.unpoison_return_slot(sp)
                j = m.journal
                if j is not None:
                    j.entries.append((False, SP_IDX, sp))
                regs[SP_IDX] = (sp + 8) & MASK64
                if cps and has_shadows:
                    redirected = em._check_indirect_target(instr, target)
                    if redirected is not None:
                        return redirected
                if target == EXIT_SENTINEL:
                    if cps:
                        controller.rollback(m, em.dift, reason="forced")
                        if em.coverage is not None:
                            em.coverage.flush_speculative()
                        return m.pc
                    return EXIT_SENTINEL
                return target
            return thunk

        if opcode is Opcode.HALT:
            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      arc=arc, cost=cost):
                cyc[0] += cost
                arc[0] += 1
                if cps:
                    controller.count_instruction()
                    controller.rollback(m, em.dift, reason="forced")
                    if em.coverage is not None:
                        em.coverage.flush_speculative()
                    return m.pc
                raise ProgramExit(to_signed(m.registers[RET_IDX]))
            return thunk

        if opcode in (Opcode.LFENCE, Opcode.CPUID):
            def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                      arc=arc, cost=cost, nxt=nxt):
                cyc[0] += cost
                arc[0] += 1
                if cps:
                    controller.count_instruction()
                    controller.rollback(m, em.dift, reason="forced")
                    if em.coverage is not None:
                        em.coverage.flush_speculative()
                    return m.pc
                return nxt
            return thunk

        if opcode is Opcode.ECALL:
            index = instr.operands[0] if instr.operands else None
            if isinstance(index, Imm):
                try:
                    name = self.binary.import_name(index.value)
                except Exception:
                    return self._make_fallback(instr)
                external_base = self.cost_model.external_base
                external_per_byte = self.cost_model.external_per_byte
                registry = self.externals._externals

                def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc,
                          arc=arc, cost=cost, nxt=nxt, name=name,
                          registry=registry, external_base=external_base,
                          external_per_byte=external_per_byte):
                    cyc[0] += cost
                    arc[0] += 1
                    if cps:
                        controller.count_instruction()
                        # Uninstrumented side effects cannot be rolled back;
                        # the simulation ends here.
                        controller.rollback(m, em.dift, reason="forced")
                        if em.coverage is not None:
                            em.coverage.flush_speculative()
                        return m.pc
                    external = registry.get(name)
                    if external is None:
                        em.externals.get(name)  # raises the legacy KeyError
                    regs = m.registers
                    args = [regs[1], regs[2], regs[3], regs[4], regs[5]]
                    em.pending_return_tag = 0
                    ret, moved = external.handler(em, args)
                    regs[RET_IDX] = ret & MASK64
                    d = em.dift
                    if d is not None:
                        d.register_tags[RET_IDX] = em.pending_return_tag & ALL_TAGS
                    cyc[0] += external_base + external_per_byte * moved
                    return nxt
                return thunk
            return self._make_fallback(instr)

        # icall, ijmp and anything unanticipated: legacy handlers.
        return self._make_fallback(instr)

    def _make_fallback(self, instr: Instruction) -> Callable:
        """A thunk that reproduces the legacy per-step sequence verbatim.

        Used for rare/intricate operations; still skips the dispatch-table
        and cost-model lookups.
        """
        self._fallback_addresses.add(instr.address)
        em = self
        controller = self.controller
        cps = controller.checkpoints if controller is not None else None
        cyc = self._cycles_cell
        arc = self._arch_cell
        cost = self.cost_model.instruction_cost(instr.opcode)
        is_arch = instr.opcode not in _PSEUDO_SET
        handler = self._dispatch[instr.opcode]

        def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc, arc=arc,
                  cost=cost, is_arch=is_arch, handler=handler, instr=instr):
            cyc[0] += cost
            if is_arch:
                arc[0] += 1
                if cps:
                    controller.count_instruction()
                d = em.dift
                if d is not None:
                    try:
                        d.propagate(instr, m)
                    except MemoryFault:
                        pass
            em._extra_cycles = 0
            new_pc = handler(instr)
            extra = em._extra_cycles
            if extra:
                cyc[0] += extra
            return new_pc
        return thunk

    def _make_alu(self, instr: Instruction, dift_step, cost: int,
                  nxt: int, cps) -> Optional[Callable]:
        """Specialized two-operand ALU thunk (inlined flags computation)."""
        if len(instr.operands) != 2 or not isinstance(instr.operands[0], Reg):
            return None
        rb = _val_fn(instr.operands[1])
        if rb is None:
            return None
        em = self
        controller = self.controller
        cyc = self._cycles_cell
        arc = self._arch_cell
        di = int(instr.operands[0].reg)
        op = instr.opcode

        def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc, arc=arc,
                  cost=cost, nxt=nxt, di=di, rb=rb, op=op,
                  dift_step=dift_step):
            cyc[0] += cost
            arc[0] += 1
            if cps:
                controller.count_instruction()
            d = em.dift
            if d is not None:
                dift_step(d, m)
            regs = m.registers
            a = regs[di]
            b = rb(regs)
            f = m.flags
            if op is Opcode.ADD:
                r = (a + b) & MASK64
                f.zero = r == 0
                f.sign = r >= SIGN_BIT
                f.carry = a + b > MASK64
                f.overflow = (a >= SIGN_BIT) == (b >= SIGN_BIT) and (
                    r >= SIGN_BIT) != (a >= SIGN_BIT)
            elif op is Opcode.SUB:
                r = (a - b) & MASK64
                f.zero = r == 0
                f.sign = r >= SIGN_BIT
                f.carry = a < b
                f.overflow = (a >= SIGN_BIT) != (b >= SIGN_BIT) and (
                    r >= SIGN_BIT) != (a >= SIGN_BIT)
            else:
                if op is Opcode.AND:
                    r = a & b
                elif op is Opcode.OR:
                    r = a | b
                elif op is Opcode.XOR:
                    r = a ^ b
                elif op is Opcode.SHL:
                    r = (a << (b & 63)) & MASK64
                elif op is Opcode.SHR:
                    r = a >> (b & 63)
                elif op is Opcode.SAR:
                    sa = a - TWO64 if a >= SIGN_BIT else a
                    r = (sa >> (b & 63)) & MASK64
                else:  # MUL
                    sa = a - TWO64 if a >= SIGN_BIT else a
                    sb = b - TWO64 if b >= SIGN_BIT else b
                    r = (sa * sb) & MASK64
                f.zero = r == 0
                f.sign = r >= SIGN_BIT
                f.carry = False
                f.overflow = False
            j = m.journal
            if j is not None:
                j.entries.append((False, di, a))
            regs[di] = r
            return nxt
        return thunk

    def _make_fused_cmp_jcc(self, cmp_instr: Instruction,
                            jcc_instr: Instruction) -> Optional[Callable]:
        """Fuse ``cmp`` + fall-through ``jcc`` into one thunk.

        Legal because both are architectural, neither touches memory, the
        ``jcc`` consumes exactly the flags the ``cmp`` produced, and the
        ``jcc`` keeps its own standalone thunk for direct jumps to it.  The
        fuel boundary is preserved: if the step budget expires between the
        two halves, the thunk stops after the ``cmp`` with the program
        counter on the ``jcc`` — exactly where the legacy engine stops.
        """
        if len(cmp_instr.operands) != 2:
            return None
        ra = _val_fn(cmp_instr.operands[0])
        rb = _val_fn(cmp_instr.operands[1])
        tgt = _imm_target(jcc_instr)
        if ra is None or rb is None or tgt is None:
            return None
        em = self
        controller = self.controller
        cps = controller.checkpoints if controller is not None else None
        cyc = self._cycles_cell
        arc = self._arch_cell
        stp = self._steps_cell
        cmp_cost = self.cost_model.instruction_cost(Opcode.CMP)
        jcc_cost = self.cost_model.instruction_cost(Opcode.JCC)
        jcc_addr = self.next_address[cmp_instr.address]
        jcc_nxt = self.next_address[jcc_instr.address]
        cc_fn = _CC_FUNCS[jcc_instr.cc]
        dift_step = _dift_fn(cmp_instr, self.layout.tag_flip_bit)

        def thunk(m, em=em, controller=controller, cps=cps, cyc=cyc, arc=arc,
                  stp=stp, cmp_cost=cmp_cost, jcc_cost=jcc_cost,
                  jcc_addr=jcc_addr, jcc_nxt=jcc_nxt, tgt=tgt, ra=ra, rb=rb,
                  cc_fn=cc_fn, dift_step=dift_step):
            # -- cmp half --------------------------------------------------
            cyc[0] += cmp_cost
            arc[0] += 1
            if cps:
                controller.count_instruction()
            d = em.dift
            if d is not None:
                dift_step(d, m)
            regs = m.registers
            a = ra(regs)
            b = rb(regs)
            r = (a - b) & MASK64
            f = m.flags
            f.zero = r == 0
            f.sign = r >= SIGN_BIT
            f.carry = a < b
            f.overflow = (a >= SIGN_BIT) != (b >= SIGN_BIT) and (
                r >= SIGN_BIT) != (a >= SIGN_BIT)
            if stp[0] >= em.max_steps:
                # Out of fuel after the cmp: resume (and expire) at the jcc.
                return jcc_addr
            # -- jcc half --------------------------------------------------
            stp[0] += 1
            cyc[0] += jcc_cost
            arc[0] += 1
            if cps:
                controller.count_instruction()
            return tgt if cc_fn(f) else jcc_nxt
        return thunk

    # ------------------------------------------------------------------ main loop
    def _execute(self) -> ExecutionResult:
        machine = self.machine
        controller = self.controller
        cost_model = self.cost_model
        trace_get = self._trace.get
        max_steps = self.max_steps
        cyc = self._cycles_cell
        arc = self._arch_cell
        stp = self._steps_cell
        cyc[0] = 0
        arc[0] = 0
        stp[0] = 0

        result = ExecutionResult(status="exit")

        while True:
            steps = stp[0]
            if steps >= max_steps:
                result.status = "fuel"
                break
            pc = machine.pc
            if pc == EXIT_SENTINEL:
                result.exit_status = to_signed(machine.registers[RET_IDX])
                break
            thunk = trace_get(pc)
            if thunk is None:
                if (
                    self._dynamic_models
                    and controller is not None
                    and controller.in_simulation
                ):
                    # Speculative wrong path reached non-code (stale model
                    # target): squash the simulation, exactly like the
                    # legacy engine.
                    undone = controller.rollback(machine, self.dift,
                                                 reason="exception")
                    cyc[0] += cost_model.rollback_cost(undone)
                    if self.coverage is not None:
                        self.coverage.flush_speculative()
                    self._after_exception_rollback()
                    continue
                result.status = "crash"
                result.crash_reason = f"jump to non-code address {pc:#x}"
                break
            stp[0] = steps + 1

            try:
                new_pc = thunk(machine)
            except (MemoryFault, ArithmeticFault) as exc:
                if controller is not None and controller.in_simulation:
                    undone = controller.rollback(machine, self.dift,
                                                 reason="exception")
                    cyc[0] += cost_model.rollback_cost(undone)
                    if self.coverage is not None:
                        self.coverage.flush_speculative()
                    self._after_exception_rollback()
                    continue
                result.status = "crash"
                result.crash_reason = str(exc)
                break
            except ProgramExit as exc:
                result.exit_status = exc.status
                break
            except ProgramCrash as exc:
                if controller is not None and controller.in_simulation:
                    undone = controller.rollback(machine, self.dift,
                                                 reason="exception")
                    cyc[0] += cost_model.rollback_cost(undone)
                    continue
                result.status = "crash"
                result.crash_reason = str(exc)
                break

            if new_pc is None:
                # Handler already set machine.pc (rollbacks, redirects).
                continue
            machine.pc = new_pc

        result.steps = stp[0]
        result.cycles = cyc[0]
        result.arch_instructions = arc[0]
        return result


# ---------------------------------------------------------------------------
# Engine registrations (the built-in plugins behind ``engine="..."`` knobs)
# ---------------------------------------------------------------------------

@register_engine("fast")
def _fast_engine_plugin():
    """Decoded-trace dispatch paired with copy-on-write journal rollback."""
    from repro.runtime.speculation import JournalingSpeculationController

    return FastEmulator, JournalingSpeculationController


@register_engine("legacy")
def _legacy_engine_plugin():
    """The generic reference interpreter with full-snapshot checkpoints."""
    from repro.runtime.speculation import SpeculationController

    return Emulator, SpeculationController


# The jit tier builds on FastEmulator and registers itself on import;
# pulling it in here makes ``engine_names()`` (which imports this module)
# see all three built-in engines.
from repro.runtime import jit as _jit  # noqa: E402,F401
