"""The TELF disassembler: byte blobs back to a symbolized IR.

Mirrors the role of Datalog Disassembly in the paper: decode the text
section, find basic-block leaders, rebuild the CFG, and *symbolize* every
code and data reference so the module can be re-laid-out after rewriting.

Like the paper's platform, the disassembler relies on the binary's symbol
table for function extents (Teapot targets unstripped COTS binaries) and on
relocation information plus heuristics for pointer recovery; section 8 of
the paper discusses why incorrect symbolization is a fundamental limitation
of static rewriting.  The heuristic path (pointer-looking values inside data
objects with no relocation) is exercised by tests to document this failure
mode.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set, Tuple

from repro.disasm.ir import BasicBlock, IRFunction, Module
from repro.isa.encoding import EncodingError, decode_instruction
from repro.isa.instructions import (
    Instruction,
    Opcode,
    falls_through,
    is_call,
)
from repro.isa.operands import Imm, Label, Mem
from repro.loader.binary_format import (
    DataObject,
    RelocationKind,
    Symbol,
    SymbolKind,
    TelfBinary,
)


class DisassemblyError(ValueError):
    """Raised when a binary cannot be disassembled into a well-formed module."""


def disassemble(binary: TelfBinary) -> Module:
    """Disassemble and symbolize ``binary`` into a :class:`Module`."""
    return Disassembler(binary).run()


class Disassembler:
    """Stateful disassembler for a single binary."""

    def __init__(self, binary: TelfBinary) -> None:
        self.binary = binary
        self.layout = binary.layout
        self._functions = binary.function_symbols()
        self._func_by_name = {s.name: s for s in self._functions}
        #: decoded instructions per function, keyed by address
        self._decoded: Dict[str, List[Instruction]] = {}
        #: block leader addresses per function
        self._leaders: Dict[str, Set[int]] = {}
        #: addresses referenced by data/code pointers (address-taken)
        self._taken_addresses: Set[int] = set()
        #: return-site addresses (instruction following a call)
        self._return_sites: Set[int] = set()
        #: address -> (function name, block label) once blocks are formed
        self._block_labels: Dict[int, Tuple[str, str]] = {}

    # -- driver ---------------------------------------------------------------
    def run(self) -> Module:
        """Execute the full disassembly pipeline."""
        if not self._functions:
            raise DisassemblyError("binary has no function symbols")
        self._decode_functions()
        self._collect_pointer_targets()
        self._find_leaders()
        functions = self._build_functions()
        self._symbolize(functions)
        data_objects = self._recover_data_objects()
        return Module(
            functions=functions,
            data_objects=data_objects,
            imports=list(self.binary.imports),
            entry=self.binary.entry,
            layout=self.layout,
            metadata=dict(self.binary.metadata),
        )

    # -- stage 1: linear decode within each function ----------------------------
    def _decode_functions(self) -> None:
        text = self.binary.text
        for sym in self._functions:
            if sym.size == 0:
                raise DisassemblyError(f"function symbol {sym.name!r} has zero size")
            start = sym.address - text.address
            end = start + sym.size
            if start < 0 or end > len(text.data):
                raise DisassemblyError(
                    f"function {sym.name!r} extent escapes the text section"
                )
            instrs: List[Instruction] = []
            offset = start
            while offset < end:
                try:
                    instr, length = decode_instruction(text.data, offset)
                except EncodingError as exc:
                    raise DisassemblyError(
                        f"failed to decode instruction at {text.address + offset:#x} "
                        f"in {sym.name!r}: {exc}"
                    ) from exc
                instr.address = text.address + offset
                instrs.append(instr)
                offset += length
            if offset != end:
                raise DisassemblyError(
                    f"function {sym.name!r} does not end on an instruction boundary"
                )
            self._decoded[sym.name] = instrs

    # -- stage 2: pointer targets (address-taken code) -----------------------------
    def _collect_pointer_targets(self) -> None:
        text = self.binary.text
        for reloc in self.binary.relocations:
            if reloc.kind is RelocationKind.ABS64_DATA:
                section = self.binary.section_at(reloc.address)
                if section is None or section.name == ".text":
                    continue
                raw = section.data[reloc.address - section.address:
                                   reloc.address - section.address + 8]
                if len(raw) == 8:
                    value = struct.unpack("<Q", raw)[0]
                    if text.contains(value):
                        self._taken_addresses.add(value)
            elif reloc.kind is RelocationKind.ABS64_CODE:
                target = self._reloc_target_address(reloc)
                if target is not None and text.contains(target):
                    self._taken_addresses.add(target)
        # Heuristic sweep: when the binary carries no relocation information
        # at all (a fully stripped COTS artefact), fall back to treating
        # 8-byte-aligned pointer-looking values in data sections as
        # address-taken code.  This is the best a static rewriter can do and
        # is where mis-symbolization can creep in (paper §8).
        if not self.binary.relocations:
            for name in (".data", ".rodata"):
                section = self.binary.sections.get(name)
                if section is None:
                    continue
                for off in range(0, len(section.data) - 7, 8):
                    value = struct.unpack_from("<Q", section.data, off)[0]
                    if text.contains(value):
                        self._taken_addresses.add(value)

    def _reloc_target_address(self, reloc) -> Optional[int]:
        if "::" in reloc.symbol:
            func_name, _, _ = reloc.symbol.partition("::")
            sym = self._func_by_name.get(func_name)
            if sym is None:
                return None
            # The addend in qualified relocations is relative to the local
            # label, whose address we do not know here; the heuristic sweep
            # over data bytes covers these, so skip.
            return None
        if self.binary.has_symbol(reloc.symbol):
            return self.binary.symbol(reloc.symbol).address + reloc.addend
        return None

    # -- stage 3: leaders ------------------------------------------------------------
    def _find_leaders(self) -> None:
        for sym in self._functions:
            instrs = self._decoded[sym.name]
            leaders: Set[int] = {sym.address}
            for idx, instr in enumerate(instrs):
                next_addr = (
                    instrs[idx + 1].address if idx + 1 < len(instrs) else None
                )
                if instr.opcode in (Opcode.JMP, Opcode.JCC):
                    target = instr.operands[0]
                    if isinstance(target, Imm) and sym.contains(target.value):
                        leaders.add(target.value)
                    if next_addr is not None:
                        leaders.add(next_addr)
                elif instr.opcode in (Opcode.IJMP, Opcode.RET, Opcode.HALT):
                    if next_addr is not None:
                        leaders.add(next_addr)
                elif instr.opcode in (Opcode.CALL, Opcode.ICALL):
                    # The instruction after a call is a return site: it is
                    # reached by an indirect transfer (ret), which Teapot's
                    # escape-marker pass must protect.
                    if next_addr is not None:
                        leaders.add(next_addr)
                        self._return_sites.add(next_addr)
            for addr in self._taken_addresses:
                if sym.contains(addr):
                    leaders.add(addr)
            self._leaders[sym.name] = leaders

    # -- stage 4: block formation -------------------------------------------------------
    def _build_functions(self) -> List[IRFunction]:
        functions: List[IRFunction] = []
        for sym in self._functions:
            instrs = self._decoded[sym.name]
            leaders = self._leaders[sym.name]
            valid_addresses = {i.address for i in instrs}
            for leader in leaders:
                if leader not in valid_addresses:
                    raise DisassemblyError(
                        f"block leader {leader:#x} in {sym.name!r} is not on an "
                        "instruction boundary"
                    )
            blocks: List[BasicBlock] = []
            current: Optional[BasicBlock] = None
            for instr in instrs:
                if instr.address in leaders:
                    label = self._label_for(sym.name, instr.address)
                    current = BasicBlock(
                        label=label,
                        address=instr.address,
                        address_taken=instr.address in self._taken_addresses,
                        is_return_site=instr.address in self._return_sites,
                    )
                    blocks.append(current)
                    self._block_labels[instr.address] = (sym.name, label)
                assert current is not None
                current.instructions.append(instr)
            functions.append(
                IRFunction(name=sym.name, blocks=blocks, address=sym.address)
            )
        return functions

    @staticmethod
    def _label_for(func_name: str, address: int) -> str:
        return f".L_{func_name}_{address:x}"

    # -- stage 5: symbolization -------------------------------------------------------------
    def _symbolize(self, functions: List[IRFunction]) -> None:
        reloc_index: Dict[int, List] = {}
        for reloc in self.binary.relocations:
            if reloc.kind is RelocationKind.ABS64_CODE:
                reloc_index.setdefault(reloc.address, []).append(reloc)

        for func in functions:
            func_sym = self._func_by_name[func.name]
            for blk in func.blocks:
                for instr in blk.instructions:
                    self._symbolize_instruction(
                        instr, func, func_sym, reloc_index.get(instr.address, [])
                    )
                self._compute_successors(func, blk)

    def _symbolize_instruction(
        self,
        instr: Instruction,
        func: IRFunction,
        func_sym: Symbol,
        relocs: List,
    ) -> None:
        if instr.opcode in (Opcode.JMP, Opcode.JCC):
            target = instr.operands[0]
            if isinstance(target, Imm):
                instr.operands[0] = self._code_label(target.value, func)
        elif instr.opcode is Opcode.CALL:
            target = instr.operands[0]
            if isinstance(target, Imm):
                callee = self.binary.function_at(target.value)
                if callee is None or callee.address != target.value:
                    raise DisassemblyError(
                        f"call at {instr.address:#x} targets {target.value:#x}, "
                        "which is not a function entry"
                    )
                instr.operands[0] = Label(callee.name)
        elif instr.opcode is Opcode.ECALL:
            target = instr.operands[0]
            if isinstance(target, Imm):
                instr.operands[0] = Label(self.binary.import_name(target.value))

        # Re-symbolize materialised pointers using relocations.
        for reloc in relocs:
            expected = self._symbol_address(reloc.symbol)
            if expected is None:
                continue
            expected += reloc.addend
            for pos, op in enumerate(instr.operands):
                if isinstance(op, Imm) and op.value == expected:
                    instr.operands[pos] = self._pointer_label(
                        reloc.symbol, reloc.addend, expected, func
                    )
                    break
                if isinstance(op, Mem) and isinstance(op.disp, int) and op.disp == expected:
                    new_disp = self._pointer_label(
                        reloc.symbol, reloc.addend, expected, func
                    )
                    instr.operands[pos] = op.with_disp(new_disp)
                    break

    def _symbol_address(self, name: str) -> Optional[int]:
        if "::" in name:
            # Qualified (function-local) symbols cannot be looked up from the
            # symbol table; the heuristic value-based path handles them.
            return None
        if self.binary.has_symbol(name):
            return self.binary.symbol(name).address
        return None

    def _pointer_label(
        self, symbol: str, addend: int, address: int, func: IRFunction
    ) -> Label:
        # Prefer a block label when the pointer targets code inside a known
        # function (jump tables, address-taken blocks).
        if address in self._block_labels:
            owner, label = self._block_labels[address]
            if owner == func.name:
                return Label(label)
            return Label(f"{owner}::{label}")
        return Label(symbol, addend)

    def _code_label(self, address: int, func: IRFunction) -> Label:
        if address in self._block_labels:
            owner, label = self._block_labels[address]
            if owner == func.name:
                return Label(label)
            # Cross-function direct jump (tail call): reference the function.
            target_func = self.binary.function_at(address)
            if target_func is not None and target_func.address == address:
                return Label(target_func.name)
            return Label(f"{owner}::{label}")
        raise DisassemblyError(
            f"branch in {func.name!r} targets {address:#x}, which is not a "
            "recovered block leader"
        )

    def _compute_successors(self, func: IRFunction, blk: BasicBlock) -> None:
        term = blk.terminator
        successors: List[str] = []
        if term is not None:
            if term.opcode in (Opcode.JMP, Opcode.JCC):
                target = term.operands[0]
                if isinstance(target, Label) and func.has_block(target.name):
                    successors.append(target.name)
            elif term.opcode is Opcode.IJMP:
                successors.extend(self._jump_table_successors(func, term))
        if blk.falls_through():
            idx = func.blocks.index(blk)
            if idx + 1 < len(func.blocks):
                successors.append(func.blocks[idx + 1].label)
        blk.successors = successors

    def _jump_table_successors(self, func: IRFunction, term: Instruction) -> List[str]:
        """Recover jump-table targets for a memory-indirect ``ijmp``.

        Jump tables are rodata objects full of code pointers; the paper's
        platform recovers them through Datalog Disassembly's table analysis.
        Here the memory operand's displacement (symbolized to the table
        object) identifies the table, and its pointer values give the
        targets.
        """
        mem = term.memory_operand()
        if mem is None:
            return []
        table_addr: Optional[int] = None
        if isinstance(mem.disp, Label):
            if self.binary.has_symbol(mem.disp.name):
                table_addr = self.binary.symbol(mem.disp.name).address + mem.disp.addend
        elif isinstance(mem.disp, int) and mem.disp:
            table_addr = mem.disp
        if table_addr is None:
            return []
        obj_sym = self.binary.symbol_at(table_addr)
        if obj_sym is None or obj_sym.kind is not SymbolKind.OBJECT:
            return []
        section = self.binary.section_at(obj_sym.address)
        if section is None:
            return []
        start = obj_sym.address - section.address
        data = section.data[start:start + obj_sym.size]
        targets: List[str] = []
        for off in range(0, len(data) - 7, 8):
            value = struct.unpack_from("<Q", data, off)[0]
            if value in self._block_labels:
                owner, label = self._block_labels[value]
                if owner == func.name and label not in targets:
                    targets.append(label)
        return targets

    # -- stage 6: data object recovery ------------------------------------------------------
    def _recover_data_objects(self) -> List[DataObject]:
        reloc_slots = {
            reloc.address
            for reloc in self.binary.relocations
            if reloc.kind is RelocationKind.ABS64_DATA
        }
        use_heuristic = not self.binary.relocations
        objects: List[DataObject] = []
        for sym in self.binary.object_symbols():
            section = self.binary.section_at(sym.address)
            if section is None:
                raise DisassemblyError(
                    f"data symbol {sym.name!r} does not fall in any section"
                )
            start = sym.address - section.address
            data = bytes(section.data[start:start + sym.size])
            pointer_slots: List[tuple] = []
            for off in range(0, max(len(data) - 7, 0), 8):
                is_reloc_slot = (sym.address + off) in reloc_slots
                if not is_reloc_slot and not use_heuristic:
                    continue
                value = struct.unpack_from("<Q", data, off)[0]
                slot = self._classify_pointer(value)
                if slot is not None:
                    pointer_slots.append((off, slot[0], slot[1]))
            objects.append(
                DataObject(
                    name=sym.name,
                    data=data,
                    section=section.name,
                    align=8,
                    pointer_slots=pointer_slots,
                )
            )
        return objects

    def _classify_pointer(self, value: int) -> Optional[Tuple[str, int]]:
        """Classify an 8-byte data value as a symbolic pointer, if it is one."""
        if value in self._block_labels:
            owner, label = self._block_labels[value]
            func_sym = self._func_by_name[owner]
            if value == func_sym.address:
                return owner, 0
            return f"{owner}::{label}", 0
        text = self.binary.text
        if text.contains(value):
            func_sym = self.binary.function_at(value)
            if func_sym is not None:
                return func_sym.name, value - func_sym.address
        for name in (".data", ".rodata"):
            section = self.binary.sections.get(name)
            if section is not None and section.contains(value):
                owner = self.binary.symbol_at(value)
                if owner is not None and owner.kind is SymbolKind.OBJECT:
                    return owner.name, value - owner.address
        return None
