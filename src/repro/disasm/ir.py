"""GTIRB-like intermediate representation of a disassembled binary.

The IR mirrors the structure the paper's tooling gets from GTIRB: a module
containing functions, each a list of basic blocks with explicit CFG edges,
plus the recovered data objects, imports and symbol information.  All code
references inside the IR are *symbolic* (labels), so passes may insert,
remove or duplicate code without worrying about addresses; the reassembler
(:mod:`repro.rewriting.reassemble`) re-lays everything out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.isa.instructions import (
    Instruction,
    Opcode,
    falls_through,
    is_conditional_branch,
)
from repro.loader.binary_format import DataObject
from repro.loader.layout import DEFAULT_LAYOUT, MemoryLayout


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions.

    Attributes:
        label: the block's symbolic name (unique within its function).
        instructions: the block body, in program order.
        address: the block's original address in the input binary
            (``None`` for blocks synthesised by rewriting passes).
        successors: labels of CFG successor blocks *within the same
            function* (call targets are not successors; returns have none).
        address_taken: whether the block's address is materialised somewhere
            (jump-table entry, function-pointer table, computed goto) and it
            may therefore be reached by an indirect control transfer.
        is_return_site: whether the block starts immediately after a call
            and is therefore reached by a ``ret`` (an indirect transfer).
    """

    label: str
    instructions: List[Instruction] = field(default_factory=list)
    address: Optional[int] = None
    successors: List[str] = field(default_factory=list)
    address_taken: bool = False
    is_return_site: bool = False

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's final instruction, if the block is non-empty."""
        return self.instructions[-1] if self.instructions else None

    def falls_through(self) -> bool:
        """Whether control can flow past the end of this block."""
        term = self.terminator
        if term is None:
            return True
        return falls_through(term)

    def conditional_branches(self) -> List[Instruction]:
        """All conditional branches in the block (usually just the terminator)."""
        return [i for i in self.instructions if is_conditional_branch(i)]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class IRFunction:
    """A recovered function: an ordered list of basic blocks.

    The first block is the function entry.  Block order is layout order —
    reassembly emits blocks in this order, so fall-through relationships are
    preserved by construction.
    """

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)
    address: Optional[int] = None

    @property
    def entry_block(self) -> BasicBlock:
        """The function's entry block."""
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label.

        Raises:
            KeyError: if no block has that label.
        """
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block labelled {label!r} in function {self.name!r}")

    def has_block(self, label: str) -> bool:
        """Whether a block with ``label`` exists."""
        return any(b.label == label for b in self.blocks)

    def block_at(self, address: int) -> Optional[BasicBlock]:
        """The block starting exactly at ``address``, or ``None``."""
        for blk in self.blocks:
            if blk.address == address:
                return blk
        return None

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction of the function in layout order."""
        for blk in self.blocks:
            yield from blk.instructions

    def instruction_count(self) -> int:
        """Total number of instructions in the function."""
        return sum(len(b) for b in self.blocks)

    def conditional_branch_count(self) -> int:
        """Number of conditional branches (speculation entry points)."""
        return sum(len(b.conditional_branches()) for b in self.blocks)

    def predecessors(self) -> Dict[str, Set[str]]:
        """Map from block label to the labels of its CFG predecessors."""
        preds: Dict[str, Set[str]] = {b.label: set() for b in self.blocks}
        for i, blk in enumerate(self.blocks):
            for succ in blk.successors:
                if succ in preds:
                    preds[succ].add(blk.label)
            if blk.falls_through() and i + 1 < len(self.blocks):
                preds[self.blocks[i + 1].label].add(blk.label)
        return preds

    def copy_renamed(self, new_name: str, label_map: Dict[str, str]) -> "IRFunction":
        """Deep-copy the function under a new name, renaming block labels.

        ``label_map`` must map every existing block label to its new label;
        intra-function label references inside instruction operands are *not*
        rewritten here (passes handle operand rewriting so they can also
        retarget cross-function references).
        """
        new_blocks = []
        for blk in self.blocks:
            new_blocks.append(
                BasicBlock(
                    label=label_map[blk.label],
                    instructions=[i.copy() for i in blk.instructions],
                    address=blk.address,
                    successors=[label_map.get(s, s) for s in blk.successors],
                    address_taken=blk.address_taken,
                    is_return_site=blk.is_return_site,
                )
            )
        return IRFunction(name=new_name, blocks=new_blocks, address=None)


@dataclass
class Module:
    """A fully disassembled and symbolized binary."""

    functions: List[IRFunction] = field(default_factory=list)
    data_objects: List[DataObject] = field(default_factory=list)
    imports: List[str] = field(default_factory=list)
    entry: str = "main"
    layout: MemoryLayout = field(default_factory=lambda: DEFAULT_LAYOUT)
    metadata: Dict[str, str] = field(default_factory=dict)

    def function(self, name: str) -> IRFunction:
        """Look up a function by name.

        Raises:
            KeyError: if the function does not exist.
        """
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def has_function(self, name: str) -> bool:
        """Whether a function with ``name`` exists."""
        return any(f.name == name for f in self.functions)

    def data_object(self, name: str) -> DataObject:
        """Look up a data object by name.

        Raises:
            KeyError: if the object does not exist.
        """
        for obj in self.data_objects:
            if obj.name == name:
                return obj
        raise KeyError(f"no data object named {name!r}")

    def instruction_count(self) -> int:
        """Total number of instructions across all functions."""
        return sum(f.instruction_count() for f in self.functions)

    def function_names(self) -> List[str]:
        """Names of all functions, in layout order."""
        return [f.name for f in self.functions]

    def iter_blocks(self) -> Iterator[tuple]:
        """Iterate ``(function, block)`` pairs in layout order."""
        for func in self.functions:
            for blk in func.blocks:
                yield func, blk
