"""Human-readable assembly listings of IR modules.

Used by examples, error messages and debugging; the output format is purely
informational (the assembler consumes the programmatic IR, not this text).
"""

from __future__ import annotations

from typing import List

from repro.disasm.ir import BasicBlock, IRFunction, Module


def format_block(block: BasicBlock, indent: str = "  ") -> str:
    """Format one basic block as an assembly listing."""
    lines: List[str] = []
    flags = []
    if block.address_taken:
        flags.append("address-taken")
    if block.is_return_site:
        flags.append("return-site")
    suffix = f"  ; {', '.join(flags)}" if flags else ""
    addr = f" @ {block.address:#x}" if block.address is not None else ""
    lines.append(f"{block.label}:{addr}{suffix}")
    for instr in block.instructions:
        lines.append(f"{indent}{instr}")
    if block.successors:
        lines.append(f"{indent}; successors: {', '.join(block.successors)}")
    return "\n".join(lines)


def format_function(func: IRFunction) -> str:
    """Format a whole function as an assembly listing."""
    header = f"function {func.name}"
    if func.address is not None:
        header += f" @ {func.address:#x}"
    parts = [header + ":"]
    parts.extend(format_block(blk) for blk in func.blocks)
    return "\n".join(parts)


def format_module(module: Module) -> str:
    """Format a whole module (functions followed by data objects)."""
    parts = [format_function(func) for func in module.functions]
    if module.data_objects:
        parts.append("")
        for obj in module.data_objects:
            preview = obj.data[:16].hex()
            ellipsis = "..." if len(obj.data) > 16 else ""
            parts.append(
                f"{obj.section} {obj.name}: {obj.size} bytes [{preview}{ellipsis}] "
                f"pointer_slots={len(obj.pointer_slots)}"
            )
    if module.imports:
        parts.append("")
        parts.append("imports: " + ", ".join(module.imports))
    return "\n".join(parts)
