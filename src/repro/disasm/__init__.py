"""Disassembly and IR recovery for TELF binaries.

Plays the role of Datalog Disassembly + GTIRB in the paper: it takes an
opaque :class:`~repro.loader.binary_format.TelfBinary`, decodes the text
section, recovers functions, basic blocks and a control-flow graph, and
*symbolizes* the result — absolute addresses embedded in instructions and
data are turned back into symbolic references so the rewriter can insert
instrumentation and re-layout the program freely.

The recovered IR (:class:`Module` → :class:`IRFunction` →
:class:`BasicBlock`) is the representation every rewriting pass in
:mod:`repro.core`, :mod:`repro.baselines` and :mod:`repro.rewriting`
operates on.
"""

from repro.disasm.ir import BasicBlock, IRFunction, Module
from repro.disasm.disassembler import Disassembler, DisassemblyError, disassemble
from repro.disasm.printer import format_block, format_function, format_module

__all__ = [
    "BasicBlock",
    "IRFunction",
    "Module",
    "Disassembler",
    "DisassemblyError",
    "disassemble",
    "format_block",
    "format_function",
    "format_module",
]
