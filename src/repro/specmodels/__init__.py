"""Pluggable speculation models: Spectre-PHT/BTB/RSB/STL variants.

Importing this package registers the four built-in models in
:data:`repro.plugins.MODEL_REGISTRY`; third-party variants join through
``@repro.plugins.register_model`` (re-exported by :mod:`repro.api`).  See
``docs/variants.md`` for model semantics and the extension contract.
"""

from typing import Sequence, Tuple

from repro.plugins import MODEL_REGISTRY
from repro.specmodels.base import SpeculationModel
from repro.specmodels.pht import PhtModel
from repro.specmodels.btb import BtbModel
from repro.specmodels.rsb import RsbModel
from repro.specmodels.stl import StlModel

#: The default variant set: the paper's conditional-branch primitive only.
DEFAULT_VARIANTS: Tuple[str, ...] = ("pht",)


def build_models(names: Sequence[str]) -> Tuple[SpeculationModel, ...]:
    """Fresh, stateful model instances for one runtime.

    Models carry mutable history (BTB targets, RSB slots, STL store
    windows), so every runtime gets its own instances.  Order follows the
    requested ``names`` (duplicates removed, first occurrence wins);
    unknown names raise the registry's error listing the valid options.
    """
    models = []
    seen = set()
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        models.append(MODEL_REGISTRY.get(name)())
    return tuple(models)


__all__ = [
    "DEFAULT_VARIANTS",
    "SpeculationModel",
    "PhtModel",
    "BtbModel",
    "RsbModel",
    "StlModel",
    "build_models",
]
