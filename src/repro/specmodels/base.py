"""The :class:`SpeculationModel` abstraction: pluggable Spectre variants.

The original reproduction simulated exactly one speculation primitive —
conditional-branch misprediction (Spectre-PHT), entered through the
``checkpoint`` pseudo-ops the rewriter plants before conditional branches.
A :class:`SpeculationModel` generalises the *entry* side of the simulation
while reusing everything downstream unchanged: the speculation controller's
checkpoints and rollback, the copy-on-write journal, the detection
policies, the coverage maps and the cost accounting all stay shared.

A model answers four questions:

* ``speculation_sources(instr)`` — is this instruction an entry (or
  observation) site of the model?  The fast engine consults this at trace
  build time: model sites fall back to the generic legacy handlers (where
  the model hooks live), so both engines execute model semantics through
  the *same* code and cannot diverge.
* ``mispredicted_targets(...)`` — given the architectural outcome of a
  site, which wrong program counters could the hardware speculate to?
* per-model cycle cost — ``entry_cost`` cycles are charged when the model
  starts a simulation (the PHT entry cost is carried by the ``checkpoint``
  pseudo-op itself, so :class:`~repro.specmodels.pht.PhtModel` charges 0).
* nesting interaction — ``nests`` says whether the model may start a
  *nested* simulation while another one is active; models that do still go
  through the controller's nesting policy, so the per-branch heuristics of
  Teapot/SpecFuzz/SpecTaint bound every model's entries uniformly.

Models are **stateful** (branch-target history, return-stack buffer, store
windows) and therefore instantiated per runtime via
:func:`repro.specmodels.build_models`; registration happens through
``@repro.plugins.register_model`` so third-party variants plug in exactly
like targets, engines, passes and schedulers do.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, List, TYPE_CHECKING

from repro.isa.instructions import Instruction, Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.emulator import Emulator


class SpeculationModel(abc.ABC):
    """One speculation primitive the runtime can simulate."""

    #: registry name ("pht", "btb", "rsb", "stl", ...).
    name: str = "base"
    #: whether the model enters simulations dynamically at architectural
    #: instructions (every model except the checkpoint-driven ``pht``).
    dynamic: bool = True
    #: whether the model may start a nested simulation while another
    #: simulation (of any model) is already active.
    nests: bool = True
    #: cycles charged when this model starts a simulation.
    entry_cost: int = 0
    #: opcodes of the instructions the model must observe or enter at.
    source_opcodes: FrozenSet[Opcode] = frozenset()
    #: capability flags the emulator uses to route its hooks.
    predicts_indirect: bool = False   # icall/ijmp misprediction (BTB)
    predicts_return: bool = False     # ret misprediction (RSB)
    predicts_stale_load: bool = False  # store-to-load bypass (STL)
    observes_calls: bool = False      # wants on_call() for call/icall
    observes_stores: bool = False     # wants on_store() for stores

    def speculation_sources(self, instr: Instruction) -> bool:
        """Whether ``instr`` is an entry/observation site of this model.

        The fast engine builds fallback thunks for source instructions so
        the shared legacy handlers (which carry the model hooks) run them.
        """
        return instr.opcode in self.source_opcodes

    # -- lifecycle ----------------------------------------------------------
    def begin_run(self) -> None:
        """Reset per-execution state before a fresh program run.

        Cross-run state (e.g. the BTB's target history, which persists
        across processes on real hardware) deliberately survives; override
        and clear only what a fresh process would not inherit.
        """

    def reset(self) -> None:
        """Forget all state (between campaigns)."""
        self.begin_run()

    # -- dynamic hooks (invoked by the emulator's model-aware handlers) ------
    def on_call(self, emulator: "Emulator", instr: Instruction,
                return_address: int) -> None:
        """Observe an executed call pushing ``return_address``."""

    def on_store(self, emulator: "Emulator", instr: Instruction,
                 addr: int, size: int) -> None:
        """Observe an architectural store about to overwrite ``addr``."""

    def on_indirect(self, emulator: "Emulator", instr: Instruction,
                    target: int) -> None:
        """Observe an architecturally resolved indirect-branch target."""

    def mispredicted_targets(self, emulator: "Emulator", instr: Instruction,
                             actual: int) -> List[int]:
        """Wrong program counters the hardware could speculate to.

        ``actual`` is the architecturally correct outcome of the site
        (indirect-branch target, return target, ...).  An empty list means
        the site retires correctly this time.
        """
        return []

    def choose_target(self, site: int, candidates: List[int]) -> int:
        """Pick the misprediction target among non-empty ``candidates``."""
        return candidates[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
