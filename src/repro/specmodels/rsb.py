"""Spectre-RSB: return-stack-buffer misprediction (variant 5 / ret2spec).

The RSB is a small cyclic buffer of return addresses.  Calls push, returns
pop and predict the popped entry.  Because the buffer is cyclic and
bounded, two stale situations arise naturally:

* **overflow** — a call chain deeper than the buffer wraps around and
  overwrites the oldest entries; the returns that later unwind past the
  wrap point predict the *overwriting* (deeper) return sites;
* **underflow** — more returns than live entries (the wrapped slots were
  consumed) cycle back onto stale slots left by earlier, unrelated calls.

Both mispredict a ``ret`` to a stale return site while the architectural
register state (in particular the return-value register) belongs to the
*current* call — the ret2spec/spectreRSB gadget shape.

The buffer is reset per program run (a fresh process starts with an empty
RSB) but its *contents* are never erased by pops, which is what makes the
stale-slot reuse possible.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Instruction, Opcode
from repro.plugins import register_model
from repro.specmodels.base import SpeculationModel

#: Cyclic return-stack depth (real parts use 16-32; small here so the
#: gadget samples overflow it with shallow recursion).
DEFAULT_RSB_DEPTH = 4


@register_model("rsb")
class RsbModel(SpeculationModel):
    """Return misprediction to stale return-stack entries."""

    name = "rsb"
    nests = True
    entry_cost = 2
    source_opcodes = frozenset({Opcode.CALL, Opcode.ICALL, Opcode.RET})
    predicts_return = True
    observes_calls = True

    def __init__(self, depth: int = DEFAULT_RSB_DEPTH) -> None:
        self.depth = depth
        self.buffer: List[int] = [0] * depth
        #: logical stack pointer; may go negative (underflow wraps cyclically).
        self.sp = 0

    # -- lifecycle ----------------------------------------------------------
    def begin_run(self) -> None:
        """A fresh process starts with an empty (zeroed) return stack."""
        self.buffer = [0] * self.depth
        self.sp = 0

    # -- buffer -------------------------------------------------------------
    def on_call(self, emulator, instr: Instruction,
                return_address: int) -> None:
        """Push a return address (overflow overwrites the oldest slot)."""
        self.buffer[self.sp % self.depth] = return_address
        self.sp += 1

    def peek(self) -> int:
        """The prediction the next ``ret`` would use (no state change)."""
        return self.buffer[(self.sp - 1) % self.depth]

    def pop(self) -> int:
        """Consume one prediction (the architectural retire of a ``ret``).

        Underflow simply keeps cycling through the stale slots — the
        logical pointer goes negative and Python's modulo keeps indexing
        the cyclic buffer, exactly the stale-reuse behaviour modelled.
        """
        self.sp -= 1
        return self.buffer[self.sp % self.depth]

    def mispredicted_targets(self, emulator, instr: Instruction,
                             actual: int) -> List[int]:
        """The stale predicted return target, when it disagrees.

        Offered only when the prediction is decodable code (slot zero from
        a fresh buffer, or an address from a different binary's run, is
        not a place the emulator can execute).
        """
        predicted = self.peek()
        if predicted != actual and predicted in emulator.instructions:
            return [predicted]
        return []
