"""Spectre-BTB: indirect-branch target misprediction (variant 2).

The branch target buffer is modelled as a small, bounded **target-history
table**: every executed indirect call/jump records its resolved target,
most recent first, with older entries evicted once the table is full.
When an indirect transfer resolves to target *t* while the table still
holds *different* (stale) targets, the model predicts one of those stale
targets instead — the attacker-influenced case is a victim function left
in the table by earlier (trained) executions.

The table is deliberately **global** rather than per-site: real BTBs are
indexed by (partial) branch address and alias heavily, which is exactly
what cross-site Spectre-BTB training exploits.  It also survives across
program runs inside one fuzzing campaign, mirroring a BTB that is not
flushed between processes.

Successive mispredictions at one site rotate through the stale candidates
(deterministically), so fuzzing explores every target the history holds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instructions import Instruction, Opcode
from repro.plugins import register_model
from repro.specmodels.base import SpeculationModel

#: Bounded size of the target-history table.
DEFAULT_HISTORY_SIZE = 8


@register_model("btb")
class BtbModel(SpeculationModel):
    """Indirect call/jump misprediction from a bounded target history."""

    name = "btb"
    nests = True
    entry_cost = 3
    source_opcodes = frozenset({Opcode.ICALL, Opcode.IJMP})
    predicts_indirect = True

    def __init__(self, history_size: int = DEFAULT_HISTORY_SIZE) -> None:
        self.history_size = history_size
        #: resolved indirect targets, most recent first, deduplicated.
        self.history: List[int] = []
        #: per-site entry counters used to rotate through stale candidates.
        self._rotations: Dict[int, int] = {}

    # -- lifecycle ----------------------------------------------------------
    def begin_run(self) -> None:
        """The BTB persists across runs (it is not flushed between
        processes on real hardware); nothing to clear."""

    def reset(self) -> None:
        self.history.clear()
        self._rotations.clear()

    # -- history ------------------------------------------------------------
    def on_indirect(self, emulator, instr: Instruction, target: int) -> None:
        """Architecturally resolved indirect target: train the table."""
        self.observe_target(target)

    def observe_target(self, target: int) -> None:
        """Record a resolved indirect target (move-to-front, bounded)."""
        if self.history and self.history[0] == target:
            return
        if target in self.history:
            self.history.remove(target)
        self.history.insert(0, target)
        del self.history[self.history_size:]

    def mispredicted_targets(self, emulator, instr: Instruction,
                             actual: int) -> List[int]:
        """Stale history entries that differ from the resolved target.

        Only targets that are still decodable code in the running binary
        are offered — the emulator redirects control there, so a dangling
        entry (e.g. from a different target's run) must not be followed.
        """
        instructions = emulator.instructions
        return [entry for entry in self.history
                if entry != actual and entry in instructions]

    def choose_target(self, site: int, candidates: List[int]) -> int:
        """Deterministically rotate through the stale candidates per site."""
        count = self._rotations.get(site, 0)
        self._rotations[site] = count + 1
        return candidates[count % len(candidates)]
