"""Spectre-PHT: conditional-branch misprediction (the paper's variant).

The PHT model is *checkpoint-driven*: entry sites are the ``checkpoint``
pseudo-ops the rewriter plants before conditional branches, and the
misprediction target is the trampoline the rewriter synthesised (which
lands in the Shadow Copy on the deliberately wrong path).  The model
object therefore carries no dynamic hooks — it is the switch that keeps
the classic behaviour enabled, plus the metadata (`speculation_sources`,
costs, nesting) the variant matrix reports about it.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Instruction, Opcode
from repro.plugins import register_model
from repro.specmodels.base import SpeculationModel


@register_model("pht")
class PhtModel(SpeculationModel):
    """Conditional-branch (bounds-check bypass) misprediction."""

    name = "pht"
    #: entry happens at rewritten ``checkpoint`` pseudo-ops, not dynamically.
    dynamic = False
    nests = True
    #: the checkpoint pseudo-op carries the entry cost in the cost model.
    entry_cost = 0
    source_opcodes = frozenset({Opcode.CHECKPOINT, Opcode.JCC})

    def mispredicted_targets(self, emulator, instr: Instruction,
                             actual: int) -> List[int]:
        """The wrong direction of the branch (resolved by the trampoline)."""
        return []
