"""Spectre-STL: store-to-load-bypass (speculative store bypass, variant 4).

A load that is younger than an in-flight store to the same address can be
issued before the store's address is known, speculatively reading the
**stale** pre-store memory.  The model keeps a bounded window of recent
architectural stores — each record holds the overwritten bytes (and their
DIFT tags) exactly the way a :class:`~repro.runtime.machine.StateJournal`
undo entry does, and indeed the records are kept as journal-style
``(True, addr, old_bytes)`` tuples in a :class:`StateJournal` instance.

When a load matches a window entry the emulator enters a simulation,
**rewinds the stored range to its stale contents** (through the normal
journaled guest-write path, so rollback restores the truth) and re-issues
the load inside the simulation: every downstream dataflow — tag
propagation, policy checks, dependent accesses — then operates on the
stale value with no special-casing.

A record forwards at most once and is evicted after ``window`` newer
stores, so the bypass window is short-lived, like the real store queue.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.plugins import register_model
from repro.runtime.machine import StateJournal
from repro.specmodels.base import SpeculationModel

#: Bounded number of in-flight (bypassable) stores.
DEFAULT_WINDOW = 8


@register_model("stl")
class StlModel(SpeculationModel):
    """Loads speculatively bypassing older same-address stores."""

    name = "stl"
    #: store-to-load forwarding windows are too short to nest a second
    #: simulation inside an existing one.
    nests = False
    entry_cost = 1
    source_opcodes = frozenset({Opcode.STORE, Opcode.LOAD})
    predicts_stale_load = True
    observes_stores = True

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self.window = window
        #: journal-style undo records of recent architectural stores;
        #: entries are ``(True, addr, old_bytes)`` like any memory undo.
        self.journal = StateJournal()
        #: per-record DIFT tags of the *stored value* (the emulator's tag
        #: propagation runs before the store handler, so the tags read at
        #: observation time describe the value this store just wrote).
        #: A later record's stale bytes were written by the next-older
        #: record at the same address, so *its* value tags are the stale
        #: tags — exactly how a store queue forwards (value, taint) pairs.
        self._value_tags: List[Optional[bytes]] = []

    # -- lifecycle ----------------------------------------------------------
    def begin_run(self) -> None:
        """Store queues do not survive a fresh process."""
        self.journal.clear()
        self._value_tags.clear()

    # -- store window --------------------------------------------------------
    def on_store(self, emulator, instr: Instruction, addr: int,
                 size: int) -> None:
        """Record the pre-store contents of an architectural store."""
        memory = emulator.machine.memory
        if not memory.is_mapped(addr, size):
            return
        old = memory.read_bytes(addr, size)
        dift = emulator.dift
        tags: Optional[bytes] = None
        if dift is not None:
            tags = bytes(
                dift.get_mem_tag(addr + i, 1) for i in range(size)
            )
        self.journal.entries.append((True, addr, old))
        self._value_tags.append(tags)
        if len(self.journal.entries) > self.window:
            del self.journal.entries[0]
            del self._value_tags[0]

    def find(self, addr: int, size: int) -> Optional[int]:
        """Index of the youngest window record for exactly ``[addr, size)``.

        The store queue only forwards same-address, same-width pairs;
        partial overlaps do not bypass.  Returns ``None`` when no in-window
        store covers the load.
        """
        entries = self.journal.entries
        for index in range(len(entries) - 1, -1, -1):
            _, rec_addr, old = entries[index]
            if rec_addr == addr and len(old) == size:
                return index
        return None

    def take(self, index: int) -> Tuple[bytes, Optional[bytes]]:
        """Consume one record: each store bypasses at most one load, after
        which the store counts as committed.  Returns the stale bytes and
        (when DIFT was attached) their stale tag bytes — the value tags of
        the next-older in-window store to the same address, which is the
        store that wrote those stale bytes.  With no older record the
        provenance is unknown and the stale bytes count as untainted."""
        _, addr, old = self.journal.entries[index]
        tags: Optional[bytes] = None
        for older in range(index - 1, -1, -1):
            _, older_addr, older_old = self.journal.entries[older]
            if older_addr == addr and len(older_old) == len(old):
                tags = self._value_tags[older]
                break
        if tags is None and self._value_tags[index] is not None:
            tags = bytes(len(old))
        del self.journal.entries[index]
        del self._value_tags[index]
        return old, tags
