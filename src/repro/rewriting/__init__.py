"""Generic static binary rewriting framework.

Provides the pass infrastructure shared by Teapot (:mod:`repro.core`) and
the baselines (:mod:`repro.baselines`):

* :class:`RewritePass` / :class:`PassManager` — ordered IR-to-IR passes with
  per-pass statistics,
* :mod:`repro.rewriting.reassemble` — turning a (rewritten) IR module back
  into an :class:`~repro.isa.assembler.AsmProgram` and a fresh TELF binary,
  completing the reassembleable-disassembly loop,
* small helper utilities for inserting instructions relative to existing
  ones without invalidating block structure.
"""

from repro.rewriting.passes import PassManager, RewritePass, RewriteError
from repro.rewriting.reassemble import module_to_asm_program, reassemble

__all__ = [
    "PassManager",
    "RewritePass",
    "RewriteError",
    "module_to_asm_program",
    "reassemble",
]
