"""Reassembly: turning a (rewritten) IR module back into a TELF binary.

This closes the reassembleable-disassembly loop (paper §5.2): the rewriter
can freely insert instrumentation, duplicate functions and re-order blocks,
because every code/data reference in the IR is symbolic; the reassembler
re-lays everything out and produces a fresh binary image.
"""

from __future__ import annotations

from typing import Optional

from repro.disasm.ir import Module
from repro.isa.assembler import AsmFunction, AsmProgram, Assembler
from repro.loader.binary_format import TelfBinary
from repro.loader.layout import MemoryLayout


def module_to_asm_program(module: Module) -> AsmProgram:
    """Lower an IR module to an assembly-level program.

    Block labels become local labels placed at the start of each block, and
    blocks are emitted in layout order so fall-through edges keep working.
    The imports list is carried over verbatim (preserving import indices),
    as are data objects (including their pointer slots) and the entry.
    """
    program = AsmProgram(
        entry=module.entry,
        extra_imports=list(module.imports),
        metadata=dict(module.metadata),
    )
    for func in module.functions:
        asm_func = AsmFunction(func.name)
        for block in func.blocks:
            asm_func.append(block.label)
            for instr in block.instructions:
                asm_func.append(instr)
        program.add_function(asm_func)
    for obj in module.data_objects:
        program.add_data(obj)
    return program


def reassemble(module: Module, layout: Optional[MemoryLayout] = None) -> TelfBinary:
    """Reassemble an IR module into a fresh TELF binary."""
    assembler = Assembler(layout or module.layout)
    return assembler.assemble(module_to_asm_program(module))
