"""Pass infrastructure for IR-level binary rewriting.

Both Teapot and the baseline rewriters are organised as ordered lists of
:class:`RewritePass` objects run by a :class:`PassManager`.  A pass mutates
the :class:`~repro.disasm.ir.Module` in place and may record statistics
(instrumentation counts are reported by the examples and checked in tests).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List

from repro.disasm.ir import Module


class RewriteError(RuntimeError):
    """Raised when a rewriting pass cannot be applied to a module."""


class RewritePass(abc.ABC):
    """Base class for IR rewriting passes."""

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__
        #: Free-form counters filled in by :meth:`run`.
        self.stats: Dict[str, int] = {}

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named statistic."""
        self.stats[counter] = self.stats.get(counter, 0) + amount

    @abc.abstractmethod
    def run(self, module: Module) -> None:
        """Apply the pass to ``module`` in place."""


@dataclass
class PassManager:
    """Runs a fixed sequence of rewriting passes over a module."""

    passes: List[RewritePass] = field(default_factory=list)

    def add(self, rewrite_pass: RewritePass) -> "PassManager":
        """Append a pass to the pipeline (fluent)."""
        self.passes.append(rewrite_pass)
        return self

    def run(self, module: Module) -> Dict[str, Dict[str, int]]:
        """Run every pass in order and return per-pass statistics."""
        all_stats: Dict[str, Dict[str, int]] = {}
        for rewrite_pass in self.passes:
            rewrite_pass.stats = {}
            rewrite_pass.run(module)
            all_stats[rewrite_pass.name] = dict(rewrite_pass.stats)
        return all_stats
