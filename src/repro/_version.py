"""Single source of the package version.

``setup.py`` reads this file textually (no import, so packaging never
executes the library), ``repro.__version__`` re-exports it, and the
telemetry layer stamps it into trace headers, ``RunResult`` artifacts and
``BENCH_*.json`` records so every emitted file records the code that
produced it.
"""

__version__ = "0.7.0"
