"""The experiment harness: one function per paper figure/table.

Every function here is deterministic (seeded fuzzing, cycle-count cost
model) and parameterised by a scale knob (input size / fuzzing iterations)
so the benchmarks can run in "quick" mode — the same idea as the paper
artifact's three-hour approximation of the 24-hour campaigns
(Appendix B.7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import repro.api as api
from repro.campaign.spec import CampaignSpec
from repro.campaign.summary import CampaignSummary
from repro.campaign.worker import instrumented_binary
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.hardening.passes import STRATEGIES
from repro.hardening.pipeline import HardeningResult
from repro.minic.codegen import CompilerOptions, SwitchLowering
from repro.minic.compiler import compile_source
from repro.analysis.metrics import DetectionScore, classify_reports
from repro.targets import get_target
from repro.targets.injection import inject_gadgets

#: SpecTaint's Table 3 numbers as reported in the SpecTaint paper (the
#: artifact could not be re-run; see paper §7.2 and Appendix B.8.2).
SPECTAINT_REPORTED_TABLE3: Dict[str, Dict[str, int]] = {
    "jsmn": {"GT": 3, "TP": 3, "FP": 0, "FN": 0},
    "libyaml": {"GT": 10, "TP": 7, "FP": 0, "FN": 3},
    "libhtp": {"GT": 7, "TP": 7, "FP": 0, "FN": 0},
    "brotli": {"GT": 13, "TP": 12, "FP": 0, "FN": 1},
}


# ---------------------------------------------------------------------------
# Run-time performance (Figures 1 and 7)
# ---------------------------------------------------------------------------

@dataclass
class RuntimeRow:
    """One program's normalized run times (a group of bars in Figure 7)."""

    program: str
    native_cycles: int
    tool_cycles: Dict[str, int] = field(default_factory=dict)

    def normalized(self, tool: str) -> float:
        """Normalized run time of a tool (instrumented / native)."""
        return self.tool_cycles[tool] / self.native_cycles

    def as_dict(self) -> Dict[str, float]:
        """Row as {tool: normalized run time}."""
        return {tool: round(self.normalized(tool), 1) for tool in self.tool_cycles}


def run_figure7(
    programs: Sequence[str] = ("jsmn", "libyaml", "libhtp", "brotli", "openssl"),
    input_size: int = 200,
    tools: Sequence[str] = ("spectaint", "specfuzz", "teapot"),
    engine: str = "fast",
) -> List[RuntimeRow]:
    """Figure 7: normalized run time of each tool on each program.

    Nested speculation and all heuristics are disabled for every tool, as in
    the paper's §7.1 setup.  ``engine`` selects the emulator engine; the
    reported cycle counts are engine-invariant.

    One :meth:`repro.api.Pipeline.bench` stage per program — the facade
    implements the exact §7.1 measurement, so the rows are bit-identical
    with the pre-facade harness.
    """
    rows: List[RuntimeRow] = []
    for name in programs:
        run = (api.pipeline(target=name, engine=engine)
               .bench(input_size=input_size,
                      tools=tuple(t for t in api.BENCH_TOOLS if t in tools))
               .report())
        payload = run.stage("bench").payload
        rows.append(RuntimeRow(
            program=name,
            native_cycles=payload["native_cycles"],
            tool_cycles=dict(payload["tool_cycles"]),
        ))
    return rows


def run_figure1(input_size: int = 200) -> List[RuntimeRow]:
    """Figure 1 (motivation): SpecTaint vs SpecFuzz on jsmn and libyaml."""
    return run_figure7(programs=("jsmn", "libyaml"), input_size=input_size,
                       tools=("spectaint", "specfuzz"))


# ---------------------------------------------------------------------------
# Switch lowering (Figure 2)
# ---------------------------------------------------------------------------

_SWITCH_SOURCE = r"""
int handled = 0;

int dispatch(int value) {
    switch (value) {
        case 0: { handled = 1; }
        case 1: { handled = 2; }
        case 2: { handled = 3; }
        case 3: { handled = 4; }
        default: { handled = 0; }
    }
    return handled;
}

int main() {
    byte buf[8];
    int n = read_input(buf, 8);
    if (n < 1) {
        return 0;
    }
    return dispatch(buf[0]);
}
"""


@dataclass
class SwitchLoweringResult:
    """Figure 2: gadget exposure under the two switch lowerings."""

    lowering: str
    conditional_branches: int
    speculation_entries: int

    @property
    def spectre_v1_exposed(self) -> bool:
        """Whether the lowering creates mispredictable conditional branches."""
        return self.conditional_branches > 1


def run_figure2(fuzz_iterations: int = 0) -> List[SwitchLoweringResult]:
    """Figure 2: the same switch compiled as a branch chain vs a jump table.

    The branch-chain lowering (GCC-style) produces one conditional branch
    per case — each a potential Spectre-V1 entry point — whereas the
    jump-table lowering (Clang-style) produces a single bounds check and an
    indirect jump, which is not mispredicted in the Spectre-V1 sense.
    """
    from repro.disasm import disassemble

    results: List[SwitchLoweringResult] = []
    for lowering in (SwitchLowering.BRANCH_CHAIN, SwitchLowering.JUMP_TABLE):
        binary = compile_source(_SWITCH_SOURCE, CompilerOptions(switch_lowering=lowering))
        module = disassemble(binary)
        dispatch_fn = module.function("dispatch")
        branch_count = dispatch_fn.conditional_branch_count()

        config = TeapotConfig()
        instrumented = TeapotRewriter(config).instrument(binary)
        runtime = TeapotRuntime(instrumented, config=config)
        entries = 0
        for value in range(8):
            result = runtime.run(bytes([value * 40 % 256]))
            entries += result.spec_stats.get("simulations_started", 0)
        results.append(
            SwitchLoweringResult(
                lowering=lowering.value,
                conditional_branches=branch_count,
                speculation_entries=entries,
            )
        )
    return results


# ---------------------------------------------------------------------------
# Artificial gadget injection (Table 3)
# ---------------------------------------------------------------------------

@dataclass
class InjectionRow:
    """One program's Table 3 row: per-tool detection scores."""

    program: str
    scores: Dict[str, DetectionScore] = field(default_factory=dict)
    spectaint_reported: Optional[Dict[str, int]] = None

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Row as {tool: score-row}."""
        out = {tool: score.as_row() for tool, score in self.scores.items()}
        if self.spectaint_reported is not None:
            out["spectaint_reported"] = dict(self.spectaint_reported)
        return out


def run_table3(
    programs: Sequence[str] = ("jsmn", "libyaml", "libhtp", "brotli"),
    fuzz_iterations: int = 40,
    seed: int = 1234,
    workers: int = 1,
    engine: str = "fast",
) -> List[InjectionRow]:
    """Table 3: detection of artificially injected gadgets.

    Following the paper: the ordinary taint sources are disabled and only
    the artificial gadgets' input (``attack_input()``) is attacker-direct;
    the Massage policy is disabled to avoid attacker-indirect noise (this
    is the campaign worker's ``injected``-variant configuration).

    The fuzzing itself is routed through the campaign scheduler —
    ``workers > 1`` fans the (program × tool) matrix over a process pool
    without changing any result, because the legacy single-shard seeding is
    preserved (``derive_seeds=False`` keeps every job on ``seed``).
    """
    spec = CampaignSpec(
        targets=tuple(programs),
        tools=("teapot", "specfuzz"),
        variants=("injected",),
        iterations=fuzz_iterations,
        rounds=1,
        shards=1,
        seed=seed,
        workers=workers,
        derive_seeds=False,
        skip_uninjectable=False,
        engine=engine,
    )
    summary = api.pipeline().campaign(spec=spec).report().summary

    rows: List[InjectionRow] = []
    for name in programs:
        # Recompute the ground truth and the pc->function mapping binaries;
        # both are deterministic and memoised per process, so the serial
        # path reuses the worker's own compiles.
        injected = inject_gadgets(get_target(name))
        row = InjectionRow(program=name,
                           spectaint_reported=SPECTAINT_REPORTED_TABLE3.get(name))
        row.scores["teapot"] = classify_reports(
            injected,
            summary.row(name, "teapot", "injected").collection,
            instrumented_binary(name, "teapot", "injected"),
            require_user_attacker=True,
        )
        row.scores["specfuzz"] = classify_reports(
            injected,
            summary.row(name, "specfuzz", "injected").collection,
            instrumented_binary(name, "specfuzz", "injected"),
            require_user_attacker=False,
        )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Vanilla binaries (Table 4)
# ---------------------------------------------------------------------------

@dataclass
class VanillaRow:
    """One program's Table 4 row."""

    program: str
    teapot_by_category: Dict[str, int] = field(default_factory=dict)
    teapot_total: int = 0
    specfuzz_total: int = 0
    spectaint_total: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Row as a flat dictionary."""
        return {
            "program": self.program,
            "spectaint": self.spectaint_total,
            "specfuzz": self.specfuzz_total,
            "teapot_total": self.teapot_total,
            **{f"teapot_{k}": v for k, v in sorted(self.teapot_by_category.items())},
        }


def run_table4(
    programs: Sequence[str] = ("jsmn", "libyaml", "libhtp", "brotli", "openssl"),
    fuzz_iterations: int = 40,
    seed: int = 99,
    workers: int = 1,
    engine: str = "fast",
) -> List[VanillaRow]:
    """Table 4: gadgets found in the unmodified binaries.

    Routed through the campaign scheduler (one job per program × tool);
    ``workers > 1`` parallelises the matrix without changing results, and
    ``engine`` selects the (result-invariant) emulator engine.
    """
    spec = CampaignSpec(
        targets=tuple(programs),
        tools=("teapot", "specfuzz", "spectaint"),
        variants=("vanilla",),
        iterations=fuzz_iterations,
        rounds=1,
        shards=1,
        seed=seed,
        workers=workers,
        derive_seeds=False,
        engine=engine,
    )
    summary = api.pipeline().campaign(spec=spec).report().summary

    rows: List[VanillaRow] = []
    for name in programs:
        teapot = summary.row(name, "teapot", "vanilla")
        rows.append(VanillaRow(
            program=name,
            teapot_by_category=dict(teapot.by_category),
            teapot_total=teapot.unique_gadgets,
            specfuzz_total=summary.row(name, "specfuzz", "vanilla").unique_gadgets,
            spectaint_total=summary.row(name, "spectaint", "vanilla").unique_gadgets,
        ))
    return rows


# ---------------------------------------------------------------------------
# Hardening: targeted mitigation vs fence-everything (detect→patch→verify)
# ---------------------------------------------------------------------------

@dataclass
class HardeningRow:
    """One target's hardening account: per-strategy verified results.

    The headline comparison of the detect→patch→verify workflow: targeted
    mitigations (report-guided fences, SLH-style masking) must eliminate
    every reported site just like the fence-everything baseline, at a
    strictly lower run-time cost.
    """

    target: str
    variant: str
    results: Dict[str, HardeningResult] = field(default_factory=dict)

    @property
    def baseline_overhead(self) -> float:
        """Overhead of the fence-every-branch baseline, when measured."""
        baseline = self.results.get("fence-all")
        return baseline.overhead if baseline is not None else 1.0

    def as_dict(self) -> Dict[str, object]:
        """Row as {strategy: summary numbers} plus the target identity."""
        out: Dict[str, object] = {"target": self.target, "variant": self.variant}
        for strategy, result in self.results.items():
            out[strategy] = {
                "sites": len(result.sites_before),
                "eliminated": len(result.eliminated),
                "residual": len(result.residual),
                "new": len(result.new_sites),
                "overhead": round(result.overhead, 3),
            }
        return out


def run_hardening_matrix(
    targets: Sequence[str] = ("gadgets",),
    strategies: Sequence[str] = STRATEGIES,
    variant: str = "vanilla",
    tool: str = "teapot",
    iterations: int = 400,
    seed: int = 1234,
    engine: str = "fast",
    perf_input_size: int = 200,
) -> List[HardeningRow]:
    """Harden every target with every strategy and verify by re-fuzzing.

    The detection campaign runs once per target; all strategies patch from
    the same report set, so their eliminated/residual/overhead numbers are
    directly comparable.  Every step goes through the :mod:`repro.api`
    Pipeline — one ``fuzz`` detection run per target, then one
    ``reports → harden → refuzz`` chain per strategy — and produces the
    same :class:`HardeningResult` rows as the classic
    :func:`repro.hardening.pipeline.run_hardening` entry point.
    """
    rows: List[HardeningRow] = []
    for name in targets:
        row = HardeningRow(target=name, variant=variant)
        # One detection campaign per target; every strategy patches from
        # the same report set so the comparison is apples to apples.
        detection = (api.pipeline(target=name, variant=variant, tool=tool,
                                  engine=engine, seed=seed)
                     .fuzz(iterations=iterations)
                     .report())
        reports = detection.gadget_reports()
        for strategy in strategies:
            verified = (api.pipeline(target=name, variant=variant, tool=tool,
                                     engine=engine, seed=seed,
                                     perf_input_size=perf_input_size)
                        .reports(reports)
                        .harden(strategy)
                        .refuzz(iterations=iterations)
                        .report())
            row.results[strategy] = verified.hardening_result
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Whole-suite campaign matrices
# ---------------------------------------------------------------------------

def run_matrix(
    targets: Optional[Sequence[str]] = None,
    tools: Sequence[str] = ("teapot",),
    variants: Sequence[str] = ("vanilla",),
    iterations: int = 200,
    rounds: int = 2,
    shards: int = 2,
    seed: int = 0,
    workers: int = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    engine: str = "fast",
) -> CampaignSummary:
    """Run a whole-suite campaign matrix and return its summary.

    This is the library-level equivalent of ``python -m repro.campaign``:
    sharded corpora with cross-worker sync every round, report dedup
    across workers, and optional checkpoint/resume — routed through the
    :meth:`repro.api.Pipeline.campaign` stage.
    """
    from repro.targets import runnable_targets

    spec = CampaignSpec(
        targets=tuple(targets if targets is not None else runnable_targets()),
        tools=tuple(tools),
        variants=tuple(variants),
        iterations=iterations,
        rounds=rounds,
        shards=shards,
        seed=seed,
        workers=workers,
        engine=engine,
    )
    run = (api.pipeline()
           .campaign(spec=spec, checkpoint=checkpoint_path, resume=resume)
           .report())
    return run.summary
