"""Experiment harness and result aggregation for the paper's evaluation."""

from repro.analysis.metrics import (
    DetectionScore,
    classify_reports,
    precision_recall,
)
from repro.analysis.experiments import (
    RuntimeRow,
    InjectionRow,
    VanillaRow,
    SwitchLoweringResult,
    run_figure1,
    run_figure2,
    run_figure7,
    run_table3,
    run_table4,
)

__all__ = [
    "DetectionScore",
    "classify_reports",
    "precision_recall",
    "RuntimeRow",
    "InjectionRow",
    "VanillaRow",
    "SwitchLoweringResult",
    "run_figure1",
    "run_figure2",
    "run_figure7",
    "run_table3",
    "run_table4",
]
