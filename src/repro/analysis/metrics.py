"""Detection metrics: mapping gadget reports to ground truth (Table 3).

The paper scores detectors on artificially injected gadgets: every report
that does not correspond to an injected gadget counts as a false positive,
and injected gadgets that produce no report count as false negatives
(paper §7.2).  Reports are attributed to injected gadgets at *function*
granularity — a report whose program counter falls inside a function that
received an injection is credited to that function's gadgets — because the
injected snippet is the only attacker-reachable code in that function under
the Table 3 taint configuration (the normal input taint sources are
disabled, so only ``attack_input()`` data carries the User tag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.loader.binary_format import TelfBinary
from repro.sanitizers.reports import AttackerClass, GadgetReport
from repro.targets.injection import InjectedTarget


@dataclass
class DetectionScore:
    """TP/FP/FN counts plus derived precision and recall (a Table 3 cell)."""

    ground_truth: int
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was reported at all."""
        reported = self.true_positives + self.false_positives
        if reported == 0:
            return 1.0
        return self.true_positives / reported

    @property
    def recall(self) -> float:
        """TP / GT."""
        if self.ground_truth == 0:
            return 1.0
        return self.true_positives / self.ground_truth

    def as_row(self) -> Dict[str, float]:
        """The score as a Table 3 style row."""
        return {
            "GT": self.ground_truth,
            "TP": self.true_positives,
            "FP": self.false_positives,
            "FN": self.false_negatives,
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
        }


def _function_of(binary: TelfBinary, pc: int) -> Optional[str]:
    symbol = binary.function_at(pc)
    if symbol is None:
        return None
    name = symbol.name
    # Reports from the Shadow Copy map back to the original function.
    if name.endswith("$spec"):
        name = name[: -len("$spec")]
    return name


def classify_reports(
    injected: InjectedTarget,
    reports: Iterable[GadgetReport],
    instrumented_binary: TelfBinary,
    require_user_attacker: bool = True,
) -> DetectionScore:
    """Score a detector's reports against an injected target's ground truth.

    Args:
        injected: the injection result carrying the ground truth.
        reports: the (deduplicated) reports the detector produced.
        instrumented_binary: the binary the reports' program counters refer
            to (the instrumented one for Teapot/SpecFuzz, the original for
            SpecTaint).
        require_user_attacker: only count reports classified as
            attacker-direct (used for Teapot/SpecTaint, whose policies
            distinguish attacker classes; SpecFuzz cannot and passes False).
    """
    gadget_functions = injected.functions_with_gadgets()
    hit_functions: Set[str] = set()
    false_positives = 0
    for report in reports:
        if require_user_attacker and report.attacker is AttackerClass.MASSAGE:
            continue
        function = _function_of(instrumented_binary, report.pc)
        if function is not None and function in gadget_functions:
            hit_functions.add(function)
        else:
            false_positives += 1

    true_positives = 0
    false_negatives = 0
    for gadget in injected.gadgets:
        if gadget.function in hit_functions:
            true_positives += 1
        else:
            false_negatives += 1
    return DetectionScore(
        ground_truth=injected.ground_truth_count,
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )


def precision_recall(true_positives: int, false_positives: int,
                     ground_truth: int) -> Tuple[float, float]:
    """Convenience helper returning ``(precision, recall)``."""
    score = DetectionScore(
        ground_truth=ground_truth,
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=ground_truth - true_positives,
    )
    return score.precision, score.recall
