"""Baseline detectors the paper compares against.

* :mod:`repro.baselines.specfuzz` — SpecFuzz (USENIX Security '20), the
  compiler-based detector: single-copy instrumentation with per-site
  ``if (in_simulation)`` guards and an ASan-only gadget policy.
* :mod:`repro.baselines.spectaint` — SpecTaint (NDSS '21), the only prior
  binary-level detector: built on a full-system emulator (QEMU/DECAF), with
  whole-system DIFT, no program-level bounds information, and a five-visit
  cap on per-branch speculation.
"""

from repro.baselines.specfuzz import SpecFuzzConfig, SpecFuzzRewriter, SpecFuzzRuntime
from repro.baselines.spectaint import SpecTaintAnalyzer, SpecTaintConfig, SpecTaintEmulator

__all__ = [
    "SpecFuzzConfig",
    "SpecFuzzRewriter",
    "SpecFuzzRuntime",
    "SpecTaintAnalyzer",
    "SpecTaintConfig",
    "SpecTaintEmulator",
]
