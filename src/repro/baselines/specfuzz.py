"""SpecFuzz baseline: compiler-style single-copy instrumentation.

SpecFuzz (paper §2.2.1, §3.2, Listing 3) instruments the program during
compilation: normal-execution code and speculation-simulation code coexist
in a single copy, and every piece of simulation-only instrumentation —
ASan checks, memory logging, restore points — is wrapped in an
``if (in_simulation)`` guard that must be evaluated at run time on *every*
execution, normal or speculative.  That guard traffic is exactly the
overhead Speculation Shadows eliminates, and it is modelled here by
emitting an explicit ``guard.check`` pseudo-op (with its own cycle cost)
before each guarded instrumentation site.

Detection-wise SpecFuzz flags **every** speculative out-of-bounds access as
a gadget (no data-flow tracking), which reproduces its large
false-positive counts in the paper's Tables 3 and 4.

Although the real SpecFuzz requires source code, its instrumentation is
expressed here as a rewriting pipeline over the same IR so that both tools
see the exact same input program; the compile-time-vs-binary differences
the paper discusses (Figure 2) are modelled by the mini-C compiler's switch
lowering options instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import TeapotConfig
from repro.core.trampolines import TrampolinePass
from repro.coverage.sancov import CoverageRuntime
from repro.disasm.disassembler import disassemble
from repro.disasm.ir import Module
from repro.isa.instructions import (
    Instruction,
    Opcode,
    is_conditional_branch,
    is_pseudo,
    is_serializing,
)
from repro.isa.operands import Imm
from repro.loader.binary_format import TelfBinary
from repro.rewriting.passes import PassManager, RewritePass
from repro.rewriting.reassemble import reassemble
from repro.runtime.costs import CostModel, DEFAULT_COSTS
from repro.runtime.emulator import ExecutionResult
from repro.runtime.externals import ExternalRegistry
from repro.runtime.fastpath import resolve_engine
from repro.runtime.speculation import (
    DisabledNestingPolicy,
    SpecFuzzNestingPolicy,
)
from repro.sanitizers.policy import SpecFuzzPolicy
from repro.core.instrumentation import _access_info


@dataclass
class SpecFuzzConfig:
    """Knobs of the SpecFuzz baseline (kept close to Teapot's for fairness)."""

    rob_budget: int = 250
    nested_speculation: bool = True
    max_depth: int = 6
    ramp: int = 16
    restore_interval: int = 50
    coverage: bool = True
    allowlist_frame_accesses: bool = True
    max_steps: int = 5_000_000
    #: emulator engine ("fast" or "legacy"); results are engine-invariant.
    engine: str = "fast"
    #: speculation variants to simulate.  The real SpecFuzz is PHT-only;
    #: the model subsystem extends the baseline past the original tool.
    variants: Tuple[str, ...] = ("pht",)
    #: optional :class:`repro.telemetry.Telemetry` observer (see
    #: :class:`repro.core.config.TeapotConfig.telemetry`).
    telemetry: object = None

    def without_nesting(self) -> "SpecFuzzConfig":
        """Copy with nested speculation disabled (for the §7.1 comparison)."""
        copy = SpecFuzzConfig(**self.__dict__)
        copy.nested_speculation = False
        return copy

    def with_engine(self, engine: str) -> "SpecFuzzConfig":
        """A copy of this configuration running on a different engine."""
        copy = SpecFuzzConfig(**self.__dict__)
        copy.engine = engine
        return copy

    def with_variants(self, *variants: str) -> "SpecFuzzConfig":
        """A copy of this configuration simulating different variants."""
        copy = SpecFuzzConfig(**self.__dict__)
        copy.variants = tuple(variants)
        return copy


class MixedInstrumentationPass(RewritePass):
    """Single-copy instrumentation with per-site guards (paper Listing 3)."""

    name = "specfuzz-mixed-instrumentation"

    def __init__(self, config: SpecFuzzConfig) -> None:
        super().__init__()
        self.config = config
        self._guard_counter = 0

    def run(self, module: Module) -> None:
        for func in module.functions:
            for block in func.blocks:
                block.instructions = self._instrument_block(block.instructions)
        module.metadata["tool"] = "specfuzz"

    def _next_guard(self) -> int:
        self._guard_counter += 1
        return self._guard_counter

    def _instrument_block(self, instructions: List[Instruction]) -> List[Instruction]:
        out: List[Instruction] = []
        since_restore = 0
        if self.config.coverage:
            # SpecFuzz traces coverage with the full (expensive) callback in
            # every block, in both execution modes.
            out.append(Instruction(Opcode.COV_TRACE, [Imm(self._next_guard())]))
        for instr in instructions:
            if not is_pseudo(instr):
                access = _access_info(instr)
                if access is not None:
                    mem, size, is_write = access
                    allowlisted = (
                        self.config.allowlist_frame_accesses
                        and mem.is_frame_relative_constant
                    )
                    if not allowlisted:
                        out.append(Instruction(Opcode.GUARD_CHECK, []))
                        out.append(
                            Instruction(Opcode.ASAN_CHECK,
                                        [mem, Imm(1 if is_write else 0)], size=size)
                        )
                        self.bump("guarded_asan_checks")
                    if is_write:
                        out.append(Instruction(Opcode.GUARD_CHECK, []))
                        out.append(Instruction(Opcode.MEMLOG, [mem], size=size))
                        self.bump("guarded_memlogs")
                if instr.opcode is Opcode.ECALL or is_serializing(instr):
                    out.append(Instruction(Opcode.GUARD_CHECK, []))
                    out.append(Instruction(Opcode.RESTORE_ALWAYS, []))
                    self.bump("guarded_unconditional_restores")
                    since_restore = 0
            out.append(instr)
            if not is_pseudo(instr):
                since_restore += 1
                if since_restore >= self.config.restore_interval:
                    out.append(Instruction(Opcode.GUARD_CHECK, []))
                    out.append(Instruction(Opcode.RESTORE_COND, []))
                    self.bump("guarded_conditional_restores")
                    since_restore = 0
        # Guarded conditional restore point near the end of every block.
        insert_at = len(out)
        if out and out[-1].opcode in (Opcode.JMP, Opcode.JCC, Opcode.RET,
                                      Opcode.IJMP, Opcode.ICALL, Opcode.CALL,
                                      Opcode.HALT):
            insert_at -= 1
        out.insert(insert_at, Instruction(Opcode.RESTORE_COND, []))
        out.insert(insert_at, Instruction(Opcode.GUARD_CHECK, []))
        self.bump("guarded_conditional_restores")
        return out


class SpecFuzzRewriter:
    """Static instrumentation pipeline for the SpecFuzz baseline."""

    tool_name = "specfuzz"

    def __init__(self, config: Optional[SpecFuzzConfig] = None) -> None:
        self.config = config or SpecFuzzConfig()
        self.last_stats: Dict[str, Dict[str, int]] = {}

    def build_pass_manager(self) -> PassManager:
        """Mixed instrumentation followed by single-copy trampolines."""
        manager = PassManager()
        manager.add(MixedInstrumentationPass(self.config))
        teapot_like = TeapotConfig(nested_speculation=self.config.nested_speculation)
        manager.add(TrampolinePass(teapot_like, single_copy=True))
        return manager

    def instrument_module(self, module: Module) -> Module:
        """Run the instrumentation passes over a disassembled module."""
        manager = self.build_pass_manager()
        self.last_stats = manager.run(module)
        module.metadata["tool"] = self.tool_name
        return module

    def instrument(self, binary: TelfBinary) -> TelfBinary:
        """Instrument a binary (disassemble → rewrite → reassemble)."""
        module = disassemble(binary)
        module = self.instrument_module(module)
        return reassemble(module)


@dataclass
class SpecFuzzRuntime:
    """Runtime bundle for executing/fuzzing a SpecFuzz-instrumented binary."""

    binary: TelfBinary
    config: SpecFuzzConfig = field(default_factory=SpecFuzzConfig)
    externals: Optional[ExternalRegistry] = None
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if self.config.nested_speculation:
            policy = SpecFuzzNestingPolicy(max_depth=self.config.max_depth,
                                           ramp=self.config.ramp)
        else:
            policy = DisabledNestingPolicy()
        emulator_cls, controller_cls = resolve_engine(self.config.engine)
        self.controller = controller_cls(policy, rob_budget=self.config.rob_budget)
        self.detection_policy = SpecFuzzPolicy()
        self.coverage = CoverageRuntime()
        if tuple(self.config.variants) == ("pht",):
            self.spec_models = None
        else:
            from repro.specmodels import build_models

            self.spec_models = build_models(self.config.variants)
        self.emulator = emulator_cls(
            self.binary,
            externals=self.externals,
            cost_model=self.cost_model,
            controller=self.controller,
            policy=self.detection_policy,
            coverage=self.coverage,
            max_steps=self.config.max_steps,
            spec_models=self.spec_models,
            telemetry=self.config.telemetry,
        )

    def run(self, input_data: bytes, argv=None) -> ExecutionResult:
        """Execute the instrumented binary over one input."""
        return self.emulator.run(input_data, argv=argv)

    @property
    def engine(self) -> str:
        """Name of the emulator engine this runtime executes on."""
        return self.config.engine

    def with_engine(self, engine: str) -> "SpecFuzzRuntime":
        """A fresh runtime over the same binary on a different engine."""
        return SpecFuzzRuntime(
            self.binary,
            config=self.config.with_engine(engine),
            externals=self.externals,
            cost_model=self.cost_model,
        )

    def with_variants(self, *variants: str) -> "SpecFuzzRuntime":
        """A fresh runtime simulating a different speculation-variant set."""
        return SpecFuzzRuntime(
            self.binary,
            config=self.config.with_variants(*variants),
            externals=self.externals,
            cost_model=self.cost_model,
        )
