"""SpecTaint baseline: full-system-emulation-based detection.

SpecTaint (paper §2.2.2, §3.1) is the only prior binary-level detector.  It
needs **no static rewriting** — the program runs unmodified inside a
DECAF/QEMU emulator that (a) forces branch mispredictions dynamically,
(b) tracks taint for every instruction at the emulation layer, and
(c) reports a gadget whenever user-controlled data is loaded speculatively
and later dereferenced.  Those properties are modelled here by

* :class:`SpecTaintEmulator`, an :class:`~repro.runtime.emulator.Emulator`
  subclass that performs speculation entry, budget checks and policy sink
  checks itself (no instrumentation pseudo-ops in the binary), and
* a cost model with a large per-instruction *emulation multiplier*
  (``SPECTAINT_EMULATION_MULTIPLIER``) standing in for dynamic binary
  translation plus whole-system DIFT, which is what makes SpecTaint an
  order of magnitude slower than compiler-based instrumentation
  (paper Figure 1).

Its nested-speculation heuristic enters speculation for each branch at most
five times (paper §6.1), the root cause of the false negatives the paper
reports in §7.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.coverage.sancov import CoverageRuntime
from repro.isa.instructions import Opcode
from repro.loader.binary_format import TelfBinary
from repro.runtime.costs import (
    CostModel,
    DEFAULT_COSTS,
    SPECTAINT_EMULATION_MULTIPLIER,
)
from repro.runtime.emulator import Emulator, ExecutionResult
from repro.runtime.externals import ExternalRegistry
from repro.runtime.speculation import (
    DisabledNestingPolicy,
    SpecTaintNestingPolicy,
    SpeculationController,
)
from repro.sanitizers.policy import SpecTaintPolicy


@dataclass
class SpecTaintConfig:
    """Configuration of the SpecTaint baseline."""

    rob_budget: int = 250
    nested_speculation: bool = True
    max_depth: int = 6
    #: per-branch speculation entries (SpecTaint stops after five).
    max_visits: int = 5
    #: per-instruction emulation cost multiplier (QEMU/DECAF model).
    emulation_multiplier: int = SPECTAINT_EMULATION_MULTIPLIER
    max_steps: int = 5_000_000

    def without_nesting(self) -> "SpecTaintConfig":
        """Copy with nested speculation disabled (for the §7.1 comparison)."""
        copy = SpecTaintConfig(**self.__dict__)
        copy.nested_speculation = False
        return copy


class SpecTaintEmulator(Emulator):
    """Emulator with dynamic (instrumentation-free) speculation simulation."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: branch address whose next encounter must not re-enter speculation
        #: (set right after a rollback so the branch can retire normally).
        self._skip_speculation_at: Optional[int] = None

    # -- speculation entry at conditional branches -------------------------------
    def _op_jcc(self, instr):
        controller = self.controller
        if controller is not None and instr.opcode is Opcode.JCC:
            address = instr.address
            if controller.in_simulation and controller.budget_exceeded():
                undone = controller.rollback(self.machine, self.dift, reason="budget")
                self._extra_cycles = self.cost_model.rollback_cost(undone)
                self._skip_speculation_at = self.machine.pc
                return self.machine.pc
            if self._skip_speculation_at == address:
                self._skip_speculation_at = None
            elif controller.maybe_enter(self.machine, branch_address=address,
                                        resume_pc=address, dift=self.dift):
                self._skip_speculation_at = address
                # Follow the *wrong* direction of the branch.
                if self.machine.flags.evaluate(instr.cc):
                    return self._next(instr)
                return self._branch_target(instr)
        return super()._op_jcc(instr)

    # -- taint sink checks on memory accesses --------------------------------------
    def _policy_access(self, instr, mem, is_write: bool) -> None:
        if (
            self.controller is not None
            and self.controller.in_simulation
            and self.policy is not None
            and mem is not None
        ):
            addr = self.machine.effective_address(mem)
            promoted = self.policy.on_speculative_access(
                instr, mem, addr, instr.size, is_write, self.machine, self.controller
            )
            if promoted:
                self._pending_promotion |= promoted

    def _op_load(self, instr):
        self._policy_access(instr, instr.operands[1], is_write=False)
        return super()._op_load(instr)

    def _op_store(self, instr):
        self._policy_access(instr, instr.operands[0], is_write=True)
        return super()._op_store(instr)

    def _rollback_after_escape(self, reason: str):
        undone = self.controller.rollback(self.machine, self.dift, reason=reason)
        self._extra_cycles = self.cost_model.rollback_cost(undone)
        # Do not immediately re-enter speculation for the branch we resume at.
        self._skip_speculation_at = self.machine.pc
        return self.machine.pc

    def _after_exception_rollback(self) -> None:
        self._skip_speculation_at = self.machine.pc

    def _op_ret(self, instr):
        # A full-system emulator has no shadow copies; returns during
        # simulation proceed (it simulates the whole system).  A return from
        # the entry function, however, must not retire transiently.
        if self.controller is not None and self.controller.in_simulation:
            from repro.runtime.emulator import EXIT_SENTINEL
            target = self.machine.memory.read_int(self.machine.sp, 8)
            if target == EXIT_SENTINEL:
                return self._rollback_after_escape("forced")
        return super()._op_ret(instr)

    def _op_ecall(self, instr):
        if self.controller is not None and self.controller.in_simulation:
            return self._rollback_after_escape("forced")
        return super()._op_ecall(instr)

    def _op_serializing(self, instr):
        if self.controller is not None and self.controller.in_simulation:
            return self._rollback_after_escape("forced")
        return super()._op_serializing(instr)

    def _op_halt(self, instr):
        if self.controller is not None and self.controller.in_simulation:
            return self._rollback_after_escape("forced")
        return super()._op_halt(instr)


@dataclass
class SpecTaintAnalyzer:
    """Runtime bundle for analysing an *unmodified* binary with SpecTaint."""

    binary: TelfBinary
    config: SpecTaintConfig = field(default_factory=SpecTaintConfig)
    externals: Optional[ExternalRegistry] = None

    def __post_init__(self) -> None:
        if self.config.nested_speculation:
            policy = SpecTaintNestingPolicy(max_visits=self.config.max_visits,
                                            max_depth=self.config.max_depth)
        else:
            policy = DisabledNestingPolicy()
        self.controller = SpeculationController(policy, rob_budget=self.config.rob_budget)
        self.detection_policy = SpecTaintPolicy()
        self.coverage = CoverageRuntime()
        self.cost_model = DEFAULT_COSTS.scaled(self.config.emulation_multiplier)
        self.emulator = SpecTaintEmulator(
            self.binary,
            externals=self.externals,
            cost_model=self.cost_model,
            controller=self.controller,
            policy=self.detection_policy,
            coverage=self.coverage,
            max_steps=self.config.max_steps,
        )

    def run(self, input_data: bytes, argv=None) -> ExecutionResult:
        """Analyse one input."""
        return self.emulator.run(input_data, argv=argv)
