"""Normal and speculative coverage maps (paper §6.3).

Teapot tracks two kinds of coverage separately:

* **normal-execution coverage** — traced at every conditional branch before
  entering speculation simulation (``cov.trace`` pseudo-ops),
* **speculation-simulation coverage** — traced for the basic blocks visited
  inside the Shadow Copy.  Calling the (expensive, register-clobbering)
  coverage function for every simulated block would dominate the cost of
  the short 250-instruction windows, so Teapot only *notes* each visited
  guard ID in a small buffer (``cov.spec``) and flushes the notes into the
  coverage map lazily when the rollback begins — this is the optimisation
  the benchmark ``test_ablation_coverage`` quantifies.

The fuzzer treats the pair of maps as its feedback signal, mirroring the
SanitizerCoverage trace-pc-guard interface honggfuzz consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple


class CoverageMap:
    """A set of covered guard IDs with new-coverage accounting."""

    def __init__(self) -> None:
        self._covered: Set[int] = set()

    def add(self, guard_id: int) -> bool:
        """Record a guard hit; returns ``True`` if it was new."""
        if guard_id in self._covered:
            return False
        self._covered.add(guard_id)
        return True

    def add_many(self, guard_ids: Iterable[int]) -> int:
        """Record many guard hits; returns how many were new."""
        new = 0
        for guard_id in guard_ids:
            if self.add(guard_id):
                new += 1
        return new

    def __len__(self) -> int:
        return len(self._covered)

    def __contains__(self, guard_id: int) -> bool:
        return guard_id in self._covered

    def covered(self) -> Set[int]:
        """A copy of the covered guard-ID set."""
        return set(self._covered)


class CoverageRuntime:
    """Per-execution coverage collector fed by ``cov.*`` pseudo-ops."""

    def __init__(self) -> None:
        self.normal = CoverageMap()
        self.speculative = CoverageMap()
        #: guard IDs noted during the current speculation episode, flushed
        #: lazily at rollback (paper §6.3 optimisation).
        self._spec_buffer: list = []
        #: counters for the ablation benchmark
        self.lazy_flushes = 0
        self.spec_notes = 0

    # -- normal execution ---------------------------------------------------
    def trace_normal(self, guard_id: int) -> bool:
        """Record normal-execution coverage at a conditional branch."""
        return self.normal.add(guard_id)

    # -- speculation simulation ------------------------------------------------
    def note_speculative(self, guard_id: int) -> None:
        """Note a Shadow-Copy block visit (cheap; no map update yet)."""
        self._spec_buffer.append(guard_id)
        self.spec_notes += 1

    def flush_speculative(self) -> int:
        """Flush noted guard IDs into the speculative map (at rollback)."""
        if not self._spec_buffer:
            return 0
        new = self.speculative.add_many(self._spec_buffer)
        self._spec_buffer.clear()
        self.lazy_flushes += 1
        return new

    # -- fuzzer interface ----------------------------------------------------------
    def new_coverage_signature(self) -> Tuple[int, int]:
        """The (normal, speculative) coverage sizes used as fuzzer feedback."""
        return (len(self.normal), len(self.speculative))

    def reset_execution_state(self) -> None:
        """Drop per-execution buffers (maps persist across the campaign)."""
        self._spec_buffer.clear()
