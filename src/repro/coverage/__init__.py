"""Coverage tracking (the SanitizerCoverage stand-in, paper §6.3)."""

from repro.coverage.sancov import CoverageMap, CoverageRuntime

__all__ = ["CoverageMap", "CoverageRuntime"]
