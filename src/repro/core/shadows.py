"""Speculation Shadows: Real Copy / Shadow Copy duplication (paper §5.2).

For every function ``f`` the pass creates ``f$spec`` — a byte-for-byte copy
whose block labels are suffixed with ``$spec`` — and retargets all
*statically known* control flow inside the copy:

* intra-function branches go to the corresponding shadow blocks,
* direct calls go to the callee's shadow copy,
* external calls (``ecall``) are left alone (they terminate the simulation
  through an unconditional restore point inserted later).

Indirect control flow (returns, indirect calls/jumps) cannot be retargeted
statically; those are handled at run time by the escape checks and the
marker blocks of :mod:`repro.core.markers`.
"""

from __future__ import annotations

from typing import Dict

from repro.disasm.ir import IRFunction, Module
from repro.isa.instructions import Instruction, Opcode
from repro.isa.operands import Label, Mem
from repro.rewriting.passes import RewriteError, RewritePass

#: Suffix appended to Shadow-Copy function names and block labels.
SHADOW_SUFFIX = "$spec"


def shadow_name(name: str) -> str:
    """Shadow-copy name of a function or block label."""
    return name + SHADOW_SUFFIX


def is_shadow_function(name: str) -> bool:
    """Whether a function name denotes a Shadow Copy."""
    return name.endswith(SHADOW_SUFFIX)


class ShadowCopyPass(RewritePass):
    """Duplicate every function into its Shadow Copy."""

    name = "shadow-copy"

    def run(self, module: Module) -> None:
        original_functions = [
            f for f in module.functions if not is_shadow_function(f.name)
        ]
        defined_names = {f.name for f in original_functions}
        shadow_functions = []
        for func in original_functions:
            if module.has_function(shadow_name(func.name)):
                raise RewriteError(
                    f"module already contains a shadow copy of {func.name!r}"
                )
            shadow_functions.append(self._make_shadow(func, defined_names))
            self.bump("functions_copied")
        module.functions.extend(shadow_functions)
        module.metadata["speculation_shadows"] = "1"

    def _make_shadow(self, func: IRFunction, defined_names) -> IRFunction:
        label_map: Dict[str, str] = {blk.label: shadow_name(blk.label) for blk in func.blocks}
        shadow = func.copy_renamed(shadow_name(func.name), label_map)
        for blk in shadow.blocks:
            for instr in blk.instructions:
                self._retarget(instr, label_map, defined_names)
                self.bump("instructions_copied")
        return shadow

    def _retarget(self, instr: Instruction, label_map: Dict[str, str], defined_names) -> None:
        opcode = instr.opcode
        if opcode in (Opcode.JMP, Opcode.JCC):
            target = instr.operands[0]
            if isinstance(target, Label):
                if target.name in label_map:
                    instr.operands[0] = Label(label_map[target.name], target.addend)
                elif target.name in defined_names:
                    # Direct tail jump to another function: go to its shadow.
                    instr.operands[0] = Label(shadow_name(target.name), target.addend)
        elif opcode is Opcode.CALL:
            target = instr.operands[0]
            if isinstance(target, Label) and target.name in defined_names:
                instr.operands[0] = Label(shadow_name(target.name), target.addend)
                self.bump("calls_retargeted")
        # Materialised code pointers (mov of a function address, jump tables)
        # are intentionally NOT retargeted: they keep referring to Real-Copy
        # code, exactly like the paper's Figure 5(b) scenario, and are
        # handled by the run-time escape checks.
