"""Checkpoints and misprediction trampolines (paper §5.2, Figure 4).

For every conditional branch the pass inserts a ``checkpoint`` pseudo-op
immediately before the branch and synthesises a two-instruction trampoline
in the Shadow Copy:

* ``tramp.j<cc>  <shadow label of the fall-through block>`` — the same
  condition as the original branch, but targeting the *opposite*
  destination, so the taken/not-taken outcome is inverted;
* ``jmp  <shadow label of the original branch target>``.

At run time the ``checkpoint`` op asks the speculation controller whether a
misprediction of this branch should be simulated; if yes, the program state
is checkpointed and control enters the trampoline, which lands in the
Shadow Copy on the deliberately wrong path.

Checkpoints are inserted into Real-Copy branches always, and into
Shadow-Copy branches only when nested speculation is enabled (paper §6.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import TeapotConfig
from repro.core.shadows import SHADOW_SUFFIX, is_shadow_function, shadow_name
from repro.disasm.ir import BasicBlock, IRFunction, Module
from repro.isa.instructions import Instruction, Opcode
from repro.isa.operands import Label
from repro.rewriting.passes import RewriteError, RewritePass


class TrampolinePass(RewritePass):
    """Insert checkpoints before conditional branches and build trampolines."""

    name = "trampolines"

    def __init__(self, config: Optional[TeapotConfig] = None,
                 single_copy: bool = False) -> None:
        super().__init__()
        self.config = config or TeapotConfig()
        #: single-copy mode (used by the SpecFuzz baseline): trampolines
        #: target the same copy instead of the Shadow Copy.
        self.single_copy = single_copy
        self._counter = 0

    def run(self, module: Module) -> None:
        for func in list(module.functions):
            if self.single_copy:
                self._process_function(module, func, func, to_shadow=False)
            elif is_shadow_function(func.name):
                if self.config.nested_speculation:
                    self._process_function(module, func, func, to_shadow=False)
            else:
                shadow = module.function(shadow_name(func.name))
                self._process_function(module, func, shadow, to_shadow=True)

    # ------------------------------------------------------------------
    def _process_function(
        self,
        module: Module,
        func: IRFunction,
        trampoline_home: IRFunction,
        to_shadow: bool,
    ) -> None:
        new_trampolines: List[BasicBlock] = []
        for index, block in enumerate(func.blocks):
            term = block.terminator
            if term is None or term.opcode is not Opcode.JCC:
                continue
            target = term.operands[0]
            if not isinstance(target, Label):
                raise RewriteError(f"unsymbolized branch target in {func.name}: {term}")
            if index + 1 >= len(func.blocks):
                raise RewriteError(
                    f"conditional branch at end of function {func.name!r} has no "
                    "fall-through block"
                )
            fallthrough_label = func.blocks[index + 1].label

            taken_label = self._spec_target(func, target.name, to_shadow)
            not_taken_label = self._spec_target(func, fallthrough_label, to_shadow)

            tramp_label = f".Ltramp{SHADOW_SUFFIX}_{trampoline_home.name}_{self._counter}"
            self._counter += 1
            trampoline = BasicBlock(
                label=tramp_label,
                instructions=[
                    Instruction(Opcode.TRAMP_JCC, [Label(not_taken_label)], cc=term.cc),
                    Instruction(Opcode.JMP, [Label(taken_label)]),
                ],
                successors=[],
            )
            new_trampolines.append(trampoline)

            checkpoint_target = (
                tramp_label
                if trampoline_home is func
                else f"{trampoline_home.name}::{tramp_label}"
            )
            checkpoint = Instruction(Opcode.CHECKPOINT, [Label(checkpoint_target)])
            block.instructions.insert(len(block.instructions) - 1, checkpoint)
            self.bump("checkpoints_inserted")
            self.bump("trampolines_created")
        trampoline_home.blocks.extend(new_trampolines)

    def _spec_target(self, func: IRFunction, label: str, to_shadow: bool) -> str:
        """Shadow-copy label corresponding to ``label`` of ``func``."""
        if not to_shadow:
            return label
        shadow_label = shadow_name(label)
        return f"{shadow_name(func.name)}::{shadow_label}"
