"""The Teapot driver: static rewriting stage + dynamic runtime stage.

:class:`TeapotRewriter` implements the left half of the paper's Figure 3
workflow (disassemble → make copies → instrument → reassemble);
:class:`TeapotRuntime` implements the right half (execute/fuzz the
instrumented binary with the speculation-simulation runtime, the Kasper
policy and coverage feedback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import TeapotConfig
from repro.core.instrumentation import (
    AccessInstrumentationPass,
    CoveragePass,
    DiftInstrumentationPass,
    RestorePointPass,
)
from repro.core.markers import EscapeMarkerPass
from repro.core.shadows import ShadowCopyPass
from repro.core.trampolines import TrampolinePass
from repro.coverage.sancov import CoverageRuntime
from repro.disasm.disassembler import disassemble
from repro.disasm.ir import Module
from repro.loader.binary_format import TelfBinary
from repro.rewriting.passes import PassManager
from repro.rewriting.reassemble import reassemble
from repro.runtime.costs import CostModel, DEFAULT_COSTS
from repro.runtime.emulator import ExecutionResult
from repro.runtime.externals import ExternalRegistry
from repro.runtime.fastpath import resolve_engine
from repro.runtime.speculation import (
    DisabledNestingPolicy,
    TeapotNestingPolicy,
)
from repro.sanitizers.policy import KasperPolicy


class TeapotRewriter:
    """Static binary rewriter implementing Speculation Shadows."""

    tool_name = "teapot"

    def __init__(self, config: Optional[TeapotConfig] = None) -> None:
        self.config = config or TeapotConfig()
        #: per-pass statistics of the last :meth:`instrument` invocation.
        self.last_stats: Dict[str, Dict[str, int]] = {}

    def build_pass_manager(self) -> PassManager:
        """The ordered pass pipeline (paper §4-§6)."""
        manager = PassManager()
        manager.add(ShadowCopyPass())
        manager.add(CoveragePass(self.config))
        manager.add(AccessInstrumentationPass(self.config))
        manager.add(DiftInstrumentationPass())
        manager.add(RestorePointPass(self.config))
        manager.add(EscapeMarkerPass())
        manager.add(TrampolinePass(self.config))
        return manager

    def instrument_module(self, module: Module) -> Module:
        """Run the pass pipeline over an already-disassembled module."""
        manager = self.build_pass_manager()
        self.last_stats = manager.run(module)
        module.metadata["tool"] = self.tool_name
        return module

    def instrument(self, binary: TelfBinary) -> TelfBinary:
        """Disassemble, instrument and reassemble a COTS binary."""
        module = disassemble(binary)
        module = self.instrument_module(module)
        return reassemble(module)


@dataclass
class TeapotRuntime:
    """Bundles everything needed to execute a Teapot-instrumented binary.

    This is the runtime support the fuzzer drives: the speculation
    controller with Teapot's nesting heuristic, the Kasper detection
    policy, and the two coverage maps.
    """

    binary: TelfBinary
    config: TeapotConfig = field(default_factory=TeapotConfig)
    externals: Optional[ExternalRegistry] = None
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if self.config.nested_speculation:
            policy = TeapotNestingPolicy(
                max_depth=self.config.max_depth,
                eager_runs=self.config.eager_runs,
                ramp=self.config.specfuzz_ramp,
            )
        else:
            policy = DisabledNestingPolicy()
        emulator_cls, controller_cls = resolve_engine(self.config.engine)
        self.controller = controller_cls(policy, rob_budget=self.config.rob_budget)
        self.detection_policy = KasperPolicy(massage_enabled=self.config.massage_enabled)
        self.coverage = CoverageRuntime()
        self.spec_models = self._build_spec_models()
        self.emulator = emulator_cls(
            self.binary,
            externals=self.externals,
            cost_model=self.cost_model,
            controller=self.controller,
            policy=self.detection_policy,
            coverage=self.coverage,
            max_steps=self.config.max_steps,
            stack_protect=self.config.protect_stack,
            taint_sources_enabled=self.config.taint_sources_enabled,
            spec_models=self.spec_models,
            telemetry=self.config.telemetry,
        )

    def _build_spec_models(self):
        """Fresh speculation-model instances for ``config.variants``.

        ``None`` for the default PHT-only configuration, which keeps the
        emulator's classic zero-overhead path (and bit-identical golden
        outputs).
        """
        if tuple(self.config.variants) == ("pht",):
            return None
        from repro.specmodels import build_models

        return build_models(self.config.variants)

    def run(self, input_data: bytes, argv=None) -> ExecutionResult:
        """Execute the instrumented binary over one input."""
        return self.emulator.run(input_data, argv=argv)

    @property
    def engine(self) -> str:
        """Name of the emulator engine this runtime executes on."""
        return self.config.engine

    def with_engine(self, engine: str) -> "TeapotRuntime":
        """A fresh runtime over the same binary on a different engine."""
        return TeapotRuntime(
            self.binary,
            config=self.config.with_engine(engine),
            externals=self.externals,
            cost_model=self.cost_model,
        )

    def with_variants(self, *variants: str) -> "TeapotRuntime":
        """A fresh runtime simulating a different speculation-variant set."""
        return TeapotRuntime(
            self.binary,
            config=self.config.with_variants(*variants),
            externals=self.externals,
            cost_model=self.cost_model,
        )


def instrument_and_build_runtime(
    binary: TelfBinary,
    config: Optional[TeapotConfig] = None,
    externals: Optional[ExternalRegistry] = None,
) -> TeapotRuntime:
    """Convenience helper: instrument a binary and build its runtime."""
    config = config or TeapotConfig()
    instrumented = TeapotRewriter(config).instrument(binary)
    return TeapotRuntime(instrumented, config=config, externals=externals)
