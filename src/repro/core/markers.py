"""Escape markers: keeping speculation inside the Shadow Copy (paper §5.3).

Indirect control transfers executed in the Shadow Copy (returns, indirect
calls, indirect jumps) may carry Real-Copy code pointers and would otherwise
escape the simulation into uninstrumented code — which would never reach a
restore point (paper Figure 5).  Teapot handles this with two cooperating
mechanisms:

* every Real-Copy basic block that may be the target of an indirect
  transfer (return sites, address-taken blocks, address-taken function
  entries) gets a special **marker nop** followed by a ``spec.redirect``
  that, when reached in simulation mode, bounces control to the block's
  Shadow-Copy counterpart (Listing 4, lines 12-14);
* the runtime's indirect-transfer check (implemented in
  :meth:`repro.runtime.emulator.Emulator._check_indirect_target`) allows a
  transfer whose target is in the Shadow Copy or is a marked Real-Copy
  block, and forces a rollback otherwise (Listing 4, lines 2-8).
"""

from __future__ import annotations

from repro.core.shadows import is_shadow_function, shadow_name
from repro.disasm.ir import Module
from repro.isa.instructions import Instruction, Opcode
from repro.isa.operands import Label
from repro.rewriting.passes import RewritePass


class EscapeMarkerPass(RewritePass):
    """Insert marker nops and redirects on indirect-transfer targets."""

    name = "escape-markers"

    def run(self, module: Module) -> None:
        for func in module.functions:
            if is_shadow_function(func.name):
                continue
            shadow_func_name = shadow_name(func.name)
            if not module.has_function(shadow_func_name):
                continue
            for block in func.blocks:
                if not (block.is_return_site or block.address_taken):
                    continue
                shadow_label = f"{shadow_func_name}::{shadow_name(block.label)}"
                block.instructions.insert(
                    0, Instruction(Opcode.MARKER_NOP, [])
                )
                block.instructions.insert(
                    1, Instruction(Opcode.SPEC_REDIRECT, [Label(shadow_label)])
                )
                self.bump("marked_blocks")
