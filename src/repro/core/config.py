"""Configuration of the Teapot rewriter and runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class TeapotConfig:
    """Tunable knobs of Teapot's instrumentation and runtime.

    Defaults match the paper's settings; the performance experiments
    (Figures 1 and 7) disable nested speculation, and Table 3 disables the
    taint sources and the Massage policy.
    """

    #: reorder-buffer stand-in: instructions simulated per speculation episode.
    rob_budget: int = 250
    #: insert nested-speculation checkpoints in the Shadow Copy.
    nested_speculation: bool = True
    #: maximum misprediction nesting depth (paper: 6).
    max_depth: int = 6
    #: eager nested runs per branch before the SpecFuzz ramp takes over.
    eager_runs: int = 5
    #: SpecFuzz encounter ramp (encounters per extra depth level).
    specfuzz_ramp: int = 16
    #: place a conditional restore point every N architectural instructions
    #: inside large blocks (paper: 50).
    restore_interval: int = 50
    #: insert coverage tracing instrumentation.
    coverage: bool = True
    #: use the lazy speculative-coverage optimisation (paper §6.3); when
    #: False, the expensive normal coverage call is used inside the Shadow
    #: Copy as well (the ablation benchmark flips this).
    lazy_spec_coverage: bool = True
    #: enable the Massage (attacker-indirect) policies.
    massage_enabled: bool = True
    #: enable tagging of program inputs as attacker-controlled.
    taint_sources_enabled: bool = True
    #: protect stack frames by poisoning return-address slots.
    protect_stack: bool = True
    #: skip ASan/policy checks on sp/fp + constant accesses (paper §6.2.1).
    allowlist_frame_accesses: bool = True
    #: maximum emulator steps per execution (hang protection for fuzzing).
    max_steps: int = 5_000_000
    #: emulator engine: ``"fast"`` (decoded-trace dispatch + copy-on-write
    #: rollback journaling), ``"jit"`` (block-compiled generated code over
    #: the fast engine, persistent compiled-block cache) or ``"legacy"``
    #: (generic dispatch + full-state checkpoints).  All produce
    #: bit-identical results — see ``docs/emulator.md`` and the
    #: differential test harness.
    engine: str = "fast"
    #: speculation variants to simulate ("pht", "btb", "rsb", "stl", or any
    #: ``@register_model`` plugin).  The default matches the paper:
    #: conditional-branch misprediction only.  See ``docs/variants.md``.
    variants: Tuple[str, ...] = ("pht",)
    #: optional :class:`repro.telemetry.Telemetry` observer threaded into
    #: the emulator this configuration builds.  Observation-only — results
    #: are bit-identical with or without it.  ``None`` (the default) falls
    #: back to the process-wide bundle installed by
    #: :func:`repro.telemetry.context.session`.
    telemetry: object = None

    def with_engine(self, engine: str) -> "TeapotConfig":
        """A copy of this configuration running on a different engine."""
        copy = TeapotConfig(**self.__dict__)
        copy.engine = engine
        return copy

    def with_variants(self, *variants: str) -> "TeapotConfig":
        """A copy of this configuration simulating different variants."""
        copy = TeapotConfig(**self.__dict__)
        copy.variants = tuple(variants)
        return copy

    def without_nesting(self) -> "TeapotConfig":
        """A copy with nested speculation and heuristics disabled.

        This is the configuration the paper uses for the run-time
        performance comparison (§7.1).
        """
        copy = TeapotConfig(**self.__dict__)
        copy.nested_speculation = False
        return copy
