"""Shadow-Copy and Real-Copy instrumentation passes (paper §6.1, §6.2, §6.3).

Thanks to Speculation Shadows, every pass below can put its instrumentation
only where it is needed — ASan/policy checks, memory logging, per-instruction
tag propagation and restore points go exclusively into the Shadow Copy,
while the Real Copy receives only the cheap batched tag propagation and the
coverage trace at conditional branches.  No ``if (in_simulation)`` guards
are emitted anywhere (contrast with the SpecFuzz baseline rewriter in
:mod:`repro.baselines.specfuzz`).
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.core.config import TeapotConfig
from repro.core.shadows import is_shadow_function
from repro.disasm.ir import BasicBlock, Module
from repro.isa.instructions import (
    Instruction,
    Opcode,
    is_conditional_branch,
    is_pseudo,
    is_serializing,
)
from repro.isa.operands import Imm, Mem
from repro.rewriting.passes import RewritePass


def _access_info(instr: Instruction):
    """Return ``(mem, size, is_write)`` for an instrumentable data access.

    Stack push/pop and instructions without memory operands return ``None``;
    they are either implicitly frame-relative (allowlisted) or not data
    accesses at all.
    """
    if instr.opcode is Opcode.LOAD:
        return instr.operands[1], instr.size, False
    if instr.opcode is Opcode.STORE:
        return instr.operands[0], instr.size, True
    if instr.opcode is Opcode.IJMP:
        mem = instr.memory_operand()
        if mem is not None:
            return mem, 8, False
    return None


class AccessInstrumentationPass(RewritePass):
    """Kasper policy checks, ASan checks and memory logging in the Shadow Copy."""

    name = "access-instrumentation"

    def __init__(self, config: Optional[TeapotConfig] = None) -> None:
        super().__init__()
        self.config = config or TeapotConfig()

    def run(self, module: Module) -> None:
        for func in module.functions:
            if not is_shadow_function(func.name):
                continue
            for block in func.blocks:
                block.instructions = self._instrument_block(block.instructions)

    def _instrument_block(self, instructions: List[Instruction]) -> List[Instruction]:
        out: List[Instruction] = []
        for instr in instructions:
            if not is_pseudo(instr):
                access = _access_info(instr)
                if access is not None:
                    mem, size, is_write = access
                    allowlisted = (
                        self.config.allowlist_frame_accesses
                        and mem.is_frame_relative_constant
                    )
                    if not allowlisted:
                        opcode = Opcode.POLICY_STORE if is_write else Opcode.POLICY_LOAD
                        out.append(Instruction(opcode, [mem], size=size))
                        self.bump("policy_checks")
                    if is_write:
                        out.append(Instruction(Opcode.MEMLOG, [mem], size=size))
                        self.bump("memlogs")
                if is_conditional_branch(instr):
                    out.append(Instruction(Opcode.POLICY_BRANCH, []))
                    self.bump("branch_checks")
            out.append(instr)
        return out


class DiftInstrumentationPass(RewritePass):
    """Tag-propagation instrumentation (paper §6.2.2).

    Shadow Copy: a ``dift.prop`` snippet before every architectural
    instruction (propagation must stay synchronised with execution because
    the taint sinks are here).  Real Copy: one ``dift.batch`` snippet per
    basic block — the asynchronous, LLVM-optimised variant the paper
    describes, which only needs to be consistent at block granularity
    because the Real Copy contains no sinks.
    """

    name = "dift-instrumentation"

    def run(self, module: Module) -> None:
        for func in module.functions:
            shadow = is_shadow_function(func.name)
            for block in func.blocks:
                if shadow:
                    block.instructions = self._instrument_shadow(block.instructions)
                else:
                    self._instrument_real(block)

    def _instrument_shadow(self, instructions: List[Instruction]) -> List[Instruction]:
        out: List[Instruction] = []
        for instr in instructions:
            if not is_pseudo(instr) and instr.opcode is not Opcode.NOP:
                out.append(Instruction(Opcode.DIFT_PROP, []))
                self.bump("per_instruction_props")
            out.append(instr)
        return out

    def _instrument_real(self, block: BasicBlock) -> None:
        arch_count = sum(1 for i in block.instructions if not is_pseudo(i))
        if arch_count == 0:
            return
        block.instructions.insert(
            0, Instruction(Opcode.DIFT_BATCH, [Imm(arch_count)])
        )
        self.bump("batched_props")


class RestorePointPass(RewritePass):
    """Conditional and unconditional restore points (paper §6.1)."""

    name = "restore-points"

    def __init__(self, config: Optional[TeapotConfig] = None) -> None:
        super().__init__()
        self.config = config or TeapotConfig()

    def run(self, module: Module) -> None:
        for func in module.functions:
            if not is_shadow_function(func.name):
                continue
            for block in func.blocks:
                block.instructions = self._instrument_block(block.instructions)

    def _instrument_block(self, instructions: List[Instruction]) -> List[Instruction]:
        out: List[Instruction] = []
        since_restore = 0
        for instr in instructions:
            # Unconditional restore points: external calls and serializing
            # instructions terminate the simulation.
            if instr.opcode is Opcode.ECALL or is_serializing(instr):
                out.append(Instruction(Opcode.RESTORE_ALWAYS, []))
                self.bump("unconditional_restores")
                since_restore = 0
            out.append(instr)
            if not is_pseudo(instr):
                since_restore += 1
                if since_restore >= self.config.restore_interval:
                    out.append(Instruction(Opcode.RESTORE_COND, []))
                    self.bump("conditional_restores")
                    since_restore = 0
        # Conditional restore point near the end of every block.
        insert_at = len(out)
        if out and (out[-1].opcode in (Opcode.JMP, Opcode.JCC, Opcode.RET,
                                       Opcode.IJMP, Opcode.ICALL, Opcode.CALL,
                                       Opcode.HALT)):
            insert_at -= 1
        out.insert(insert_at, Instruction(Opcode.RESTORE_COND, []))
        self.bump("conditional_restores")
        return out


class CoveragePass(RewritePass):
    """Coverage tracing (paper §6.3).

    Normal coverage is traced at every conditional branch in the Real Copy;
    speculative coverage uses the cheap lazy ``cov.spec`` note at the start
    of every Shadow-Copy block (or the expensive ``cov.trace`` call when the
    lazy optimisation is disabled, which the ablation benchmark measures).
    """

    name = "coverage"

    def __init__(self, config: Optional[TeapotConfig] = None) -> None:
        super().__init__()
        self.config = config or TeapotConfig()
        self._guard_ids = itertools.count(1)

    def run(self, module: Module) -> None:
        if not self.config.coverage:
            return
        for func in module.functions:
            shadow = is_shadow_function(func.name)
            for block in func.blocks:
                if shadow:
                    opcode = (
                        Opcode.COV_SPEC
                        if self.config.lazy_spec_coverage
                        else Opcode.COV_TRACE
                    )
                    block.instructions.insert(
                        0, Instruction(opcode, [Imm(next(self._guard_ids))])
                    )
                    self.bump("speculative_guards")
                else:
                    self._trace_branches(block)

    def _trace_branches(self, block: BasicBlock) -> None:
        out: List[Instruction] = []
        for instr in block.instructions:
            if is_conditional_branch(instr):
                out.append(
                    Instruction(Opcode.COV_TRACE, [Imm(next(self._guard_ids))])
                )
                self.bump("normal_guards")
            out.append(instr)
        block.instructions = out
