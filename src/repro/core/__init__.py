"""Teapot: the paper's primary contribution.

Teapot statically rewrites a COTS binary so it can be fuzzed for Spectre-V1
gadgets.  The rewriting is organised around **Speculation Shadows**
(paper §5): every function is duplicated into a *Real Copy* (normal
execution, almost no instrumentation) and a *Shadow Copy* (speculation
simulation, fully instrumented), removing the per-instrumentation
``if (in_simulation)`` guards that burden single-copy designs.

Pass pipeline (see :class:`repro.core.teapot.TeapotRewriter`):

1. :class:`~repro.core.shadows.ShadowCopyPass` — duplicate functions,
   retarget direct control flow inside the Shadow Copy.
2. :class:`~repro.core.instrumentation.CoveragePass` — normal and (lazy)
   speculative coverage tracing (paper §6.3).
3. :class:`~repro.core.instrumentation.AccessInstrumentationPass` — Kasper
   policy checks, ASan checks and memory logging on Shadow-Copy accesses.
4. :class:`~repro.core.instrumentation.DiftInstrumentationPass` —
   per-instruction tag propagation in the Shadow Copy, batched per-block
   propagation in the Real Copy (paper §6.2.2).
5. :class:`~repro.core.instrumentation.RestorePointPass` — conditional and
   unconditional restore points (paper §6.1).
6. :class:`~repro.core.markers.EscapeMarkerPass` — marker nops and
   redirects on Real-Copy blocks reachable through indirect transfers
   (paper §5.3, Listing 4).
7. :class:`~repro.core.trampolines.TrampolinePass` — checkpoints before
   conditional branches plus misprediction trampolines (paper §5.2).
"""

from repro.core.config import TeapotConfig
from repro.core.shadows import ShadowCopyPass, shadow_name, is_shadow_function
from repro.core.trampolines import TrampolinePass
from repro.core.markers import EscapeMarkerPass
from repro.core.instrumentation import (
    AccessInstrumentationPass,
    CoveragePass,
    DiftInstrumentationPass,
    RestorePointPass,
)
from repro.core.teapot import TeapotRewriter, TeapotRuntime

__all__ = [
    "TeapotConfig",
    "ShadowCopyPass",
    "shadow_name",
    "is_shadow_function",
    "TrampolinePass",
    "EscapeMarkerPass",
    "AccessInstrumentationPass",
    "CoveragePass",
    "DiftInstrumentationPass",
    "RestorePointPass",
    "TeapotRewriter",
    "TeapotRuntime",
]
