"""Artificial gadget injection (the Table 3 methodology, paper §7.2).

Takes a :class:`~repro.targets.base.TargetProgram`, replaces each of its
``/*@ATTACK_POINT:<id>@*/`` markers with a Kocher-style gadget snippet from
:mod:`repro.targets.gadget_samples`, appends the snippet's globals, and
compiles the result.  The injected binary plus the recorded ground truth
(which functions contain which gadget instance, and whether the driver can
reach them) is what the Table 3 benchmark fuzzes and scores.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.loader.binary_format import TelfBinary
from repro.minic.codegen import CompilerOptions
from repro.minic.compiler import compile_source
from repro.targets.base import AttackPoint, TargetProgram
from repro.targets.gadget_samples import gadget_globals, gadget_snippet

_MARKER_RE = re.compile(r"/\*@ATTACK_POINT:(\d+)@\*/")


@dataclass
class InjectedGadget:
    """Ground-truth record for one injected gadget."""

    marker_id: int
    function: str
    variant: int
    reachable: bool


@dataclass
class InjectedTarget:
    """An injection result: modified source, compiled binary, ground truth."""

    target_name: str
    source: str
    binary: TelfBinary
    gadgets: List[InjectedGadget] = field(default_factory=list)

    @property
    def ground_truth_count(self) -> int:
        """Total number of injected gadgets (the GT column of Table 3)."""
        return len(self.gadgets)

    @property
    def reachable_count(self) -> int:
        """Number of injected gadgets reachable from the fuzzing driver."""
        return sum(1 for g in self.gadgets if g.reachable)

    def functions_with_gadgets(self) -> Dict[str, List[InjectedGadget]]:
        """Map of function name to the gadgets injected into it."""
        result: Dict[str, List[InjectedGadget]] = {}
        for gadget in self.gadgets:
            result.setdefault(gadget.function, []).append(gadget)
        return result


def strip_markers(source: str) -> str:
    """Remove all attack-point markers (used to build the vanilla binaries)."""
    return _MARKER_RE.sub("", source)


def inject_gadgets(
    target: TargetProgram,
    options: Optional[CompilerOptions] = None,
    variant_offset: int = 0,
) -> InjectedTarget:
    """Inject one gadget at every attack point of ``target`` and compile.

    Gadget variants are assigned round-robin so each program receives a mix
    of the Kocher examples, as in SpecTaint's original setup.
    """
    point_by_id = {point.marker_id: point for point in target.attack_points}
    gadgets: List[InjectedGadget] = []
    globals_text: List[str] = []

    def _replace(match: re.Match) -> str:
        marker_id = int(match.group(1))
        point = point_by_id.get(marker_id)
        if point is None:
            raise ValueError(
                f"marker {marker_id} in {target.name!r} has no registered attack point"
            )
        variant = (marker_id + variant_offset) % 4
        gadgets.append(
            InjectedGadget(marker_id=marker_id, function=point.function,
                           variant=variant, reachable=point.reachable)
        )
        globals_text.append(gadget_globals(marker_id))
        return gadget_snippet(marker_id, variant)

    injected_source = _MARKER_RE.sub(_replace, target.source)
    injected_source = "\n".join(globals_text) + "\n" + injected_source

    missing = [p.marker_id for p in target.attack_points
               if p.marker_id not in {g.marker_id for g in gadgets}]
    if missing:
        raise ValueError(
            f"attack points {missing} of {target.name!r} have no marker in the source"
        )

    binary = compile_source(injected_source, options or CompilerOptions())
    return InjectedTarget(
        target_name=target.name,
        source=injected_source,
        binary=binary,
        gadgets=gadgets,
    )


def compile_vanilla(target: TargetProgram,
                    options: Optional[CompilerOptions] = None) -> TelfBinary:
    """Compile the unmodified (marker-stripped) target."""
    return compile_source(strip_markers(target.source), options or CompilerOptions())
