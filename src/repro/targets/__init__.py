"""Workload programs of the paper's evaluation (paper §7, experimental setup).

Each module defines one target as mini-C source plus fuzzing seeds, a
crafted large-input generator for the run-time performance experiments and
the attack points used by the Table 3 injection methodology.  Importing this
package registers every target in :data:`repro.targets.base.REGISTRY`.
"""

from typing import List

from repro.targets.base import AttackPoint, TargetProgram, TargetRegistry, REGISTRY
from repro.targets import (  # noqa: F401
    jsmn,
    libyaml,
    libhtp,
    brotli,
    openssl_server,
    samples,
    variant_gadgets,
)
from repro.targets.case_studies import LZMA_CASE_STUDY, MASSAGE_CASE_STUDY
from repro.targets.injection import (
    InjectedGadget,
    InjectedTarget,
    compile_vanilla,
    inject_gadgets,
    strip_markers,
)

#: The programs of Table 3 (openssl is excluded there, as in the paper).
TABLE3_TARGETS = ("jsmn", "libyaml", "libhtp", "brotli")
#: The programs of Figure 7 and Table 4.
ALL_TARGETS = ("jsmn", "libyaml", "libhtp", "brotli", "openssl")


def get_target(name: str) -> TargetProgram:
    """Look up a registered workload by name."""
    return REGISTRY.get(name)


def runnable_targets() -> List[str]:
    """All registered target names a campaign can fuzz (sorted).

    This is the whole-suite enumeration behind ``--targets all``: the
    paper's five COTS workloads plus the standalone gadget-samples driver.
    """
    return REGISTRY.names()


def injectable_targets() -> List[str]:
    """Targets with attack points, i.e. valid for the ``injected`` variant."""
    return [name for name in REGISTRY.names()
            if REGISTRY.get(name).attack_points]


__all__ = [
    "AttackPoint",
    "TargetProgram",
    "TargetRegistry",
    "REGISTRY",
    "LZMA_CASE_STUDY",
    "MASSAGE_CASE_STUDY",
    "InjectedGadget",
    "InjectedTarget",
    "compile_vanilla",
    "inject_gadgets",
    "strip_markers",
    "TABLE3_TARGETS",
    "ALL_TARGETS",
    "get_target",
    "runnable_targets",
    "injectable_targets",
]
