"""``gadgets`` workload: the Kocher gadget samples as a standalone target.

The Table 3 methodology injects the gadget samples of
:mod:`repro.targets.gadget_samples` into real workloads.  For campaign
matrices it is also useful to fuzz the samples *directly* — a tiny driver
that dispatches on the first input byte into one of the four Kocher
variants, so a short campaign exercises every gadget shape without paying
for a host program.  This mirrors the paper's sanity experiments on the
bare Spectre examples before moving to the COTS workloads.
"""

from __future__ import annotations

from repro.targets.base import TargetProgram, REGISTRY
from repro.targets.gadget_samples import (
    GADGET_TEMPLATES,
    gadget_globals,
    gadget_snippet,
)


def _build_source() -> str:
    """One driver with every gadget variant behind an input-selected branch."""
    parts = []
    for instance in range(len(GADGET_TEMPLATES)):
        parts.append(gadget_globals(instance))
    parts.append("int main() {")
    parts.append("    byte buf[16];")
    parts.append("    int n = read_input(buf, 16);")
    parts.append("    if (n < 1) {")
    parts.append("        return 0;")
    parts.append("    }")
    parts.append("    int selector = buf[0] & 3;")
    for instance in range(len(GADGET_TEMPLATES)):
        parts.append(f"    if (selector == {instance}) {{")
        parts.append(gadget_snippet(instance, variant=instance))
        parts.append("    }")
    parts.append("    return 0;")
    parts.append("}")
    return "\n".join(parts)


SOURCE = _build_source()


def _perf_input(size: int) -> bytes:
    # Cycle through all four selectors with varied attacker values.
    pattern = bytes((i % 4 if i % 8 == 0 else (i * 37) % 256) for i in range(max(size, 1)))
    return pattern[:size]


GADGET_SAMPLES = REGISTRY.register(
    TargetProgram(
        name="gadgets",
        source=SOURCE,
        seeds=[
            b"\x00" + b"\x05" * 8,
            b"\x01" + b"\x7f" * 8,
            b"\x02" + b"\xff" * 8,
            b"\x03" + b"\x41" * 8,
        ],
        attack_points=[],
        perf_input_builder=_perf_input,
        description="Kocher gadget samples behind an input-dispatched driver",
    )
)
